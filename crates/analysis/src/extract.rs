//! Extraction of embedded QDL programs from Rust sources.
//!
//! The repo's examples and paper-listing tests embed their application
//! programs as Rust raw strings (`r#"create queue …"#`). `demaq-lint` and
//! the analyzer test-suite lint those sources directly: every raw string
//! literal that contains `create queue` is treated as a candidate
//! program.

/// All raw-string literals in `source` that look like QDL programs.
pub fn extract_qdl_programs(source: &str) -> Vec<String> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'r' {
            i += 1;
            continue;
        }
        // The `r` must start the literal, not end an identifier or a word
        // inside a string (`net.register(`, `… reminder"`).
        if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
            i += 1;
            continue;
        }
        // r#+" opener. At least one # is required: a bare `r"` is
        // indistinguishable from prose ending in `r` followed by a string
        // quote, and the repo embeds programs exclusively as `r#"…"#`.
        let mut j = i + 1;
        while j < bytes.len() && bytes[j] == b'#' {
            j += 1;
        }
        let hashes = j - (i + 1);
        if hashes == 0 || j >= bytes.len() || bytes[j] != b'"' {
            i += 1;
            continue;
        }
        let body_start = j + 1;
        let closer: String = format!("\"{}", "#".repeat(hashes));
        match source[body_start..].find(&closer) {
            Some(rel) => {
                let body = &source[body_start..body_start + rel];
                if body.contains("create queue") {
                    out.push(body.to_string());
                }
                i = body_start + rel + closer.len();
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_programs_and_skips_payloads() {
        let src = r####"
            let program = r#"
                create queue inbox kind basic mode persistent
            "#;
            let payload = r#"<order><id>1</id></order>"#;
            let nested = r##"create queue q2 kind basic mode transient"##;
        "####;
        let found = extract_qdl_programs(src);
        assert_eq!(found.len(), 2);
        assert!(found[0].contains("create queue inbox"));
        assert!(found[1].contains("create queue q2"));
    }
}
