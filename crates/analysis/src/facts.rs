//! Per-rule facts consumed by the analyzer.
//!
//! A [`RuleFacts`] is the analyzer's view of one rule: where it is
//! attached, which queues it reads and writes, every enqueue site with its
//! guardedness, which properties it reads and sets, and whether the body
//! constant-folds to a no-op. Facts can be built two ways:
//!
//! * [`RuleFacts::from_rule`] — from the raw parsed [`RuleDecl`] (the
//!   `demaq-lint` CLI path, no compiler required);
//! * [`RuleFacts::from_parts`] — from a compiled rule's already-extracted
//!   read/write sets and rewritten body (the deploy-time path in
//!   `demaq-core`).

use demaq_qdl::{AppSpec, RuleDecl};
use demaq_xquery::ast::{AttrValuePart, Axis, DirContent, FlworClause, NodeTest};
use demaq_xquery::{fold_boolean, lower, Expr, Plan};

/// What an aggregate read ranges over.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum AggReadSource {
    /// A named queue (`qs:queue("…")`, `collection("…")`, or the rule's
    /// own target via argument-less `qs:queue()`).
    Queue(String),
    /// The rule's slice (`qs:slice()`).
    Slice,
}

/// One aggregate function application over a queue or slice found in a
/// rule body or property binding: `count`/`sum`/`min`/`max`/`exists`/`avg`
/// whose argument reads `qs:queue(…)` or `qs:slice()`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AggregateReadFact {
    /// Aggregate function name (`count`, `sum`, …).
    pub op: String,
    /// The queue or slice it reads.
    pub source: AggReadSource,
    /// True when the shape matches what the incremental maintenance pass
    /// ([`demaq_xquery::recognize_aggregate`]) can answer from a
    /// materialized cell; false means every evaluation rescans the source.
    pub incremental: bool,
}

/// Raw (non-aggregate, non-suffix) read shapes found in a rule body or
/// property binding — the input to the message-lifetime pass in
/// [`crate::liveness`]. Collected by a *pruning* walk: recognized
/// incremental aggregate shapes and `SOURCE[last()]` suffix reads are not
/// descended into, so a body that touches members *only* through those
/// shapes reports no raw scans at all.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanReads {
    /// Queues whose member documents are read outside every recognized
    /// aggregate / bounded-suffix shape (forces `FullScan`).
    pub queues: Vec<String>,
    /// The rule's own slice is scanned raw.
    pub slice: bool,
    /// Bounded suffix reads: `(None, k)` = the last `k` members of the
    /// own slice, `(Some(q), k)` = the last `k` members of queue `q`.
    pub suffix: Vec<(Option<String>, usize)>,
    /// A queue reference whose target is not statically known — a
    /// non-literal `qs:queue(E)` / `collection(E)` argument, or an
    /// argument-less `qs:queue()` outside a queue rule. The analysis
    /// must then assume *every* queue is scanned.
    pub dynamic: bool,
}

impl ScanReads {
    /// No raw reads at all (aggregate/suffix shapes may still be present).
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty() && !self.slice && self.suffix.is_empty() && !self.dynamic
    }
}

/// One `do enqueue … into Q` occurrence in a rule body.
#[derive(Debug, Clone)]
pub struct EnqueueSite {
    /// Target queue name.
    pub queue: String,
    /// True when the enqueue sits under a condition: an `if` branch, a
    /// FLWOR `for`/`where`, a quantifier body, or a predicate. Unguarded
    /// enqueues fire on *every* triggering message.
    pub conditional: bool,
    /// `with NAME value …` clauses; the second component is the value when
    /// it is a string literal (used to follow echo-queue timer targets).
    pub with_props: Vec<(String, Option<String>)>,
}

/// The analyzer's view of one rule.
#[derive(Debug, Clone)]
pub struct RuleFacts {
    pub name: String,
    /// Queue or slicing the rule is attached to.
    pub target: String,
    pub on_slicing: bool,
    pub error_queue: Option<String>,
    /// Queues read via `qs:queue("…")` / `collection("…")`.
    pub reads_queues: Vec<String>,
    /// Queues written via `do enqueue … into …`.
    pub writes_queues: Vec<String>,
    /// Every enqueue site with its guardedness.
    pub enqueues: Vec<EnqueueSite>,
    /// Literal arguments of `qs:property("…")` reads.
    pub prop_reads: Vec<String>,
    /// `do reset NAME …` slicing targets.
    pub named_resets: Vec<String>,
    /// Count of bare `do reset` occurrences (implicit slicing context).
    pub bare_resets: usize,
    /// Aggregate reads (`count`/`sum`/… over `qs:queue`/`qs:slice`) in
    /// the body, with whether the incremental pass maintains each.
    pub aggregate_reads: Vec<AggregateReadFact>,
    /// Raw member-scan shapes left over after pruning recognized
    /// aggregates and bounded-suffix reads (liveness input).
    pub scan_reads: ScanReads,
    /// Element names the trigger condition requires, when extractable.
    pub trigger_elements: Option<Vec<String>>,
    /// The body constant-folds away: either the whole body lowers to a
    /// constant (a constant carries no updates), or it is `if (C) then …`
    /// with `C` folding to false.
    pub never_fires: bool,
}

impl RuleFacts {
    /// Build facts from a raw parsed rule (no compiler rewrites applied).
    pub fn from_rule(rule: &RuleDecl, spec: &AppSpec) -> RuleFacts {
        let on_slicing = spec.slicing(&rule.target).is_some();
        let mut f = RuleFacts {
            name: rule.name.clone(),
            target: rule.target.clone(),
            on_slicing,
            error_queue: rule.error_queue.clone(),
            reads_queues: Vec::new(),
            writes_queues: Vec::new(),
            enqueues: Vec::new(),
            prop_reads: Vec::new(),
            named_resets: Vec::new(),
            bare_resets: 0,
            aggregate_reads: Vec::new(),
            scan_reads: ScanReads::default(),
            trigger_elements: extract_trigger_elements(&rule.body),
            never_fires: false,
        };
        f.scan_body(&rule.body);
        // A rule on a queue implicitly reads it via argument-less
        // qs:queue(); record the target so flow facts match the compiled
        // read set.
        if !on_slicing && !f.reads_queues.contains(&rule.target) {
            let reads_own = {
                let mut saw = false;
                rule.body.visit(&mut |e| {
                    if let Expr::FunctionCall { name, args } = e {
                        if name.prefix.as_deref() == Some("qs")
                            && name.local == "queue"
                            && args.is_empty()
                        {
                            saw = true;
                        }
                    }
                });
                saw
            };
            if reads_own {
                f.reads_queues.push(rule.target.clone());
            }
        }
        f.finish();
        f
    }

    /// Build facts from a compiled rule's pieces: identity fields plus the
    /// compiler's read/write sets and trigger filter, with enqueue sites,
    /// property reads, and resets re-derived from the (rewritten) body.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        name: &str,
        target: &str,
        on_slicing: bool,
        error_queue: Option<String>,
        reads_queues: Vec<String>,
        writes_queues: Vec<String>,
        trigger_elements: Option<Vec<String>>,
        body: &Expr,
    ) -> RuleFacts {
        let mut f = RuleFacts {
            name: name.to_string(),
            target: target.to_string(),
            on_slicing,
            error_queue,
            reads_queues,
            writes_queues,
            enqueues: Vec::new(),
            prop_reads: Vec::new(),
            named_resets: Vec::new(),
            bare_resets: 0,
            aggregate_reads: Vec::new(),
            scan_reads: ScanReads::default(),
            trigger_elements,
            never_fires: false,
        };
        f.scan_body(body);
        f.finish();
        f
    }

    fn scan_body(&mut self, body: &Expr) {
        walk(body, false, self);
        let own = (!self.on_slicing).then(|| self.target.clone());
        self.aggregate_reads = extract_aggregate_reads(body, own.as_deref());
        self.scan_reads = extract_scan_reads(body, own.as_deref());
        self.never_fires = body_never_fires(body);
    }

    fn finish(&mut self) {
        for s in &self.enqueues {
            self.writes_queues.push(s.queue.clone());
        }
        self.reads_queues.sort();
        self.reads_queues.dedup();
        self.writes_queues.sort();
        self.writes_queues.dedup();
        self.prop_reads.sort();
        self.prop_reads.dedup();
    }

    /// Property names this rule sets via `with` clauses.
    pub fn with_prop_names(&self) -> impl Iterator<Item = &str> {
        self.enqueues
            .iter()
            .flat_map(|s| s.with_props.iter().map(|(n, _)| n.as_str()))
    }
}

fn body_never_fires(body: &Expr) -> bool {
    if let Expr::If { cond, .. } = body {
        if fold_boolean(cond) == Some(false) {
            return true;
        }
    }
    // A body that folds to a constant cannot carry pending updates.
    matches!(lower(body), Plan::Const(_))
}

/// Aggregate functions the extractor looks for. All six have incremental
/// shapes ([`demaq_xquery::AggOp`] — `avg` decomposes into a sum/count
/// pair); calls that [`demaq_xquery::recognize_aggregate`] rejects
/// (positional predicates, non-member-local guards, wrapped sources, …)
/// surface as rescan facts instead.
const AGG_NAMES: &[&str] = &["count", "sum", "min", "max", "exists", "avg"];

/// Every aggregate read in `body`: recognized incremental shapes (exactly
/// the ones `demaq_xquery::recognize_aggregate` — and hence the engine's
/// plan lowerer — accepts), plus bare-name aggregate calls whose argument
/// touches `qs:queue`/`qs:slice` in any other shape (rescans).
/// `own_queue` resolves argument-less `qs:queue()` for non-slicing rules.
pub fn extract_aggregate_reads(body: &Expr, own_queue: Option<&str>) -> Vec<AggregateReadFact> {
    let mut out = Vec::new();
    body.visit(&mut |e| {
        if let Some(spec) = demaq_xquery::recognize_aggregate(e) {
            let source = match &spec.source {
                demaq_xquery::AggSource::Queue(q) => AggReadSource::Queue(q.clone()),
                demaq_xquery::AggSource::Slice => AggReadSource::Slice,
            };
            out.push(AggregateReadFact {
                op: spec.op.name().to_string(),
                source,
                incremental: true,
            });
            return;
        }
        let Expr::FunctionCall { name, args } = e else {
            return;
        };
        let bare = name.prefix.is_none() || name.prefix.as_deref() == Some("fn");
        if !bare || !AGG_NAMES.contains(&name.local.as_str()) {
            return;
        }
        // Any queue/slice reference inside the argument marks the read.
        let mut source: Option<AggReadSource> = None;
        for a in args {
            a.visit(&mut |x| {
                if source.is_some() {
                    return;
                }
                if let Expr::FunctionCall { name, args } = x {
                    let qs = name.prefix.as_deref() == Some("qs");
                    let coll = (name.prefix.is_none()
                        || name.prefix.as_deref() == Some("fn"))
                        && name.local == "collection";
                    match (qs, name.local.as_str(), args.as_slice()) {
                        (true, "queue", [Expr::StringLit(q)]) => {
                            source = Some(AggReadSource::Queue(q.clone()));
                        }
                        (true, "queue", []) => {
                            if let Some(own) = own_queue {
                                source = Some(AggReadSource::Queue(own.to_string()));
                            }
                        }
                        (true, "slice", _) => source = Some(AggReadSource::Slice),
                        _ if coll => {
                            if let Some(Expr::StringLit(q)) = args.first() {
                                source = Some(AggReadSource::Queue(q.clone()));
                            }
                        }
                        _ => {}
                    }
                }
            });
            if source.is_some() {
                break;
            }
        }
        if let Some(source) = source {
            out.push(AggregateReadFact {
                op: name.local.clone(),
                source,
                incremental: false,
            });
        }
    });
    out.sort();
    out.dedup();
    out
}

/// How an expression directly denotes a member sequence.
enum SourceRef {
    Slice,
    Queue(String),
    Dynamic,
}

/// Classify `e` when it *is* a queue/slice member-sequence source
/// (`qs:slice(…)`, `qs:queue("q")`, `qs:queue()`, `collection("q")`).
fn direct_source(e: &Expr, own_queue: Option<&str>) -> Option<SourceRef> {
    let Expr::FunctionCall { name, args } = e else {
        return None;
    };
    let qs = name.prefix.as_deref() == Some("qs");
    let bare = name.prefix.is_none() || name.prefix.as_deref() == Some("fn");
    match (qs, name.local.as_str(), args.as_slice()) {
        (true, "slice", _) => Some(SourceRef::Slice),
        (true, "queue", [Expr::StringLit(q)]) => Some(SourceRef::Queue(q.clone())),
        (true, "queue", []) => Some(match own_queue {
            Some(q) => SourceRef::Queue(q.to_string()),
            None => SourceRef::Dynamic,
        }),
        (true, "queue", _) => Some(SourceRef::Dynamic),
        _ if bare && name.local == "collection" => Some(match args.first() {
            Some(Expr::StringLit(q)) => SourceRef::Queue(q.clone()),
            _ => SourceRef::Dynamic,
        }),
        _ => None,
    }
}

fn is_last_call(e: &Expr) -> bool {
    matches!(e, Expr::FunctionCall { name, args }
        if (name.prefix.is_none() || name.prefix.as_deref() == Some("fn"))
            && name.local == "last"
            && args.is_empty())
}

/// Collect every raw member-scan shape in `body`, pruning recognized
/// aggregate shapes (answered from materialized cells; their guards are
/// member-local and contain no `qs:` reads) and `SOURCE[last()]` suffix
/// reads. `own_queue` resolves argument-less `qs:queue()` for queue
/// rules; `None` (slicing rules, property bindings) makes it dynamic.
pub fn extract_scan_reads(body: &Expr, own_queue: Option<&str>) -> ScanReads {
    let mut out = ScanReads::default();
    collect_scans(body, own_queue, &mut out);
    out.queues.sort();
    out.queues.dedup();
    out.suffix.sort();
    out.suffix.dedup();
    out
}

fn collect_scans(e: &Expr, own: Option<&str>, out: &mut ScanReads) {
    if demaq_xquery::recognize_aggregate(e).is_some() {
        return;
    }
    // `SOURCE[last()]` touches only the newest member: a bounded suffix.
    if let Expr::Filter { base, predicates } = e {
        if predicates.len() == 1 && is_last_call(&predicates[0]) {
            match direct_source(base, own) {
                Some(SourceRef::Slice) => {
                    out.suffix.push((None, 1));
                    return;
                }
                Some(SourceRef::Queue(q)) => {
                    out.suffix.push((Some(q), 1));
                    return;
                }
                _ => {}
            }
        }
    }
    if let Some(src) = direct_source(e, own) {
        match src {
            SourceRef::Slice => out.slice = true,
            SourceRef::Queue(q) => out.queues.push(q),
            SourceRef::Dynamic => out.dynamic = true,
        }
        // Fall through: a computed `collection(E)` argument may itself
        // contain reads.
    }
    for_each_child(e, &mut |c| collect_scans(c, own, out));
}

/// Apply `f` to each direct child expression of `e` (one level only) —
/// lets collectors prune subtrees, which `Expr::visit` cannot.
fn for_each_child(e: &Expr, f: &mut impl FnMut(&Expr)) {
    match e {
        Expr::StringLit(_)
        | Expr::IntLit(_)
        | Expr::DoubleLit(_)
        | Expr::Var(_)
        | Expr::ContextItem => {}
        Expr::Sequence(es) => es.iter().for_each(&mut *f),
        Expr::FunctionCall { args, .. } => args.iter().for_each(&mut *f),
        Expr::Path { steps, .. } => steps.iter().for_each(&mut *f),
        Expr::Step { predicates, .. } => predicates.iter().for_each(&mut *f),
        Expr::Filter { base, predicates } => {
            f(base);
            predicates.iter().for_each(&mut *f);
        }
        Expr::RelativePath { base, step, .. } => {
            f(base);
            f(step);
        }
        Expr::Or(a, b) | Expr::And(a, b) | Expr::Range(a, b) => {
            f(a);
            f(b);
        }
        Expr::Comparison { left, right, .. }
        | Expr::Arith { left, right, .. }
        | Expr::Set { left, right, .. } => {
            f(left);
            f(right);
        }
        Expr::Neg(a) => f(a),
        Expr::If { cond, then, els } => {
            f(cond);
            f(then);
            if let Some(e) = els {
                f(e);
            }
        }
        Expr::Flwor {
            clauses,
            where_,
            order,
            ret,
        } => {
            for c in clauses {
                match c {
                    FlworClause::For { source, .. } => f(source),
                    FlworClause::Let { value, .. } => f(value),
                }
            }
            if let Some(w) = where_ {
                f(w);
            }
            order.iter().for_each(|o| f(&o.key));
            f(ret);
        }
        Expr::Quantified {
            bindings,
            satisfies,
            ..
        } => {
            bindings.iter().for_each(|(_, s)| f(s));
            f(satisfies);
        }
        Expr::DirectElement { attrs, content, .. } => {
            for (_, parts) in attrs {
                for p in parts {
                    if let AttrValuePart::Enclosed(x) = p {
                        f(x);
                    }
                }
            }
            for c in content {
                match c {
                    DirContent::Text(_) => {}
                    DirContent::Enclosed(x) | DirContent::Expr(x) => f(x),
                }
            }
        }
        Expr::ComputedElement { name, content } | Expr::ComputedAttribute { name, content } => {
            f(name);
            f(content);
        }
        Expr::ComputedText(x) | Expr::ComputedComment(x) | Expr::ComputedDocument(x) => f(x),
        Expr::Enqueue {
            message, props, ..
        } => {
            f(message);
            props.iter().for_each(|(_, v)| f(v));
        }
        Expr::Reset { key, .. } => {
            if let Some(k) = key {
                f(k);
            }
        }
        Expr::Insert { source, target, .. } | Expr::Replace { target, source, .. } => {
            f(source);
            f(target);
        }
        Expr::Delete { target } => f(target),
        Expr::Rename { target, name } => {
            f(target);
            f(name);
        }
        Expr::Cast { expr, .. } | Expr::InstanceOf { expr, .. } => f(expr),
    }
}

/// Recursive walk tracking whether the current position is guarded by a
/// condition (if / where / for / quantifier / predicate).
fn walk(e: &Expr, guarded: bool, f: &mut RuleFacts) {
    match e {
        Expr::StringLit(_) | Expr::IntLit(_) | Expr::DoubleLit(_) => {}
        Expr::Var(_) | Expr::ContextItem => {}
        Expr::Sequence(es) => es.iter().for_each(|x| walk(x, guarded, f)),
        Expr::FunctionCall { name, args } => {
            let qs = name.prefix.as_deref() == Some("qs");
            let bare = name.prefix.is_none() || name.prefix.as_deref() == Some("fn");
            if qs && name.local == "property" {
                if let Some(Expr::StringLit(p)) = args.first() {
                    f.prop_reads.push(p.clone());
                }
            }
            if (qs && name.local == "queue") || (bare && name.local == "collection") {
                if let Some(Expr::StringLit(q)) = args.first() {
                    f.reads_queues.push(q.clone());
                }
            }
            args.iter().for_each(|a| walk(a, guarded, f));
        }
        Expr::Path { steps, .. } => steps.iter().for_each(|s| walk(s, guarded, f)),
        Expr::Step { predicates, .. } => predicates.iter().for_each(|p| walk(p, true, f)),
        Expr::Filter { base, predicates } => {
            walk(base, guarded, f);
            predicates.iter().for_each(|p| walk(p, true, f));
        }
        Expr::RelativePath { base, step, .. } => {
            walk(base, guarded, f);
            walk(step, guarded, f);
        }
        Expr::Or(a, b) | Expr::And(a, b) => {
            walk(a, guarded, f);
            walk(b, guarded, f);
        }
        Expr::Comparison { left, right, .. }
        | Expr::Arith { left, right, .. }
        | Expr::Set { left, right, .. } => {
            walk(left, guarded, f);
            walk(right, guarded, f);
        }
        Expr::Range(a, b) => {
            walk(a, guarded, f);
            walk(b, guarded, f);
        }
        Expr::Neg(a) => walk(a, guarded, f),
        Expr::If { cond, then, els } => {
            walk(cond, guarded, f);
            walk(then, true, f);
            if let Some(e) = els {
                walk(e, true, f);
            }
        }
        Expr::Flwor {
            clauses,
            where_,
            order,
            ret,
        } => {
            // A `for` over a possibly-empty source guards everything after
            // it (zero iterations = nothing happens).
            let mut g = guarded;
            for c in clauses {
                match c {
                    FlworClause::For { source, .. } => {
                        walk(source, g, f);
                        g = true;
                    }
                    FlworClause::Let { value, .. } => walk(value, g, f),
                }
            }
            if let Some(w) = where_ {
                walk(w, g, f);
                g = true;
            }
            order.iter().for_each(|o| walk(&o.key, g, f));
            walk(ret, g, f);
        }
        Expr::Quantified {
            bindings,
            satisfies,
            ..
        } => {
            bindings.iter().for_each(|(_, src)| walk(src, guarded, f));
            walk(satisfies, true, f);
        }
        Expr::DirectElement { attrs, content, .. } => {
            for (_, parts) in attrs {
                for p in parts {
                    if let AttrValuePart::Enclosed(x) = p {
                        walk(x, guarded, f);
                    }
                }
            }
            for c in content {
                match c {
                    DirContent::Text(_) => {}
                    DirContent::Enclosed(x) | DirContent::Expr(x) => walk(x, guarded, f),
                }
            }
        }
        Expr::ComputedElement { name, content } => {
            walk(name, guarded, f);
            walk(content, guarded, f);
        }
        Expr::ComputedAttribute { name, content } => {
            walk(name, guarded, f);
            walk(content, guarded, f);
        }
        Expr::ComputedText(x) | Expr::ComputedComment(x) | Expr::ComputedDocument(x) => {
            walk(x, guarded, f)
        }
        Expr::Enqueue {
            message,
            queue,
            props,
        } => {
            f.enqueues.push(EnqueueSite {
                queue: queue.local.clone(),
                conditional: guarded,
                with_props: props
                    .iter()
                    .map(|(n, v)| {
                        let lit = match v {
                            Expr::StringLit(s) => Some(s.clone()),
                            _ => None,
                        };
                        (n.clone(), lit)
                    })
                    .collect(),
            });
            walk(message, guarded, f);
            props.iter().for_each(|(_, v)| walk(v, guarded, f));
        }
        Expr::Reset { slicing, key } => {
            match slicing {
                Some(s) => f.named_resets.push(s.local.clone()),
                None => f.bare_resets += 1,
            }
            if let Some(k) = key {
                walk(k, guarded, f);
            }
        }
        Expr::Insert { source, target, .. } => {
            walk(source, guarded, f);
            walk(target, guarded, f);
        }
        Expr::Delete { target } => walk(target, guarded, f),
        Expr::Replace { target, source, .. } => {
            walk(target, guarded, f);
            walk(source, guarded, f);
        }
        Expr::Rename { target, name } => {
            walk(target, guarded, f);
            walk(name, guarded, f);
        }
        Expr::Cast { expr, .. } | Expr::InstanceOf { expr, .. } => walk(expr, guarded, f),
    }
}

/// If the body is `if (cond) then …`, the element names `cond` requires to
/// exist (mirrors the compiler's trigger extraction; conservative).
fn extract_trigger_elements(body: &Expr) -> Option<Vec<String>> {
    let Expr::If { cond, .. } = body else {
        return None;
    };
    let mut names = Vec::new();
    if collect_required_elements(cond, &mut names) && !names.is_empty() {
        Some(names)
    } else {
        None
    }
}

fn collect_required_elements(e: &Expr, out: &mut Vec<String>) -> bool {
    match e {
        Expr::Path { root: true, steps } => {
            for s in steps {
                if let Expr::Step { axis, test, .. } = s {
                    if matches!(
                        axis,
                        Axis::Child | Axis::Descendant | Axis::DescendantOrSelf
                    ) {
                        if let NodeTest::Name(q) = test {
                            out.push(q.local.clone());
                            return true;
                        }
                    }
                }
            }
            false
        }
        Expr::And(a, b) => collect_required_elements(a, out) || collect_required_elements(b, out),
        Expr::Or(a, b) => {
            let mut left = Vec::new();
            let mut right = Vec::new();
            if collect_required_elements(a, &mut left) && collect_required_elements(b, &mut right) {
                out.extend(left);
                out.extend(right);
                true
            } else {
                false
            }
        }
        _ => false,
    }
}
