//! The queue/rule message-flow graph and derived orders.
//!
//! Nodes are the application's declared queues (sorted by name for
//! determinism). Edges are statically-known message flows:
//!
//! * a rule attached to queue `q` enqueues into `t` → edge `q → t`,
//!   labeled with the rule and whether the enqueue is guarded;
//! * a slicing rule enqueues into `t` → one edge per queue the slicing's
//!   key property can appear on (its bindings, plus any queue where an
//!   enqueue sets the property via `with`);
//! * an enqueue into an *echo* queue that sets `with target value "t"`
//!   with a string literal adds the timer hop `echo → t` (unconditional:
//!   the timer always fires).
//!
//! The same graph drives the deterministic global lock-acquisition order
//! ([`FlowGraph::lock_order`]): queues are ranked by the topological order
//! of the condensation (flow sources first, ties broken by name), so
//! every transaction acquires queue locks in one global order and
//! cross-enqueueing rules cannot deadlock.

use crate::facts::RuleFacts;
use demaq_qdl::{AppSpec, QueueKind};
use std::collections::{HashMap, HashSet};

/// One statically-known flow edge.
#[derive(Debug, Clone)]
pub struct FlowEdge {
    pub from: usize,
    pub to: usize,
    /// Rule that performs the enqueue (or, for timer hops, the rule that
    /// armed the timer).
    pub rule: String,
    /// True when the enqueue is guarded by a condition.
    pub conditional: bool,
    /// True for echo-queue timer hops (edge derived from `with target`).
    pub timer_hop: bool,
}

/// The application message-flow graph.
#[derive(Debug, Clone, Default)]
pub struct FlowGraph {
    /// Declared queue names, sorted.
    pub queues: Vec<String>,
    pub edges: Vec<FlowEdge>,
}

impl FlowGraph {
    pub fn index(&self, name: &str) -> Option<usize> {
        self.queues.binary_search_by(|q| q.as_str().cmp(name)).ok()
    }

    /// Build the flow graph for an application.
    pub fn build(spec: &AppSpec, rules: &[RuleFacts]) -> FlowGraph {
        let mut queues: Vec<String> = spec.queues.iter().map(|q| q.name.clone()).collect();
        queues.sort();
        queues.dedup();
        let mut g = FlowGraph {
            queues,
            edges: Vec::new(),
        };

        // Property -> queues where some enqueue sets it via `with`.
        let mut with_set_on: HashMap<&str, Vec<&str>> = HashMap::new();
        for r in rules {
            for s in &r.enqueues {
                for (p, _) in &s.with_props {
                    with_set_on.entry(p.as_str()).or_default().push(&s.queue);
                }
            }
        }

        for r in rules {
            let sources = rule_source_queues(spec, r, &with_set_on);
            for s in &r.enqueues {
                let Some(to) = g.index(&s.queue) else {
                    continue; // undeclared target: DQ001's job, not an edge
                };
                for src in &sources {
                    if let Some(from) = g.index(src) {
                        g.edges.push(FlowEdge {
                            from,
                            to,
                            rule: r.name.clone(),
                            conditional: s.conditional,
                            timer_hop: false,
                        });
                    }
                }
                // Echo timer hop: `with target value "t"` on an enqueue
                // into an echo queue forwards to `t` when the timer fires.
                if spec.queue(&s.queue).map(|q| q.kind) == Some(QueueKind::Echo) {
                    for (p, lit) in &s.with_props {
                        if p == "target" {
                            if let Some(t) = lit.as_deref().and_then(|t| g.index(t)) {
                                g.edges.push(FlowEdge {
                                    from: to,
                                    to: t,
                                    rule: r.name.clone(),
                                    conditional: false,
                                    timer_hop: true,
                                });
                            }
                        }
                    }
                }
            }
        }
        g
    }

    /// Adjacency lists over an edge filter.
    fn adjacency(&self, keep: impl Fn(&FlowEdge) -> bool) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.queues.len()];
        for e in &self.edges {
            if keep(e) {
                adj[e.from].push(e.to);
            }
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        adj
    }

    /// Strongly connected components of the subgraph of *unconditional*
    /// edges that contain a cycle (size > 1, or a self-loop).
    pub fn unguarded_cycles(&self) -> Vec<Vec<usize>> {
        let adj = self.adjacency(|e| !e.conditional);
        strongly_connected(self.queues.len(), &adj)
            .into_iter()
            .filter(|scc| scc.len() > 1 || adj[scc[0]].contains(&scc[0]))
            .collect()
    }

    /// Queue indexes with at least one inbound flow edge.
    pub fn produced_into(&self) -> HashSet<usize> {
        self.edges.iter().map(|e| e.to).collect()
    }

    /// The deterministic global lock-acquisition order: queues ranked by
    /// the topological order of the SCC condensation (flow sources first),
    /// name order within an SCC and among incomparable queues.
    pub fn lock_order(&self) -> Vec<String> {
        let adj = self.adjacency(|_| true);
        // Tarjan emits SCCs in reverse topological order of the
        // condensation; reversing yields sources-first.
        let mut sccs = strongly_connected(self.queues.len(), &adj);
        sccs.reverse();
        let mut order = Vec::with_capacity(self.queues.len());
        for mut scc in sccs {
            scc.sort_by(|&a, &b| self.queues[a].cmp(&self.queues[b]));
            for i in scc {
                order.push(self.queues[i].clone());
            }
        }
        order
    }
}

/// Queues a rule's trigger can originate from: its queue for queue rules;
/// for slicing rules, every queue where the slicing's key property can
/// appear (bindings plus `with`-set sites).
fn rule_source_queues(
    spec: &AppSpec,
    rule: &RuleFacts,
    with_set_on: &HashMap<&str, Vec<&str>>,
) -> Vec<String> {
    if !rule.on_slicing {
        return vec![rule.target.clone()];
    }
    let Some(slicing) = spec.slicing(&rule.target) else {
        return Vec::new();
    };
    let mut out: Vec<String> = Vec::new();
    if let Some(prop) = spec.property(&slicing.property) {
        for b in &prop.bindings {
            out.extend(b.queues.iter().cloned());
        }
    }
    if let Some(qs) = with_set_on.get(slicing.property.as_str()) {
        out.extend(qs.iter().map(|q| q.to_string()));
    }
    out.sort();
    out.dedup();
    out
}

/// One edge of the error-routing graph: a failure on `from` routes an
/// error message into `to` (`via` names the failing rule, or the queue
/// itself for schema/gateway/timer failures).
#[derive(Debug, Clone)]
pub struct ErrorEdge {
    pub from: String,
    pub to: String,
    pub via: String,
}

/// Build the error-routing graph. Only queues that *can fail* get outgoing
/// edges: queues with attached rules (directly or via a slicing whose key
/// property can appear there), queues with a declared schema, and
/// non-basic queues (gateway sends, incoming validation, echo timers can
/// all fail). Resolution follows paper Sec. 3.6: rule > queue > system.
pub fn error_route_edges(spec: &AppSpec, rules: &[RuleFacts]) -> Vec<ErrorEdge> {
    let mut with_set_on: HashMap<&str, Vec<&str>> = HashMap::new();
    for r in rules {
        for s in &r.enqueues {
            for (p, _) in &s.with_props {
                with_set_on.entry(p.as_str()).or_default().push(&s.queue);
            }
        }
    }

    let mut edges = Vec::new();
    let mut push = |from: &str, to: Option<&str>, via: &str| {
        if let Some(to) = to {
            if spec.queue(to).is_some() {
                edges.push(ErrorEdge {
                    from: from.to_string(),
                    to: to.to_string(),
                    via: via.to_string(),
                });
            }
        }
    };

    let system = spec.system_error_queue.as_deref();
    for r in rules {
        for q in rule_source_queues(spec, r, &with_set_on) {
            let queue_eq = spec.queue(&q).and_then(|d| d.error_queue.as_deref());
            let eq = r.error_queue.as_deref().or(queue_eq).or(system);
            push(&q, eq, &r.name);
        }
    }
    for q in &spec.queues {
        let can_fail_without_rules = q.schema.is_some() || q.kind != QueueKind::Basic;
        if can_fail_without_rules {
            let eq = q.error_queue.as_deref().or(system);
            push(&q.name, eq, &q.name);
        }
    }
    edges
}

/// Strongly connected components (Tarjan). Returned in reverse
/// topological order of the condensation; deterministic for a fixed node
/// order and adjacency.
pub fn strongly_connected(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct State<'a> {
        adj: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        lowlink: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        out: Vec<Vec<usize>>,
    }
    fn strong(v: usize, st: &mut State) {
        st.index[v] = Some(st.next);
        st.lowlink[v] = st.next;
        st.next += 1;
        st.stack.push(v);
        st.on_stack[v] = true;
        for &w in st.adj[v].iter() {
            if st.index[w].is_none() {
                strong(w, st);
                st.lowlink[v] = st.lowlink[v].min(st.lowlink[w]);
            } else if st.on_stack[w] {
                st.lowlink[v] = st.lowlink[v].min(st.index[w].expect("visited"));
            }
        }
        if st.lowlink[v] == st.index[v].expect("set above") {
            let mut scc = Vec::new();
            loop {
                let w = st.stack.pop().expect("stack invariant");
                st.on_stack[w] = false;
                scc.push(w);
                if w == v {
                    break;
                }
            }
            scc.sort_unstable();
            st.out.push(scc);
        }
    }
    let mut st = State {
        adj,
        index: vec![None; n],
        lowlink: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if st.index[v].is_none() {
            strong(v, &mut st);
        }
    }
    st.out
}
