//! # demaq-analysis
//!
//! Whole-application static analysis for Demaq (paper Sec. 4): because the
//! entire application — queues, properties, slicings, and the complete
//! rule set — is declarative, it can be analyzed *as a whole* before a
//! single message arrives. This crate builds the queue/rule message-flow
//! graph from an [`AppSpec`] plus per-rule [`RuleFacts`] (read/write sets,
//! enqueue sites, constant-folded conditions via `demaq-xquery`'s plan
//! lowerer) and emits structured [`Diagnostic`]s with stable lint codes:
//!
//! | code | slug | default |
//! |------|------|---------|
//! | DQ001 | unknown-enqueue-target | deny |
//! | DQ002 | enqueue-into-incoming-gateway | deny |
//! | DQ003 | unreachable-queue | warn |
//! | DQ004 | dead-rule | warn |
//! | DQ005 | unguarded-flow-cycle | warn |
//! | DQ006 | property-read-never-written | warn |
//! | DQ007 | error-queue-cycle | deny |
//! | DQ008 | slicing-key-misuse | warn |
//! | DQ009 | dead-end-lineage | warn |
//! | DQ010 | cross-shard-hot-edge | warn |
//! | DQ011 | unbounded-aggregate-rescan | warn |
//!
//! The same flow graph yields a deterministic global lock-acquisition
//! order ([`Analysis::lock_order`]) that the engine uses for deadlock
//! *avoidance* on cross-enqueueing rules, and a queue → shard
//! [`placement::Placement`] the sharded runtime routes enqueues with.

pub mod extract;
pub mod facts;
pub mod graph;
pub mod placement;

pub use extract::extract_qdl_programs;
pub use facts::{
    extract_aggregate_reads, AggReadSource, AggregateReadFact, EnqueueSite, RuleFacts,
};
pub use graph::{error_route_edges, strongly_connected, ErrorEdge, FlowEdge, FlowGraph};
pub use placement::{
    compute_placement, cross_shard_edges, stable_hash, Placement, QueuePlacement,
};

use demaq_qdl::{AppSpec, PropKind, QueueKind};
use demaq_xml::schema::Schema;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Properties the engine itself writes on every message; reading them
/// never needs an application-level writer.
const SYSTEM_PROPS: &[&str] = &[
    "creatingRule",
    "createdAt",
    "Sender",
    "connection",
    "errorPath",
    "parentMsg",
    "rootMsg",
];

/// What to do about a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suppressed entirely.
    Allow,
    /// Reported, deployment proceeds.
    Warn,
    /// Reported, deployment (or `demaq-lint`) fails.
    Deny,
}

impl Severity {
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// Stable lint codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// DQ001: `do enqueue` into a queue that is not declared.
    UnknownEnqueueTarget,
    /// DQ002: `do enqueue` into an incoming gateway.
    EnqueueIntoIncomingGateway,
    /// DQ003: a queue nothing produces into, reads, or processes.
    UnreachableQueue,
    /// DQ004: a rule that can never fire.
    DeadRule,
    /// DQ005: a message-flow cycle with no condition on any edge.
    UnguardedFlowCycle,
    /// DQ006: a property read that no binding or enqueue ever writes.
    PropertyReadNeverWritten,
    /// DQ007: error routing that loops back into the failing path.
    ErrorQueueCycle,
    /// DQ008: slicing key that can never form slices / misused reset.
    SlicingKeyMisuse,
    /// DQ009: rule enqueues into a queue whose messages can never reach
    /// an outgoing gateway or error queue (the causal chain dead-ends
    /// unobserved).
    DeadEndLineage,
    /// DQ010: a rule's enqueue target is placed on a different shard than
    /// its trigger queue under the computed placement, so the hot chain
    /// hops shards.
    CrossShardHotEdge,
    /// DQ011: an aggregate read over a queue in a shape the incremental
    /// maintenance pass cannot answer from a materialized cell, where no
    /// rule processes the queue to bound its retention — every evaluation
    /// rescans a queue that only grows.
    UnboundedAggregateRescan,
}

impl LintCode {
    pub const ALL: [LintCode; 11] = [
        LintCode::UnknownEnqueueTarget,
        LintCode::EnqueueIntoIncomingGateway,
        LintCode::UnreachableQueue,
        LintCode::DeadRule,
        LintCode::UnguardedFlowCycle,
        LintCode::PropertyReadNeverWritten,
        LintCode::ErrorQueueCycle,
        LintCode::SlicingKeyMisuse,
        LintCode::DeadEndLineage,
        LintCode::CrossShardHotEdge,
        LintCode::UnboundedAggregateRescan,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            LintCode::UnknownEnqueueTarget => "DQ001",
            LintCode::EnqueueIntoIncomingGateway => "DQ002",
            LintCode::UnreachableQueue => "DQ003",
            LintCode::DeadRule => "DQ004",
            LintCode::UnguardedFlowCycle => "DQ005",
            LintCode::PropertyReadNeverWritten => "DQ006",
            LintCode::ErrorQueueCycle => "DQ007",
            LintCode::SlicingKeyMisuse => "DQ008",
            LintCode::DeadEndLineage => "DQ009",
            LintCode::CrossShardHotEdge => "DQ010",
            LintCode::UnboundedAggregateRescan => "DQ011",
        }
    }

    pub fn slug(&self) -> &'static str {
        match self {
            LintCode::UnknownEnqueueTarget => "unknown-enqueue-target",
            LintCode::EnqueueIntoIncomingGateway => "enqueue-into-incoming-gateway",
            LintCode::UnreachableQueue => "unreachable-queue",
            LintCode::DeadRule => "dead-rule",
            LintCode::UnguardedFlowCycle => "unguarded-flow-cycle",
            LintCode::PropertyReadNeverWritten => "property-read-never-written",
            LintCode::ErrorQueueCycle => "error-queue-cycle",
            LintCode::SlicingKeyMisuse => "slicing-key-misuse",
            LintCode::DeadEndLineage => "dead-end-lineage",
            LintCode::CrossShardHotEdge => "cross-shard-hot-edge",
            LintCode::UnboundedAggregateRescan => "unbounded-aggregate-rescan",
        }
    }

    pub fn default_severity(&self) -> Severity {
        match self {
            LintCode::UnknownEnqueueTarget
            | LintCode::EnqueueIntoIncomingGateway
            | LintCode::ErrorQueueCycle => Severity::Deny,
            _ => Severity::Warn,
        }
    }

    /// Parse `"DQ001"` or a slug.
    pub fn parse(s: &str) -> Option<LintCode> {
        Self::ALL
            .iter()
            .copied()
            .find(|c| c.as_str().eq_ignore_ascii_case(s) || c.slug() == s)
    }
}

/// Per-application allow/warn/deny configuration.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    overrides: HashMap<LintCode, Severity>,
}

impl LintConfig {
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Override one code's severity.
    pub fn set(&mut self, code: LintCode, severity: Severity) -> &mut Self {
        self.overrides.insert(code, severity);
        self
    }

    /// Effective severity for a code.
    pub fn severity(&self, code: LintCode) -> Severity {
        self.overrides
            .get(&code)
            .copied()
            .unwrap_or_else(|| code.default_severity())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: LintCode,
    pub severity: Severity,
    /// What the finding is about, e.g. `rule fork` or `queue billing`.
    pub subject: String,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} {}] {}: {}",
            self.severity.as_str(),
            self.code.as_str(),
            self.code.slug(),
            self.subject,
            self.message
        )
    }
}

/// One edge of the aggregate dependency graph: an aggregate node (in a
/// rule body or property binding) and the queue or slicing it reads.
/// The engine's incremental maintenance pass answers the `incremental`
/// edges from materialized cells validated by the store's version clocks;
/// the rest rescan on every evaluation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AggregateDep {
    /// Where the aggregate sits: `rule NAME` or `property NAME`.
    pub site: String,
    /// Aggregate function name (`count`, `sum`, …).
    pub op: String,
    /// What it reads: `queue NAME` or `slicing NAME`.
    pub source: String,
    /// True when the incremental pass maintains this aggregate.
    pub incremental: bool,
}

/// The analyzer's output: diagnostics, the flow graph, and the derived
/// global lock-acquisition order.
#[derive(Debug, Clone)]
pub struct Analysis {
    pub diagnostics: Vec<Diagnostic>,
    pub graph: FlowGraph,
    /// Queues in global lock-acquisition order (flow sources first).
    pub lock_order: Vec<String>,
    /// Aggregate reads found in rule bodies and property bindings, with
    /// the queue/slicing each depends on (sorted, deduplicated).
    pub aggregate_deps: Vec<AggregateDep>,
}

impl Analysis {
    /// The highest severity among the diagnostics.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    pub fn has_deny(&self) -> bool {
        self.max_severity() == Some(Severity::Deny)
    }

    /// Render for humans, one diagnostic per line.
    pub fn render_human(&self) -> String {
        if self.diagnostics.is_empty() {
            return "no diagnostics\n".to_string();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let denies = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count();
        out.push_str(&format!(
            "{} diagnostic(s), {} deny\n",
            self.diagnostics.len(),
            denies
        ));
        out
    }

    /// Render as a JSON document (hand-rolled; the build is offline and
    /// dependency-free).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"slug\":{},\"severity\":{},\"subject\":{},\"message\":{}}}",
                json_str(d.code.as_str()),
                json_str(d.code.slug()),
                json_str(d.severity.as_str()),
                json_str(&d.subject),
                json_str(&d.message)
            ));
        }
        let warns = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count();
        let denies = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count();
        out.push_str(&format!(
            "],\"summary\":{{\"total\":{},\"warn\":{},\"deny\":{}}},\"lock_order\":[",
            self.diagnostics.len(),
            warns,
            denies
        ));
        for (i, q) in self.lock_order.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(q));
        }
        out.push_str("]}");
        out
    }
}

/// JSON string literal with escaping (shared by the renderers and the
/// `demaq-lint` CLI; the build is offline and dependency-free).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Analyze an application from its raw parsed spec (facts derived with
/// [`RuleFacts::from_rule`]; the `demaq-lint` / test path).
pub fn analyze_spec(spec: &AppSpec, config: &LintConfig) -> Analysis {
    let facts: Vec<RuleFacts> = spec
        .rules
        .iter()
        .map(|r| RuleFacts::from_rule(r, spec))
        .collect();
    analyze(spec, &facts, config)
}

/// Analyze an application from a spec plus per-rule facts (the deploy-time
/// path: facts come from the compiled rules' read/write sets).
pub fn analyze(spec: &AppSpec, rules: &[RuleFacts], config: &LintConfig) -> Analysis {
    let graph = FlowGraph::build(spec, rules);
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut emit = |code: LintCode, subject: String, message: String| {
        let severity = config.severity(code);
        if severity != Severity::Allow {
            diags.push(Diagnostic {
                code,
                severity,
                subject,
                message,
            });
        }
    };

    // Pre-parse declared schemas (parse failures are the compiler's
    // concern, not the analyzer's).
    let schemas: HashMap<&str, Schema> = spec
        .schemas
        .iter()
        .filter_map(|(n, src)| Schema::parse(src).ok().map(|s| (n.as_str(), s)))
        .collect();

    // Properties written somewhere: a binding supplies a value, or an
    // enqueue sets it via `with`.
    let mut written_props: HashSet<&str> = SYSTEM_PROPS.iter().copied().collect();
    for p in &spec.properties {
        if !p.bindings.is_empty() || p.kind == PropKind::Explicit {
            // Explicit properties may also be supplied by the sender at
            // the gateway; treat them as externally writable.
            written_props.insert(p.name.as_str());
        }
    }
    for r in rules {
        for n in r.with_prop_names() {
            written_props.insert(n);
        }
    }

    // ---- DQ001 / DQ002: enqueue targets -----------------------------------
    for r in rules {
        let mut seen: HashSet<(&str, bool)> = HashSet::new();
        for s in &r.enqueues {
            match spec.queue(&s.queue) {
                None => {
                    if seen.insert((s.queue.as_str(), false)) {
                        emit(
                            LintCode::UnknownEnqueueTarget,
                            format!("rule {}", r.name),
                            format!("enqueues into undeclared queue `{}`", s.queue),
                        );
                    }
                }
                Some(q) if q.kind == QueueKind::IncomingGateway => {
                    if seen.insert((s.queue.as_str(), true)) {
                        emit(
                            LintCode::EnqueueIntoIncomingGateway,
                            format!("rule {}", r.name),
                            format!(
                                "enqueues into incoming gateway `{}`; gateway queues only \
                                 receive messages from remote endpoints",
                                s.queue
                            ),
                        );
                    }
                }
                Some(q) if q.kind == QueueKind::Echo => {
                    for (p, lit) in &s.with_props {
                        if p != "target" {
                            continue;
                        }
                        if let Some(t) = lit.as_deref() {
                            if spec.queue(t).map(|d| d.kind) == Some(QueueKind::IncomingGateway) {
                                emit(
                                    LintCode::EnqueueIntoIncomingGateway,
                                    format!("rule {}", r.name),
                                    format!(
                                        "arms a timer on `{}` whose target `{t}` is an \
                                         incoming gateway",
                                        s.queue
                                    ),
                                );
                            }
                        }
                    }
                }
                Some(_) => {}
            }
        }
    }

    // ---- DQ003: unreachable queues ----------------------------------------
    let produced: HashSet<usize> = graph.produced_into();
    let error_edges = error_route_edges(spec, rules);
    let error_targets: HashSet<&str> = spec
        .queues
        .iter()
        .filter_map(|q| q.error_queue.as_deref())
        .chain(rules.iter().filter_map(|r| r.error_queue.as_deref()))
        .chain(spec.system_error_queue.as_deref())
        .collect();
    let read_queues: HashSet<&str> = rules
        .iter()
        .flat_map(|r| r.reads_queues.iter().map(|q| q.as_str()))
        .collect();
    let bound_queues: HashSet<&str> = spec
        .properties
        .iter()
        .flat_map(|p| p.bindings.iter())
        .flat_map(|b| b.queues.iter().map(|q| q.as_str()))
        .collect();
    let ruled_queues: HashSet<&str> = rules
        .iter()
        .filter(|r| !r.on_slicing)
        .map(|r| r.target.as_str())
        .collect();
    for q in &spec.queues {
        if q.kind != QueueKind::Basic {
            continue; // gateways and echo queues face the outside world
        }
        let idx = graph.index(&q.name);
        let reachable = idx.is_some_and(|i| produced.contains(&i))
            || error_targets.contains(q.name.as_str())
            || read_queues.contains(q.name.as_str())
            || bound_queues.contains(q.name.as_str())
            || ruled_queues.contains(q.name.as_str());
        if !reachable {
            emit(
                LintCode::UnreachableQueue,
                format!("queue {}", q.name),
                "nothing produces into, reads, or processes this queue: no rule enqueues \
                 here, no error route targets it, no rule or property references it"
                    .to_string(),
            );
        }
    }

    // ---- DQ004: dead rules ------------------------------------------------
    for r in rules {
        if r.never_fires {
            emit(
                LintCode::DeadRule,
                format!("rule {}", r.name),
                "the body constant-folds to a no-op (its condition can never hold)".to_string(),
            );
            continue;
        }
        if r.on_slicing {
            continue;
        }
        let (Some(trigger), Some(queue)) = (&r.trigger_elements, spec.queue(&r.target)) else {
            continue;
        };
        let Some(schema) = queue.schema.as_deref().and_then(|s| schemas.get(s)) else {
            continue;
        };
        let vocab: HashSet<&str> = schema
            .elements
            .keys()
            .map(|k| k.as_str())
            .chain(schema.root.as_deref())
            .collect();
        if !trigger.iter().any(|t| vocab.contains(t.as_str())) {
            emit(
                LintCode::DeadRule,
                format!("rule {}", r.name),
                format!(
                    "its trigger requires element(s) {} but schema `{}` of queue `{}` \
                     declares none of them; the rule can never match",
                    trigger
                        .iter()
                        .map(|t| format!("`{t}`"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    queue.schema.as_deref().unwrap_or(""),
                    r.target
                ),
            );
        }
    }

    // ---- DQ005: unguarded flow cycles -------------------------------------
    for scc in graph.unguarded_cycles() {
        let names: Vec<&str> = scc.iter().map(|&i| graph.queues[i].as_str()).collect();
        let in_cycle: HashSet<usize> = scc.iter().copied().collect();
        let mut rules_on_cycle: BTreeSet<&str> = BTreeSet::new();
        for e in &graph.edges {
            if !e.conditional && in_cycle.contains(&e.from) && in_cycle.contains(&e.to) {
                rules_on_cycle.insert(e.rule.as_str());
            }
        }
        emit(
            LintCode::UnguardedFlowCycle,
            format!("cycle {}", names.join(" -> ")),
            format!(
                "every edge of this message-flow cycle enqueues unconditionally \
                 (rule(s) {}); once entered it loops forever",
                rules_on_cycle
                    .iter()
                    .map(|r| format!("`{r}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        );
    }

    // ---- DQ006: property read never written --------------------------------
    let mut readers: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for r in rules {
        for p in &r.prop_reads {
            readers.entry(p.as_str()).or_default().insert(r.name.as_str());
        }
    }
    for (prop, by) in readers {
        if written_props.contains(prop) {
            continue;
        }
        let who = by
            .iter()
            .map(|r| format!("`{r}`"))
            .collect::<Vec<_>>()
            .join(", ");
        let detail = if spec.property(prop).is_some() {
            "no binding supplies a value and no enqueue sets it"
        } else {
            "it is not declared and no enqueue sets it"
        };
        emit(
            LintCode::PropertyReadNeverWritten,
            format!("property {prop}"),
            format!("read by rule(s) {who} but never written: {detail}"),
        );
    }

    // ---- DQ007: error-queue routing cycles ---------------------------------
    {
        let mut adj = vec![Vec::new(); graph.queues.len()];
        for e in &error_edges {
            if let (Some(a), Some(b)) = (graph.index(&e.from), graph.index(&e.to)) {
                adj[a].push(b);
            }
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        for scc in strongly_connected(graph.queues.len(), &adj) {
            let cyclic = scc.len() > 1 || adj[scc[0]].contains(&scc[0]);
            if !cyclic {
                continue;
            }
            let names: Vec<&str> = scc.iter().map(|&i| graph.queues[i].as_str()).collect();
            emit(
                LintCode::ErrorQueueCycle,
                format!("queue {}", names[0]),
                format!(
                    "error routing loops through {}: a failure inside the cycle re-enters \
                     it and can ping-pong forever (Sec. 3.6 resolution rule > queue > system)",
                    names
                        .iter()
                        .map(|n| format!("`{n}`"))
                        .collect::<Vec<_>>()
                        .join(" -> ")
                ),
            );
        }
    }

    // ---- DQ008: slicing-key misuse -----------------------------------------
    for s in &spec.slicings {
        let Some(prop) = spec.property(&s.property) else {
            continue; // undeclared key: validate's job
        };
        if prop.bindings.is_empty()
            && prop.kind != PropKind::Explicit
            && !rules
                .iter()
                .any(|r| r.with_prop_names().any(|n| n == s.property))
        {
            emit(
                LintCode::SlicingKeyMisuse,
                format!("slicing {}", s.name),
                format!(
                    "key property `{}` is never written on any queue (no binding, never \
                     set at enqueue): slices can never form",
                    s.property
                ),
            );
        }
    }
    for r in rules {
        for t in &r.named_resets {
            if spec.slicing(t).is_none() {
                emit(
                    LintCode::SlicingKeyMisuse,
                    format!("rule {}", r.name),
                    format!("`do reset {t}` names an undeclared slicing"),
                );
            }
        }
        if r.bare_resets > 0 && !r.on_slicing {
            emit(
                LintCode::SlicingKeyMisuse,
                format!("rule {}", r.name),
                format!(
                    "bare `do reset` in a rule on queue `{}`: reset needs a slicing \
                     context (name one: `do reset S key …`)",
                    r.target
                ),
            );
        }
    }

    // ---- DQ009: dead-end lineage -------------------------------------------
    // Provenance-aware flow check: in an application that talks to the
    // outside world (an outgoing gateway) or routes failures (error
    // queues), every causal chain should be able to terminate somewhere
    // observable — a gateway, an error queue, or a queue some rule reads
    // back. A queue that rules enqueue into but from which no flow or
    // error route reaches such a terminal collects messages whose lineage
    // dead-ends unobserved. Self-contained pipelines (no gateways, no
    // error routing) are exempt: their terminal queues *are* the output.
    {
        let has_outgoing = spec
            .queues
            .iter()
            .any(|q| q.kind == QueueKind::OutgoingGateway);
        if has_outgoing || !error_targets.is_empty() {
            let n = graph.queues.len();
            // Reverse adjacency over flow edges plus error-routing edges:
            // lineage continues through both rule enqueues and failures.
            let mut radj = vec![Vec::new(); n];
            for e in &graph.edges {
                radj[e.to].push(e.from);
            }
            for e in &error_edges {
                if let (Some(a), Some(b)) = (graph.index(&e.from), graph.index(&e.to)) {
                    radj[b].push(a);
                }
            }
            let mut reaches = vec![false; n];
            let mut stack: Vec<usize> = Vec::new();
            for (i, name) in graph.queues.iter().enumerate() {
                let terminal = spec.queue(name).map(|q| q.kind)
                    == Some(QueueKind::OutgoingGateway)
                    || error_targets.contains(name.as_str())
                    || read_queues.contains(name.as_str());
                if terminal {
                    reaches[i] = true;
                    stack.push(i);
                }
            }
            // Echo queues armed with a non-literal `target` hop somewhere
            // the analysis cannot resolve; give them the benefit of the
            // doubt rather than report a false dead end.
            for r in rules {
                for s in &r.enqueues {
                    if spec.queue(&s.queue).map(|q| q.kind) != Some(QueueKind::Echo) {
                        continue;
                    }
                    let opaque_target = s.with_props.iter().any(|(p, lit)| {
                        p == "target" && lit.as_deref().and_then(|t| graph.index(t)).is_none()
                    });
                    if opaque_target {
                        if let Some(i) = graph.index(&s.queue) {
                            if !reaches[i] {
                                reaches[i] = true;
                                stack.push(i);
                            }
                        }
                    }
                }
            }
            while let Some(v) = stack.pop() {
                for &u in &radj[v] {
                    if !reaches[u] {
                        reaches[u] = true;
                        stack.push(u);
                    }
                }
            }
            // One diagnostic per dead-end queue, naming its producers.
            let mut producers: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
            for r in rules {
                for s in &r.enqueues {
                    let Some(q) = spec.queue(&s.queue) else {
                        continue; // DQ001's job
                    };
                    if q.kind == QueueKind::IncomingGateway {
                        continue; // DQ002's job
                    }
                    if graph.index(&s.queue).is_some_and(|i| !reaches[i]) {
                        producers
                            .entry(s.queue.as_str())
                            .or_default()
                            .insert(r.name.as_str());
                    }
                }
            }
            for (queue, by) in producers {
                let who = by
                    .iter()
                    .map(|r| format!("`{r}`"))
                    .collect::<Vec<_>>()
                    .join(", ");
                emit(
                    LintCode::DeadEndLineage,
                    format!("queue {queue}"),
                    format!(
                        "rule(s) {who} enqueue here, but no flow or error route leads from \
                         `{queue}` to an outgoing gateway, an error queue, or a queue a rule \
                         reads: the causal chain dead-ends unobserved"
                    ),
                );
            }
        }
    }

    // ---- DQ010: cross-shard hot edges --------------------------------------
    // Nominal 2-shard placement: a flow edge that hops shards at N=2 hops
    // at every N>1, so placement regressions surface at deploy time even
    // when today's deployment is single-shard.
    {
        let placement =
            placement::compute_placement(spec, rules, &graph, 2, &BTreeMap::new());
        for e in placement::cross_shard_edges(spec, rules, &graph, &placement) {
            emit(
                LintCode::CrossShardHotEdge,
                format!("rule {}", e.rule),
                e.message,
            );
        }
    }

    // ---- aggregate dependency graph ----------------------------------------
    // Every aggregate node (rule bodies and property binding values) with
    // the queue/slicing it reads; consumed by DQ011 below and exposed on
    // the Analysis for tooling.
    let mut aggregate_deps: Vec<AggregateDep> = Vec::new();
    for r in rules {
        for a in &r.aggregate_reads {
            let source = match &a.source {
                AggReadSource::Queue(q) => format!("queue {q}"),
                // qs:slice() outside a slicing rule is a runtime error,
                // not a dependency.
                AggReadSource::Slice if r.on_slicing => format!("slicing {}", r.target),
                AggReadSource::Slice => continue,
            };
            aggregate_deps.push(AggregateDep {
                site: format!("rule {}", r.name),
                op: a.op.clone(),
                source,
                incremental: a.incremental,
            });
        }
    }
    for p in &spec.properties {
        for b in &p.bindings {
            for a in extract_aggregate_reads(&b.value, None) {
                let AggReadSource::Queue(q) = &a.source else {
                    continue;
                };
                aggregate_deps.push(AggregateDep {
                    site: format!("property {}", p.name),
                    op: a.op.clone(),
                    source: format!("queue {q}"),
                    incremental: a.incremental,
                });
            }
        }
    }
    aggregate_deps.sort();
    aggregate_deps.dedup();

    // ---- DQ011: unbounded aggregate rescans --------------------------------
    // A rescan-shaped aggregate over a queue no rule processes: nothing
    // drains the queue, so retention GC never bounds it, and every
    // evaluation pays O(N) over a membership that only grows. Slice reads
    // are bounded by the slice lifetime (reset), incremental shapes by
    // the materialized cell.
    for r in rules {
        for a in &r.aggregate_reads {
            if a.incremental {
                continue;
            }
            let AggReadSource::Queue(q) = &a.source else {
                continue;
            };
            if spec.queue(q).is_none() {
                continue; // unknown queue is DQ001's job
            }
            if ruled_queues.contains(q.as_str()) {
                continue; // a rule drains it; retention bounds the scan
            }
            emit(
                LintCode::UnboundedAggregateRescan,
                format!("rule {}", r.name),
                format!(
                    "`{}` over queue `{q}` is not in a shape the incremental \
                     aggregate pass maintains, and no rule processes `{q}` to \
                     bound its retention: every evaluation rescans a queue that \
                     only grows",
                    a.op
                ),
            );
        }
    }

    diags.sort_by(|a, b| {
        (a.code, &a.subject, &a.message).cmp(&(b.code, &b.subject, &b.message))
    });
    diags.dedup();

    let lock_order = graph.lock_order();
    Analysis {
        diagnostics: diags,
        graph,
        lock_order,
        aggregate_deps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demaq_qdl::parse_program;

    fn run(src: &str) -> Analysis {
        let spec = parse_program(src).expect("parse");
        analyze_spec(&spec, &LintConfig::new())
    }

    fn codes(a: &Analysis) -> Vec<&'static str> {
        a.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_pipeline_has_no_diagnostics() {
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create queue outbox kind basic mode persistent
            create rule fwd for inbox
              if (//order) then do enqueue <fwd/> into outbox
        "#);
        assert!(a.diagnostics.is_empty(), "got: {:?}", a.diagnostics);
        assert_eq!(a.lock_order, ["inbox", "outbox"], "sources rank first");
    }

    #[test]
    fn unknown_enqueue_target_is_dq001_deny() {
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create rule fwd for inbox
              if (//order) then do enqueue <fwd/> into nowhere
        "#);
        assert_eq!(codes(&a), ["DQ001"]);
        assert!(a.has_deny());
    }

    #[test]
    fn unguarded_self_loop_is_dq005() {
        let a = run(r#"
            create queue spin kind basic mode persistent
            create rule again for spin
              do enqueue <again/> into spin
        "#);
        assert_eq!(codes(&a), ["DQ005"]);
    }

    #[test]
    fn guarded_cycle_is_clean() {
        let a = run(r#"
            create queue a kind basic mode persistent
            create queue b kind basic mode persistent
            create rule ab for a if (//go) then do enqueue <x/> into b
            create rule ba for b do enqueue <x/> into a
        "#);
        assert!(a.diagnostics.is_empty(), "got: {:?}", a.diagnostics);
    }

    #[test]
    fn allow_suppresses_and_deny_escalates() {
        let src = r#"
            create queue spin kind basic mode persistent
            create rule again for spin
              do enqueue <again/> into spin
        "#;
        let spec = parse_program(src).unwrap();
        let mut cfg = LintConfig::new();
        cfg.set(LintCode::UnguardedFlowCycle, Severity::Allow);
        assert!(analyze_spec(&spec, &cfg).diagnostics.is_empty());
        let mut cfg = LintConfig::new();
        cfg.set(LintCode::UnguardedFlowCycle, Severity::Deny);
        assert!(analyze_spec(&spec, &cfg).has_deny());
    }

    #[test]
    fn lock_order_follows_flow_topology() {
        let a = run(r#"
            create queue sink kind basic mode persistent
            create queue mid kind basic mode persistent
            create queue src kind basic mode persistent
            create rule r1 for src if (//x) then do enqueue <y/> into mid
            create rule r2 for mid if (//y) then do enqueue <z/> into sink
        "#);
        assert_eq!(a.lock_order, ["src", "mid", "sink"]);
    }

    #[test]
    fn dead_end_lineage_needs_an_observable_world() {
        // With an outgoing gateway in the app, a rule-fed queue that can
        // never reach a gateway, error queue, or read queue is DQ009…
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create queue ship kind outgoingGateway mode persistent endpoint "urn:ship"
            create queue limbo kind basic mode persistent
            create rule send for inbox
              if (//order) then do enqueue <req/> into ship
            create rule stash for inbox
              if (//order) then do enqueue <copy/> into limbo
        "#);
        assert_eq!(codes(&a), ["DQ009"], "{}", a.render_human());
        assert_eq!(a.diagnostics[0].subject, "queue limbo");

        // …but a queue some rule reads back is a legitimate terminal…
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create queue ship kind outgoingGateway mode persistent endpoint "urn:ship"
            create queue audit kind basic mode persistent
            create rule send for inbox
              if (//order and not(qs:queue("audit")[/copy])) then
                do enqueue <req/> into ship
            create rule stash for inbox
              if (//order) then do enqueue <copy/> into audit
        "#);
        assert!(a.diagnostics.is_empty(), "got: {:?}", a.diagnostics);

        // …and a self-contained pipeline (no gateways, no error routing)
        // is exempt: its terminal queues are the output.
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create queue outbox kind basic mode persistent
            create rule fwd for inbox
              if (//order) then do enqueue <fwd/> into outbox
        "#);
        assert!(a.diagnostics.is_empty(), "got: {:?}", a.diagnostics);
    }

    #[test]
    fn unbounded_aggregate_rescan_is_dq011() {
        // `avg` has no incremental shape, and nothing processes `audit`,
        // so its retention is unbounded: every evaluation rescans.
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create queue audit kind basic mode persistent
            create queue outbox kind basic mode persistent
            create rule stash for inbox
              if (//order) then do enqueue <copy/> into audit
            create rule watch for inbox
              if (avg(qs:queue("audit")//n) > 2) then do enqueue <hot/> into outbox
        "#);
        assert_eq!(codes(&a), ["DQ011"], "{}", a.render_human());
        assert_eq!(a.diagnostics[0].subject, "rule watch");

        // The same read in an incremental shape is maintained by the
        // materialized-cell pass: no warning.
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create queue audit kind basic mode persistent
            create queue outbox kind basic mode persistent
            create rule stash for inbox
              if (//order) then do enqueue <copy/> into audit
            create rule watch for inbox
              if (count(qs:queue("audit")//n) > 2) then do enqueue <hot/> into outbox
        "#);
        assert!(a.diagnostics.is_empty(), "got: {:?}", a.diagnostics);

        // A rescan over a queue some rule processes is bounded by
        // retention GC: no warning.
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create queue outbox kind basic mode persistent
            create rule fwd for inbox
              if (avg(qs:queue("inbox")//n) > 2) then do enqueue <hot/> into outbox
        "#);
        assert!(a.diagnostics.is_empty(), "got: {:?}", a.diagnostics);
    }

    #[test]
    fn aggregate_deps_cover_rules_and_property_bindings() {
        let a = run(r#"
            create queue intake kind basic mode persistent
            create queue done kind basic mode persistent
            create property lane as xs:integer inherited
            create property depth as xs:integer fixed
              queue done value count(qs:queue("intake"))
            create slicing lanes on lane
            create rule enrich for intake
              if (//job and avg(qs:queue("done")//n) < 5) then
                do enqueue <done/> into done with lane value 1
            create rule drain for lanes
              if (count(qs:slice()) > 3) then do reset
        "#);
        let deps: Vec<(&str, &str, &str, bool)> = a
            .aggregate_deps
            .iter()
            .map(|d| (d.site.as_str(), d.op.as_str(), d.source.as_str(), d.incremental))
            .collect();
        assert_eq!(
            deps,
            [
                ("property depth", "count", "queue intake", true),
                ("rule drain", "count", "slicing lanes", true),
                ("rule enrich", "avg", "queue done", false),
            ],
            "got: {:?}",
            a.aggregate_deps
        );
        // The rescan over `done` (processed by no rule) is also DQ011.
        assert_eq!(codes(&a), ["DQ011"], "{}", a.render_human());
    }

    #[test]
    fn json_rendering_carries_summary_and_lock_order() {
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create rule fwd for inbox
              if (//order) then do enqueue <fwd/> into nowhere
        "#);
        let json = a.render_json();
        assert!(json.starts_with("{\"diagnostics\":["));
        assert!(json.contains("\"code\":\"DQ001\""));
        assert!(json.contains("\"summary\":{\"total\":1,\"warn\":0,\"deny\":1}"));
        assert!(json.contains("\"lock_order\":[\"inbox\"]"));
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
