//! # demaq-analysis
//!
//! Whole-application static analysis for Demaq (paper Sec. 4): because the
//! entire application — queues, properties, slicings, and the complete
//! rule set — is declarative, it can be analyzed *as a whole* before a
//! single message arrives. This crate builds the queue/rule message-flow
//! graph from an [`AppSpec`] plus per-rule [`RuleFacts`] (read/write sets,
//! enqueue sites, constant-folded conditions via `demaq-xquery`'s plan
//! lowerer) and emits structured [`Diagnostic`]s with stable lint codes:
//!
//! | code | slug | default |
//! |------|------|---------|
//! | DQ001 | unknown-enqueue-target | deny |
//! | DQ002 | enqueue-into-incoming-gateway | deny |
//! | DQ003 | unreachable-queue | warn |
//! | DQ004 | dead-rule | warn |
//! | DQ005 | unguarded-flow-cycle | warn |
//! | DQ006 | property-read-never-written | warn |
//! | DQ007 | error-queue-cycle | deny |
//! | DQ008 | slicing-key-misuse | warn |
//! | DQ009 | dead-end-lineage | warn |
//! | DQ010 | cross-shard-hot-edge | warn |
//! | DQ011 | unbounded-aggregate-rescan | warn |
//! | DQ012 | unbounded-retention | warn |
//! | DQ013 | retention-narrowed | info |
//!
//! The same flow graph yields a deterministic global lock-acquisition
//! order ([`Analysis::lock_order`]) that the engine uses for deadlock
//! *avoidance* on cross-enqueueing rules, a queue → shard
//! [`placement::Placement`] the sharded runtime routes enqueues with,
//! and — via the [`liveness`] message-lifetime pass — a
//! [`RetentionPlan`] that lets the store's GC drop or summarize member
//! payloads the application is provably done with.

pub mod extract;
pub mod facts;
pub mod graph;
pub mod liveness;
pub mod placement;

pub use extract::extract_qdl_programs;
pub use facts::{
    extract_aggregate_reads, extract_scan_reads, AggReadSource, AggregateReadFact, EnqueueSite,
    RuleFacts, ScanReads,
};
pub use graph::{error_route_edges, strongly_connected, ErrorEdge, FlowEdge, FlowGraph};
pub use liveness::{retention_plan, ReadShape, RetentionPlan, SlicePlan};
pub use placement::{
    compute_placement, cross_shard_edges, stable_hash, Placement, QueuePlacement,
};

use demaq_qdl::{AppSpec, PropKind, QueueKind};
use demaq_xml::schema::Schema;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Properties the engine itself writes on every message; reading them
/// never needs an application-level writer.
const SYSTEM_PROPS: &[&str] = &[
    "creatingRule",
    "createdAt",
    "Sender",
    "connection",
    "errorPath",
    "parentMsg",
    "rootMsg",
];

/// What to do about a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suppressed entirely.
    Allow,
    /// Reported as advice (e.g. "the analysis narrowed retention");
    /// never affects exit codes or deployment.
    Info,
    /// Reported, deployment proceeds.
    Warn,
    /// Reported, deployment (or `demaq-lint`) fails.
    Deny,
}

impl Severity {
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// Stable lint codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// DQ001: `do enqueue` into a queue that is not declared.
    UnknownEnqueueTarget,
    /// DQ002: `do enqueue` into an incoming gateway.
    EnqueueIntoIncomingGateway,
    /// DQ003: a queue nothing produces into, reads, or processes.
    UnreachableQueue,
    /// DQ004: a rule that can never fire.
    DeadRule,
    /// DQ005: a message-flow cycle with no condition on any edge.
    UnguardedFlowCycle,
    /// DQ006: a property read that no binding or enqueue ever writes.
    PropertyReadNeverWritten,
    /// DQ007: error routing that loops back into the failing path.
    ErrorQueueCycle,
    /// DQ008: slicing key that can never form slices / misused reset.
    SlicingKeyMisuse,
    /// DQ009: rule enqueues into a queue whose messages can never reach
    /// an outgoing gateway or error queue (the causal chain dead-ends
    /// unobserved).
    DeadEndLineage,
    /// DQ010: a rule's enqueue target is placed on a different shard than
    /// its trigger queue under the computed placement, so the hot chain
    /// hops shards.
    CrossShardHotEdge,
    /// DQ011: an aggregate read over a queue in a shape the incremental
    /// maintenance pass cannot answer from a materialized cell, where no
    /// rule processes the queue to bound its retention — every evaluation
    /// rescans a queue that only grows.
    UnboundedAggregateRescan,
    /// DQ012: a slicing whose members are provably never purgeable — no
    /// rule ever resets it, and the liveness analysis cannot narrow its
    /// retention (its rules scan full slice contents, or a member queue
    /// is read as a queue elsewhere), so the store grows without bound.
    UnboundedRetention,
    /// DQ013: the liveness analysis downgraded this slicing to
    /// `AggregateOnly` — processed member payloads are folded into
    /// persisted accumulators and purged. Add an explicit `do reset` (or
    /// a raw slice read) if full history was intended.
    RetentionNarrowed,
}

impl LintCode {
    pub const ALL: [LintCode; 13] = [
        LintCode::UnknownEnqueueTarget,
        LintCode::EnqueueIntoIncomingGateway,
        LintCode::UnreachableQueue,
        LintCode::DeadRule,
        LintCode::UnguardedFlowCycle,
        LintCode::PropertyReadNeverWritten,
        LintCode::ErrorQueueCycle,
        LintCode::SlicingKeyMisuse,
        LintCode::DeadEndLineage,
        LintCode::CrossShardHotEdge,
        LintCode::UnboundedAggregateRescan,
        LintCode::UnboundedRetention,
        LintCode::RetentionNarrowed,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            LintCode::UnknownEnqueueTarget => "DQ001",
            LintCode::EnqueueIntoIncomingGateway => "DQ002",
            LintCode::UnreachableQueue => "DQ003",
            LintCode::DeadRule => "DQ004",
            LintCode::UnguardedFlowCycle => "DQ005",
            LintCode::PropertyReadNeverWritten => "DQ006",
            LintCode::ErrorQueueCycle => "DQ007",
            LintCode::SlicingKeyMisuse => "DQ008",
            LintCode::DeadEndLineage => "DQ009",
            LintCode::CrossShardHotEdge => "DQ010",
            LintCode::UnboundedAggregateRescan => "DQ011",
            LintCode::UnboundedRetention => "DQ012",
            LintCode::RetentionNarrowed => "DQ013",
        }
    }

    pub fn slug(&self) -> &'static str {
        match self {
            LintCode::UnknownEnqueueTarget => "unknown-enqueue-target",
            LintCode::EnqueueIntoIncomingGateway => "enqueue-into-incoming-gateway",
            LintCode::UnreachableQueue => "unreachable-queue",
            LintCode::DeadRule => "dead-rule",
            LintCode::UnguardedFlowCycle => "unguarded-flow-cycle",
            LintCode::PropertyReadNeverWritten => "property-read-never-written",
            LintCode::ErrorQueueCycle => "error-queue-cycle",
            LintCode::SlicingKeyMisuse => "slicing-key-misuse",
            LintCode::DeadEndLineage => "dead-end-lineage",
            LintCode::CrossShardHotEdge => "cross-shard-hot-edge",
            LintCode::UnboundedAggregateRescan => "unbounded-aggregate-rescan",
            LintCode::UnboundedRetention => "unbounded-retention",
            LintCode::RetentionNarrowed => "retention-narrowed",
        }
    }

    pub fn default_severity(&self) -> Severity {
        match self {
            LintCode::UnknownEnqueueTarget
            | LintCode::EnqueueIntoIncomingGateway
            | LintCode::ErrorQueueCycle => Severity::Deny,
            LintCode::RetentionNarrowed => Severity::Info,
            _ => Severity::Warn,
        }
    }

    /// Parse `"DQ001"` or a slug.
    pub fn parse(s: &str) -> Option<LintCode> {
        Self::ALL
            .iter()
            .copied()
            .find(|c| c.as_str().eq_ignore_ascii_case(s) || c.slug() == s)
    }

    /// One-paragraph explanation of what the lint detects and why it
    /// matters — the text behind `demaq-lint --explain`.
    pub fn description(&self) -> &'static str {
        match self {
            LintCode::UnknownEnqueueTarget => {
                "A `do enqueue` targets a queue the application never declares. The \
                 enqueue would fail at runtime on every firing; almost always a typo \
                 or a missing `create queue`."
            }
            LintCode::EnqueueIntoIncomingGateway => {
                "A rule (or an echo timer's target) enqueues into an incoming-gateway \
                 queue. Incoming gateways are fed exclusively by their network \
                 endpoint; locally produced messages there would masquerade as \
                 external input."
            }
            LintCode::UnreachableQueue => {
                "A declared queue that nothing enqueues into, no gateway feeds, no \
                 rule processes, and no expression reads. It can only ever stay \
                 empty — dead configuration."
            }
            LintCode::DeadRule => {
                "A rule whose condition is provably always false (e.g. a constant \
                 `false()` guard), so its body can never execute."
            }
            LintCode::UnguardedFlowCycle => {
                "Rules form a message-flow cycle in which every edge enqueues \
                 unconditionally. One message entering the cycle reproduces forever \
                 — unbounded work and store growth."
            }
            LintCode::PropertyReadNeverWritten => {
                "An expression reads a message property that no binding computes and \
                 no `with <prop> value` ever sets. The read yields empty on every \
                 message; usually a renamed or forgotten property."
            }
            LintCode::ErrorQueueCycle => {
                "Error routing loops back into the path that failed: a failing \
                 message would bounce between queues forever instead of reaching a \
                 terminal handler."
            }
            LintCode::SlicingKeyMisuse => {
                "A slicing whose key property is never written by any binding (no \
                 message can ever join a slice), or a `do reset` that cannot name a \
                 valid slicing."
            }
            LintCode::DeadEndLineage => {
                "Messages are enqueued into a queue from which no rule, gateway, or \
                 error route can ever make them externally observable — the causal \
                 chain dead-ends and the work is silently lost."
            }
            LintCode::CrossShardHotEdge => {
                "Under the computed shard placement, a rule's enqueue target lives \
                 on a different shard than its trigger queue, so the hottest rule \
                 chain pays a cross-shard forward on every message."
            }
            LintCode::UnboundedAggregateRescan => {
                "An aggregate read over a queue in a shape the incremental \
                 maintenance pass cannot answer from a materialized cell, where no \
                 rule processes that queue to bound its retention: every evaluation \
                 rescans a queue that only grows."
            }
            LintCode::UnboundedRetention => {
                "A slicing whose members are provably never purgeable: no rule ever \
                 resets it, and the liveness analysis cannot narrow its retention \
                 because its rules scan full slice contents, a member queue is read \
                 as a queue elsewhere, or a dynamically-computed queue read forces \
                 full retention. The store grows without bound."
            }
            LintCode::RetentionNarrowed => {
                "The liveness analysis proved every read of this slicing is an \
                 incrementally-maintained aggregate, so retention is narrowed: \
                 processed member payloads are folded into persisted accumulator \
                 cells and purged by GC. Advisory — add an explicit `do reset` (or \
                 a raw slice read) if full history was intended."
            }
        }
    }

    /// A minimal self-contained program that triggers the lint — the
    /// example behind `demaq-lint --explain`.
    pub fn example(&self) -> &'static str {
        match self {
            LintCode::UnknownEnqueueTarget => {
                "create queue inbox kind basic mode persistent\n\
                 create rule fwd for inbox\n\
                \x20 if (//order) then do enqueue <fwd/> into billing  (: undeclared :)"
            }
            LintCode::EnqueueIntoIncomingGateway => {
                "create queue inbox kind incomingGateway mode persistent endpoint \"urn:in\"\n\
                 create queue work kind basic mode persistent\n\
                 create rule bounce for work\n\
                \x20 if (//retry) then do enqueue <retry/> into inbox"
            }
            LintCode::UnreachableQueue => {
                "create queue inbox kind basic mode persistent\n\
                 create queue outbox kind basic mode persistent\n\
                 create queue orphan kind basic mode persistent  (: nothing touches it :)\n\
                 create rule fwd for inbox\n\
                \x20 if (//order) then do enqueue <fwd/> into outbox"
            }
            LintCode::DeadRule => {
                "create queue inbox kind basic mode persistent\n\
                 create rule never for inbox\n\
                \x20 if (false()) then do enqueue <x/> into inbox"
            }
            LintCode::UnguardedFlowCycle => {
                "create queue a kind basic mode persistent\n\
                 create queue b kind basic mode persistent\n\
                 create rule ab for a do enqueue <m/> into b\n\
                 create rule ba for b do enqueue <m/> into a"
            }
            LintCode::PropertyReadNeverWritten => {
                "create queue inbox kind basic mode persistent\n\
                 create queue outbox kind basic mode persistent\n\
                 create property customer as xs:string fixed\n\
                 create rule route for inbox\n\
                \x20 if (qs:property(\"customer\") = \"c1\") then\n\
                \x20   do enqueue <vip/> into outbox"
            }
            LintCode::ErrorQueueCycle => {
                "set errorqueue sink\n\
                 create queue work kind basic mode persistent errorqueue handler\n\
                 create queue handler kind basic mode persistent errorqueue work\n\
                 create queue sink kind basic mode persistent\n\
                 create rule w for work if (//x) then do enqueue <y/> into sink\n\
                 create rule h for handler if (//y) then do enqueue <z/> into sink"
            }
            LintCode::SlicingKeyMisuse => {
                "create queue inbox kind basic mode persistent\n\
                 create property customer as xs:integer fixed  (: no binding writes it :)\n\
                 create slicing perCustomer on customer"
            }
            LintCode::DeadEndLineage => {
                "create queue inbox kind basic mode persistent\n\
                 create queue ship kind outgoingGateway mode persistent endpoint \"urn:s\"\n\
                 create queue limbo kind basic mode persistent\n\
                 create rule send for inbox if (//o) then do enqueue <r/> into ship\n\
                 create rule stash for inbox if (//o) then do enqueue <c/> into limbo"
            }
            LintCode::CrossShardHotEdge => {
                "(: under `demaq-lint` the placement is computed for 2+ shards :)\n\
                 create queue hot kind basic mode persistent\n\
                 create queue far kind basic mode persistent\n\
                 create rule hop for hot do enqueue <m/> into far"
            }
            LintCode::UnboundedAggregateRescan => {
                "create queue audit kind basic mode persistent\n\
                 create queue inbox kind basic mode persistent\n\
                 create queue alerts kind basic mode persistent\n\
                 create rule watch for inbox\n\
                \x20 if (count(distinct-values(qs:queue(\"audit\")//n)) > 10) then\n\
                \x20   do enqueue <noisy/> into alerts"
            }
            LintCode::UnboundedRetention => {
                "create queue events kind basic mode persistent\n\
                 create queue outbox kind basic mode persistent\n\
                 create property device as xs:string fixed\n\
                \x20   queue events value //@device\n\
                 create slicing byDevice on device\n\
                 create rule dumpAll for byDevice  (: full scan, never reset :)\n\
                \x20 if (qs:message()/reading) then\n\
                \x20   do enqueue <dump>{qs:slice()}</dump> into outbox"
            }
            LintCode::RetentionNarrowed => {
                "create queue readings kind basic mode persistent\n\
                 create queue alerts kind basic mode persistent\n\
                 create property device as xs:string fixed\n\
                \x20   queue readings value //@device\n\
                 create slicing byDevice on device\n\
                 create rule alarm for byDevice  (: aggregate-only reads :)\n\
                \x20 if (count(qs:slice()) >= 5) then\n\
                \x20   do enqueue <alert/> into alerts"
            }
        }
    }
}

/// Per-application allow/warn/deny configuration.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    overrides: HashMap<LintCode, Severity>,
}

impl LintConfig {
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Override one code's severity.
    pub fn set(&mut self, code: LintCode, severity: Severity) -> &mut Self {
        self.overrides.insert(code, severity);
        self
    }

    /// Effective severity for a code.
    pub fn severity(&self, code: LintCode) -> Severity {
        self.overrides
            .get(&code)
            .copied()
            .unwrap_or_else(|| code.default_severity())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: LintCode,
    pub severity: Severity,
    /// What the finding is about, e.g. `rule fork` or `queue billing`.
    pub subject: String,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} {}] {}: {}",
            self.severity.as_str(),
            self.code.as_str(),
            self.code.slug(),
            self.subject,
            self.message
        )
    }
}

/// One edge of the aggregate dependency graph: an aggregate node (in a
/// rule body or property binding) and the queue or slicing it reads.
/// The engine's incremental maintenance pass answers the `incremental`
/// edges from materialized cells validated by the store's version clocks;
/// the rest rescan on every evaluation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AggregateDep {
    /// Where the aggregate sits: `rule NAME` or `property NAME`.
    pub site: String,
    /// Aggregate function name (`count`, `sum`, …).
    pub op: String,
    /// What it reads: `queue NAME` or `slicing NAME`.
    pub source: String,
    /// True when the incremental pass maintains this aggregate.
    pub incremental: bool,
}

/// The analyzer's output: diagnostics, the flow graph, and the derived
/// global lock-acquisition order.
#[derive(Debug, Clone)]
pub struct Analysis {
    pub diagnostics: Vec<Diagnostic>,
    pub graph: FlowGraph,
    /// Queues in global lock-acquisition order (flow sources first).
    pub lock_order: Vec<String>,
    /// Aggregate reads found in rule bodies and property bindings, with
    /// the queue/slicing each depends on (sorted, deduplicated).
    pub aggregate_deps: Vec<AggregateDep>,
    /// The message-lifetime pass's per-queue/per-slicing retention plan
    /// (see [`liveness`]); the engine's GC narrows retention from it.
    pub retention: RetentionPlan,
}

impl Analysis {
    /// The highest severity among the diagnostics.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    pub fn has_deny(&self) -> bool {
        self.max_severity() == Some(Severity::Deny)
    }

    /// Render for humans, one diagnostic per line.
    pub fn render_human(&self) -> String {
        if self.diagnostics.is_empty() {
            return "no diagnostics\n".to_string();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let denies = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count();
        out.push_str(&format!(
            "{} diagnostic(s), {} deny\n",
            self.diagnostics.len(),
            denies
        ));
        out
    }

    /// Render as a JSON document (hand-rolled; the build is offline and
    /// dependency-free).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"slug\":{},\"severity\":{},\"subject\":{},\"message\":{}}}",
                json_str(d.code.as_str()),
                json_str(d.code.slug()),
                json_str(d.severity.as_str()),
                json_str(&d.subject),
                json_str(&d.message)
            ));
        }
        let count = |sev: Severity| {
            self.diagnostics
                .iter()
                .filter(|d| d.severity == sev)
                .count()
        };
        out.push_str(&format!(
            "],\"summary\":{{\"total\":{},\"info\":{},\"warn\":{},\"deny\":{}}},\"lock_order\":[",
            self.diagnostics.len(),
            count(Severity::Info),
            count(Severity::Warn),
            count(Severity::Deny)
        ));
        for (i, q) in self.lock_order.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(q));
        }
        out.push_str("]}");
        out
    }
}

/// JSON string literal with escaping (shared by the renderers and the
/// `demaq-lint` CLI; the build is offline and dependency-free).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Analyze an application from its raw parsed spec (facts derived with
/// [`RuleFacts::from_rule`]; the `demaq-lint` / test path).
pub fn analyze_spec(spec: &AppSpec, config: &LintConfig) -> Analysis {
    let facts: Vec<RuleFacts> = spec
        .rules
        .iter()
        .map(|r| RuleFacts::from_rule(r, spec))
        .collect();
    analyze(spec, &facts, config)
}

/// Analyze an application from a spec plus per-rule facts (the deploy-time
/// path: facts come from the compiled rules' read/write sets).
pub fn analyze(spec: &AppSpec, rules: &[RuleFacts], config: &LintConfig) -> Analysis {
    let graph = FlowGraph::build(spec, rules);
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut emit = |code: LintCode, subject: String, message: String| {
        let severity = config.severity(code);
        if severity != Severity::Allow {
            diags.push(Diagnostic {
                code,
                severity,
                subject,
                message,
            });
        }
    };

    // Pre-parse declared schemas (parse failures are the compiler's
    // concern, not the analyzer's).
    let schemas: HashMap<&str, Schema> = spec
        .schemas
        .iter()
        .filter_map(|(n, src)| Schema::parse(src).ok().map(|s| (n.as_str(), s)))
        .collect();

    // Properties written somewhere: a binding supplies a value, or an
    // enqueue sets it via `with`.
    let mut written_props: HashSet<&str> = SYSTEM_PROPS.iter().copied().collect();
    for p in &spec.properties {
        if !p.bindings.is_empty() || p.kind == PropKind::Explicit {
            // Explicit properties may also be supplied by the sender at
            // the gateway; treat them as externally writable.
            written_props.insert(p.name.as_str());
        }
    }
    for r in rules {
        for n in r.with_prop_names() {
            written_props.insert(n);
        }
    }

    // ---- DQ001 / DQ002: enqueue targets -----------------------------------
    for r in rules {
        let mut seen: HashSet<(&str, bool)> = HashSet::new();
        for s in &r.enqueues {
            match spec.queue(&s.queue) {
                None => {
                    if seen.insert((s.queue.as_str(), false)) {
                        emit(
                            LintCode::UnknownEnqueueTarget,
                            format!("rule {}", r.name),
                            format!("enqueues into undeclared queue `{}`", s.queue),
                        );
                    }
                }
                Some(q) if q.kind == QueueKind::IncomingGateway => {
                    if seen.insert((s.queue.as_str(), true)) {
                        emit(
                            LintCode::EnqueueIntoIncomingGateway,
                            format!("rule {}", r.name),
                            format!(
                                "enqueues into incoming gateway `{}`; gateway queues only \
                                 receive messages from remote endpoints",
                                s.queue
                            ),
                        );
                    }
                }
                Some(q) if q.kind == QueueKind::Echo => {
                    for (p, lit) in &s.with_props {
                        if p != "target" {
                            continue;
                        }
                        if let Some(t) = lit.as_deref() {
                            if spec.queue(t).map(|d| d.kind) == Some(QueueKind::IncomingGateway) {
                                emit(
                                    LintCode::EnqueueIntoIncomingGateway,
                                    format!("rule {}", r.name),
                                    format!(
                                        "arms a timer on `{}` whose target `{t}` is an \
                                         incoming gateway",
                                        s.queue
                                    ),
                                );
                            }
                        }
                    }
                }
                Some(_) => {}
            }
        }
    }

    // ---- DQ003: unreachable queues ----------------------------------------
    let produced: HashSet<usize> = graph.produced_into();
    let error_edges = error_route_edges(spec, rules);
    let error_targets: HashSet<&str> = spec
        .queues
        .iter()
        .filter_map(|q| q.error_queue.as_deref())
        .chain(rules.iter().filter_map(|r| r.error_queue.as_deref()))
        .chain(spec.system_error_queue.as_deref())
        .collect();
    let read_queues: HashSet<&str> = rules
        .iter()
        .flat_map(|r| r.reads_queues.iter().map(|q| q.as_str()))
        .collect();
    let bound_queues: HashSet<&str> = spec
        .properties
        .iter()
        .flat_map(|p| p.bindings.iter())
        .flat_map(|b| b.queues.iter().map(|q| q.as_str()))
        .collect();
    let ruled_queues: HashSet<&str> = rules
        .iter()
        .filter(|r| !r.on_slicing)
        .map(|r| r.target.as_str())
        .collect();
    for q in &spec.queues {
        if q.kind != QueueKind::Basic {
            continue; // gateways and echo queues face the outside world
        }
        let idx = graph.index(&q.name);
        let reachable = idx.is_some_and(|i| produced.contains(&i))
            || error_targets.contains(q.name.as_str())
            || read_queues.contains(q.name.as_str())
            || bound_queues.contains(q.name.as_str())
            || ruled_queues.contains(q.name.as_str());
        if !reachable {
            emit(
                LintCode::UnreachableQueue,
                format!("queue {}", q.name),
                "nothing produces into, reads, or processes this queue: no rule enqueues \
                 here, no error route targets it, no rule or property references it"
                    .to_string(),
            );
        }
    }

    // ---- DQ004: dead rules ------------------------------------------------
    for r in rules {
        if r.never_fires {
            emit(
                LintCode::DeadRule,
                format!("rule {}", r.name),
                "the body constant-folds to a no-op (its condition can never hold)".to_string(),
            );
            continue;
        }
        if r.on_slicing {
            continue;
        }
        let (Some(trigger), Some(queue)) = (&r.trigger_elements, spec.queue(&r.target)) else {
            continue;
        };
        let Some(schema) = queue.schema.as_deref().and_then(|s| schemas.get(s)) else {
            continue;
        };
        let vocab: HashSet<&str> = schema
            .elements
            .keys()
            .map(|k| k.as_str())
            .chain(schema.root.as_deref())
            .collect();
        if !trigger.iter().any(|t| vocab.contains(t.as_str())) {
            emit(
                LintCode::DeadRule,
                format!("rule {}", r.name),
                format!(
                    "its trigger requires element(s) {} but schema `{}` of queue `{}` \
                     declares none of them; the rule can never match",
                    trigger
                        .iter()
                        .map(|t| format!("`{t}`"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    queue.schema.as_deref().unwrap_or(""),
                    r.target
                ),
            );
        }
    }

    // ---- DQ005: unguarded flow cycles -------------------------------------
    for scc in graph.unguarded_cycles() {
        let names: Vec<&str> = scc.iter().map(|&i| graph.queues[i].as_str()).collect();
        let in_cycle: HashSet<usize> = scc.iter().copied().collect();
        let mut rules_on_cycle: BTreeSet<&str> = BTreeSet::new();
        for e in &graph.edges {
            if !e.conditional && in_cycle.contains(&e.from) && in_cycle.contains(&e.to) {
                rules_on_cycle.insert(e.rule.as_str());
            }
        }
        emit(
            LintCode::UnguardedFlowCycle,
            format!("cycle {}", names.join(" -> ")),
            format!(
                "every edge of this message-flow cycle enqueues unconditionally \
                 (rule(s) {}); once entered it loops forever",
                rules_on_cycle
                    .iter()
                    .map(|r| format!("`{r}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        );
    }

    // ---- DQ006: property read never written --------------------------------
    let mut readers: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for r in rules {
        for p in &r.prop_reads {
            readers.entry(p.as_str()).or_default().insert(r.name.as_str());
        }
    }
    for (prop, by) in readers {
        if written_props.contains(prop) {
            continue;
        }
        let who = by
            .iter()
            .map(|r| format!("`{r}`"))
            .collect::<Vec<_>>()
            .join(", ");
        let detail = if spec.property(prop).is_some() {
            "no binding supplies a value and no enqueue sets it"
        } else {
            "it is not declared and no enqueue sets it"
        };
        emit(
            LintCode::PropertyReadNeverWritten,
            format!("property {prop}"),
            format!("read by rule(s) {who} but never written: {detail}"),
        );
    }

    // ---- DQ007: error-queue routing cycles ---------------------------------
    {
        let mut adj = vec![Vec::new(); graph.queues.len()];
        for e in &error_edges {
            if let (Some(a), Some(b)) = (graph.index(&e.from), graph.index(&e.to)) {
                adj[a].push(b);
            }
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        for scc in strongly_connected(graph.queues.len(), &adj) {
            let cyclic = scc.len() > 1 || adj[scc[0]].contains(&scc[0]);
            if !cyclic {
                continue;
            }
            let names: Vec<&str> = scc.iter().map(|&i| graph.queues[i].as_str()).collect();
            emit(
                LintCode::ErrorQueueCycle,
                format!("queue {}", names[0]),
                format!(
                    "error routing loops through {}: a failure inside the cycle re-enters \
                     it and can ping-pong forever (Sec. 3.6 resolution rule > queue > system)",
                    names
                        .iter()
                        .map(|n| format!("`{n}`"))
                        .collect::<Vec<_>>()
                        .join(" -> ")
                ),
            );
        }
    }

    // ---- DQ008: slicing-key misuse -----------------------------------------
    for s in &spec.slicings {
        let Some(prop) = spec.property(&s.property) else {
            continue; // undeclared key: validate's job
        };
        if prop.bindings.is_empty()
            && prop.kind != PropKind::Explicit
            && !rules
                .iter()
                .any(|r| r.with_prop_names().any(|n| n == s.property))
        {
            emit(
                LintCode::SlicingKeyMisuse,
                format!("slicing {}", s.name),
                format!(
                    "key property `{}` is never written on any queue (no binding, never \
                     set at enqueue): slices can never form",
                    s.property
                ),
            );
        }
    }
    for r in rules {
        for t in &r.named_resets {
            if spec.slicing(t).is_none() {
                emit(
                    LintCode::SlicingKeyMisuse,
                    format!("rule {}", r.name),
                    format!("`do reset {t}` names an undeclared slicing"),
                );
            }
        }
        if r.bare_resets > 0 && !r.on_slicing {
            emit(
                LintCode::SlicingKeyMisuse,
                format!("rule {}", r.name),
                format!(
                    "bare `do reset` in a rule on queue `{}`: reset needs a slicing \
                     context (name one: `do reset S key …`)",
                    r.target
                ),
            );
        }
    }

    // ---- DQ009: dead-end lineage -------------------------------------------
    // Provenance-aware flow check: in an application that talks to the
    // outside world (an outgoing gateway) or routes failures (error
    // queues), every causal chain should be able to terminate somewhere
    // observable — a gateway, an error queue, or a queue some rule reads
    // back. A queue that rules enqueue into but from which no flow or
    // error route reaches such a terminal collects messages whose lineage
    // dead-ends unobserved. Self-contained pipelines (no gateways, no
    // error routing) are exempt: their terminal queues *are* the output.
    {
        let has_outgoing = spec
            .queues
            .iter()
            .any(|q| q.kind == QueueKind::OutgoingGateway);
        if has_outgoing || !error_targets.is_empty() {
            let n = graph.queues.len();
            // Reverse adjacency over flow edges plus error-routing edges:
            // lineage continues through both rule enqueues and failures.
            let mut radj = vec![Vec::new(); n];
            for e in &graph.edges {
                radj[e.to].push(e.from);
            }
            for e in &error_edges {
                if let (Some(a), Some(b)) = (graph.index(&e.from), graph.index(&e.to)) {
                    radj[b].push(a);
                }
            }
            let mut reaches = vec![false; n];
            let mut stack: Vec<usize> = Vec::new();
            for (i, name) in graph.queues.iter().enumerate() {
                let terminal = spec.queue(name).map(|q| q.kind)
                    == Some(QueueKind::OutgoingGateway)
                    || error_targets.contains(name.as_str())
                    || read_queues.contains(name.as_str());
                if terminal {
                    reaches[i] = true;
                    stack.push(i);
                }
            }
            // Echo queues armed with a non-literal `target` hop somewhere
            // the analysis cannot resolve; give them the benefit of the
            // doubt rather than report a false dead end.
            for r in rules {
                for s in &r.enqueues {
                    if spec.queue(&s.queue).map(|q| q.kind) != Some(QueueKind::Echo) {
                        continue;
                    }
                    let opaque_target = s.with_props.iter().any(|(p, lit)| {
                        p == "target" && lit.as_deref().and_then(|t| graph.index(t)).is_none()
                    });
                    if opaque_target {
                        if let Some(i) = graph.index(&s.queue) {
                            if !reaches[i] {
                                reaches[i] = true;
                                stack.push(i);
                            }
                        }
                    }
                }
            }
            while let Some(v) = stack.pop() {
                for &u in &radj[v] {
                    if !reaches[u] {
                        reaches[u] = true;
                        stack.push(u);
                    }
                }
            }
            // One diagnostic per dead-end queue, naming its producers.
            let mut producers: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
            for r in rules {
                for s in &r.enqueues {
                    let Some(q) = spec.queue(&s.queue) else {
                        continue; // DQ001's job
                    };
                    if q.kind == QueueKind::IncomingGateway {
                        continue; // DQ002's job
                    }
                    if graph.index(&s.queue).is_some_and(|i| !reaches[i]) {
                        producers
                            .entry(s.queue.as_str())
                            .or_default()
                            .insert(r.name.as_str());
                    }
                }
            }
            for (queue, by) in producers {
                let who = by
                    .iter()
                    .map(|r| format!("`{r}`"))
                    .collect::<Vec<_>>()
                    .join(", ");
                emit(
                    LintCode::DeadEndLineage,
                    format!("queue {queue}"),
                    format!(
                        "rule(s) {who} enqueue here, but no flow or error route leads from \
                         `{queue}` to an outgoing gateway, an error queue, or a queue a rule \
                         reads: the causal chain dead-ends unobserved"
                    ),
                );
            }
        }
    }

    // ---- DQ010: cross-shard hot edges --------------------------------------
    // Nominal 2-shard placement: a flow edge that hops shards at N=2 hops
    // at every N>1, so placement regressions surface at deploy time even
    // when today's deployment is single-shard.
    {
        let placement =
            placement::compute_placement(spec, rules, &graph, 2, &BTreeMap::new());
        for e in placement::cross_shard_edges(spec, rules, &graph, &placement) {
            emit(
                LintCode::CrossShardHotEdge,
                format!("rule {}", e.rule),
                e.message,
            );
        }
    }

    // ---- aggregate dependency graph ----------------------------------------
    // Every aggregate node (rule bodies and property binding values) with
    // the queue/slicing it reads; consumed by DQ011 below and exposed on
    // the Analysis for tooling.
    let mut aggregate_deps: Vec<AggregateDep> = Vec::new();
    for r in rules {
        for a in &r.aggregate_reads {
            let source = match &a.source {
                AggReadSource::Queue(q) => format!("queue {q}"),
                // qs:slice() outside a slicing rule is a runtime error,
                // not a dependency.
                AggReadSource::Slice if r.on_slicing => format!("slicing {}", r.target),
                AggReadSource::Slice => continue,
            };
            aggregate_deps.push(AggregateDep {
                site: format!("rule {}", r.name),
                op: a.op.clone(),
                source,
                incremental: a.incremental,
            });
        }
    }
    for p in &spec.properties {
        for b in &p.bindings {
            for a in extract_aggregate_reads(&b.value, None) {
                let AggReadSource::Queue(q) = &a.source else {
                    continue;
                };
                aggregate_deps.push(AggregateDep {
                    site: format!("property {}", p.name),
                    op: a.op.clone(),
                    source: format!("queue {q}"),
                    incremental: a.incremental,
                });
            }
        }
    }
    aggregate_deps.sort();
    aggregate_deps.dedup();

    // ---- DQ011: unbounded aggregate rescans --------------------------------
    // A rescan-shaped aggregate over a queue no rule processes: nothing
    // drains the queue, so retention GC never bounds it, and every
    // evaluation pays O(N) over a membership that only grows. Slice reads
    // are bounded by the slice lifetime (reset), incremental shapes by
    // the materialized cell.
    for r in rules {
        for a in &r.aggregate_reads {
            if a.incremental {
                continue;
            }
            let AggReadSource::Queue(q) = &a.source else {
                continue;
            };
            if spec.queue(q).is_none() {
                continue; // unknown queue is DQ001's job
            }
            if ruled_queues.contains(q.as_str()) {
                continue; // a rule drains it; retention bounds the scan
            }
            emit(
                LintCode::UnboundedAggregateRescan,
                format!("rule {}", r.name),
                format!(
                    "`{}` over queue `{q}` is not in a shape the incremental \
                     aggregate pass maintains, and no rule processes `{q}` to \
                     bound its retention: every evaluation rescans a queue that \
                     only grows",
                    a.op
                ),
            );
        }
    }

    // ---- DQ012 / DQ013: message-lifetime (retention) verdicts --------------
    // The liveness pass classifies every queue/slicing read shape and
    // decides which slicings the engine may narrow. A slicing that is
    // never reset *and* cannot be narrowed retains its members forever
    // (DQ012); one the analysis downgraded to aggregate summaries gets
    // an informational note so authors who meant full history notice
    // (DQ013).
    let retention = liveness::retention_plan(spec, rules);
    for (name, plan) in &retention.slicings {
        if !plan.has_reset && !plan.narrowable {
            let why = if plan.shape == ReadShape::FullScan {
                "its rules scan full slice contents".to_string()
            } else if retention.dynamic_reads {
                "a dynamically-targeted queue read forces full retention everywhere".to_string()
            } else {
                let read_elsewhere: Vec<String> = plan
                    .member_queues
                    .iter()
                    .filter(|q| retention.queue_shape(q) != ReadShape::Unread)
                    .map(|q| format!("`{q}`"))
                    .collect();
                format!(
                    "member queue(s) {} are read as queues elsewhere",
                    read_elsewhere.join(", ")
                )
            };
            emit(
                LintCode::UnboundedRetention,
                format!("slicing {name}"),
                format!(
                    "members are provably never purgeable: no rule resets this slicing, \
                     and retention cannot be narrowed because {why}; the store grows \
                     without bound"
                ),
            );
        }
        if plan.narrowable && plan.shape == ReadShape::AggregateOnly {
            let suggestion = if plan.has_reset {
                ""
            } else {
                "; add an explicit `do reset` if full history was intended"
            };
            emit(
                LintCode::RetentionNarrowed,
                format!("slicing {name}"),
                format!(
                    "all slice reads are incrementally-maintained aggregates: processed \
                     member payloads are folded into persisted accumulators and purged \
                     by retention GC{suggestion}"
                ),
            );
        }
    }

    diags.sort_by(|a, b| {
        (a.code, &a.subject, &a.message).cmp(&(b.code, &b.subject, &b.message))
    });
    diags.dedup();

    let lock_order = graph.lock_order();
    Analysis {
        diagnostics: diags,
        graph,
        lock_order,
        aggregate_deps,
        retention,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demaq_qdl::parse_program;

    fn run(src: &str) -> Analysis {
        let spec = parse_program(src).expect("parse");
        analyze_spec(&spec, &LintConfig::new())
    }

    fn codes(a: &Analysis) -> Vec<&'static str> {
        a.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_pipeline_has_no_diagnostics() {
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create queue outbox kind basic mode persistent
            create rule fwd for inbox
              if (//order) then do enqueue <fwd/> into outbox
        "#);
        assert!(a.diagnostics.is_empty(), "got: {:?}", a.diagnostics);
        assert_eq!(a.lock_order, ["inbox", "outbox"], "sources rank first");
    }

    #[test]
    fn unknown_enqueue_target_is_dq001_deny() {
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create rule fwd for inbox
              if (//order) then do enqueue <fwd/> into nowhere
        "#);
        assert_eq!(codes(&a), ["DQ001"]);
        assert!(a.has_deny());
    }

    #[test]
    fn unguarded_self_loop_is_dq005() {
        let a = run(r#"
            create queue spin kind basic mode persistent
            create rule again for spin
              do enqueue <again/> into spin
        "#);
        assert_eq!(codes(&a), ["DQ005"]);
    }

    #[test]
    fn guarded_cycle_is_clean() {
        let a = run(r#"
            create queue a kind basic mode persistent
            create queue b kind basic mode persistent
            create rule ab for a if (//go) then do enqueue <x/> into b
            create rule ba for b do enqueue <x/> into a
        "#);
        assert!(a.diagnostics.is_empty(), "got: {:?}", a.diagnostics);
    }

    #[test]
    fn allow_suppresses_and_deny_escalates() {
        let src = r#"
            create queue spin kind basic mode persistent
            create rule again for spin
              do enqueue <again/> into spin
        "#;
        let spec = parse_program(src).unwrap();
        let mut cfg = LintConfig::new();
        cfg.set(LintCode::UnguardedFlowCycle, Severity::Allow);
        assert!(analyze_spec(&spec, &cfg).diagnostics.is_empty());
        let mut cfg = LintConfig::new();
        cfg.set(LintCode::UnguardedFlowCycle, Severity::Deny);
        assert!(analyze_spec(&spec, &cfg).has_deny());
    }

    #[test]
    fn lock_order_follows_flow_topology() {
        let a = run(r#"
            create queue sink kind basic mode persistent
            create queue mid kind basic mode persistent
            create queue src kind basic mode persistent
            create rule r1 for src if (//x) then do enqueue <y/> into mid
            create rule r2 for mid if (//y) then do enqueue <z/> into sink
        "#);
        assert_eq!(a.lock_order, ["src", "mid", "sink"]);
    }

    #[test]
    fn dead_end_lineage_needs_an_observable_world() {
        // With an outgoing gateway in the app, a rule-fed queue that can
        // never reach a gateway, error queue, or read queue is DQ009…
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create queue ship kind outgoingGateway mode persistent endpoint "urn:ship"
            create queue limbo kind basic mode persistent
            create rule send for inbox
              if (//order) then do enqueue <req/> into ship
            create rule stash for inbox
              if (//order) then do enqueue <copy/> into limbo
        "#);
        assert_eq!(codes(&a), ["DQ009"], "{}", a.render_human());
        assert_eq!(a.diagnostics[0].subject, "queue limbo");

        // …but a queue some rule reads back is a legitimate terminal…
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create queue ship kind outgoingGateway mode persistent endpoint "urn:ship"
            create queue audit kind basic mode persistent
            create rule send for inbox
              if (//order and not(qs:queue("audit")[/copy])) then
                do enqueue <req/> into ship
            create rule stash for inbox
              if (//order) then do enqueue <copy/> into audit
        "#);
        assert!(a.diagnostics.is_empty(), "got: {:?}", a.diagnostics);

        // …and a self-contained pipeline (no gateways, no error routing)
        // is exempt: its terminal queues are the output.
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create queue outbox kind basic mode persistent
            create rule fwd for inbox
              if (//order) then do enqueue <fwd/> into outbox
        "#);
        assert!(a.diagnostics.is_empty(), "got: {:?}", a.diagnostics);
    }

    #[test]
    fn unbounded_aggregate_rescan_is_dq011() {
        // `distinct-values` wraps the source, so the incremental pass
        // cannot maintain a cell for it, and nothing processes `audit`:
        // retention is unbounded and every evaluation rescans.
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create queue audit kind basic mode persistent
            create queue outbox kind basic mode persistent
            create rule stash for inbox
              if (//order) then do enqueue <copy/> into audit
            create rule watch for inbox
              if (count(distinct-values(qs:queue("audit")//n)) > 2) then
                do enqueue <hot/> into outbox
        "#);
        assert_eq!(codes(&a), ["DQ011"], "{}", a.render_human());
        assert_eq!(a.diagnostics[0].subject, "rule watch");

        // The same read in an incremental shape is maintained by the
        // materialized-cell pass: no warning.
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create queue audit kind basic mode persistent
            create queue outbox kind basic mode persistent
            create rule stash for inbox
              if (//order) then do enqueue <copy/> into audit
            create rule watch for inbox
              if (count(qs:queue("audit")//n) > 2) then do enqueue <hot/> into outbox
        "#);
        assert!(a.diagnostics.is_empty(), "got: {:?}", a.diagnostics);

        // A rescan over a queue some rule processes is bounded by
        // retention GC: no warning.
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create queue outbox kind basic mode persistent
            create rule fwd for inbox
              if (count(distinct-values(qs:queue("inbox")//n)) > 2) then
                do enqueue <hot/> into outbox
        "#);
        assert!(a.diagnostics.is_empty(), "got: {:?}", a.diagnostics);
    }

    #[test]
    fn aggregate_deps_cover_rules_and_property_bindings() {
        let a = run(r#"
            create queue intake kind basic mode persistent
            create queue done kind basic mode persistent
            create property lane as xs:integer inherited
            create property depth as xs:integer fixed
              queue done value count(qs:queue("intake"))
            create slicing lanes on lane
            create rule enrich for intake
              if (//job and avg(qs:queue("done")//n) < 5) then
                do enqueue <done/> into done with lane value 1
            create rule drain for lanes
              if (count(qs:slice()) > 3) then do reset
        "#);
        let deps: Vec<(&str, &str, &str, bool)> = a
            .aggregate_deps
            .iter()
            .map(|d| (d.site.as_str(), d.op.as_str(), d.source.as_str(), d.incremental))
            .collect();
        assert_eq!(
            deps,
            [
                ("property depth", "count", "queue intake", true),
                ("rule drain", "count", "slicing lanes", true),
                ("rule enrich", "avg", "queue done", true),
            ],
            "got: {:?}",
            a.aggregate_deps
        );
        // `avg` decomposes into a sum/count cell pair now, so the `done`
        // read is maintained incrementally: no DQ011. The `lanes`
        // slicing has a reset and its member queues are read as queues
        // (aggregate cells over `intake`/`done`), so neither DQ012 nor
        // DQ013 applies either.
        assert!(a.diagnostics.is_empty(), "{}", a.render_human());
    }

    #[test]
    fn json_rendering_carries_summary_and_lock_order() {
        let a = run(r#"
            create queue inbox kind basic mode persistent
            create rule fwd for inbox
              if (//order) then do enqueue <fwd/> into nowhere
        "#);
        let json = a.render_json();
        assert!(json.starts_with("{\"diagnostics\":["));
        assert!(json.contains("\"code\":\"DQ001\""));
        assert!(json.contains("\"summary\":{\"total\":1,\"info\":0,\"warn\":0,\"deny\":1}"));
        assert!(json.contains("\"lock_order\":[\"inbox\"]"));
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn explain_examples_parse_and_trigger_their_own_code() {
        for code in LintCode::ALL {
            assert!(!code.description().is_empty());
            let spec = parse_program(code.example())
                .unwrap_or_else(|e| panic!("{} example must parse: {e}", code.as_str()));
            // DQ010 needs a multi-shard placement context the plain
            // analyzer does not set up — its example is illustrative only.
            if code == LintCode::CrossShardHotEdge {
                continue;
            }
            let a = analyze_spec(&spec, &LintConfig::new());
            assert!(
                a.diagnostics.iter().any(|d| d.code == code),
                "{} example must trigger itself, got:\n{}",
                code.as_str(),
                a.render_human()
            );
        }
    }
}
