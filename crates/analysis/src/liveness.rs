//! Message-lifetime (relevance) analysis: which retained messages is the
//! application provably done with?
//!
//! The paper couples retention to slice membership (Sec. 2.3.3) — a
//! processed message stays in the store for as long as some slice can
//! still read it. This pass abstract-interprets the per-rule
//! [`RuleFacts`] (their pruned [`ScanReads`] and aggregate-read facts)
//! plus every property binding to place each queue and slicing on the
//! **liveness lattice**:
//!
//! ```text
//!            FullScan            arbitrary member reads (today's behavior)
//!           /        \
//!   AggregateOnly  BoundedSuffix  read only through incremental aggregate
//!           \        /            cells / only the newest k members
//!            Unread               no member document is ever read
//! ```
//!
//! The join of two shapes is the least shape that answers both read
//! families; mixed aggregate + suffix reads join to `FullScan` rather
//! than tracking both retention strategies at once.
//!
//! The lattice lowers to a per-application [`RetentionPlan`] carried on
//! `Analysis` (and hence `CompiledApp`): a slicing whose own reads stay
//! below `FullScan` *and* whose member queues are never read as queues
//! is **narrowable** — the engine may fold processed members into a
//! persisted accumulator (`AggregateOnly`), keep only the proven suffix
//! (`BoundedSuffix`), or drop them outright (`Unread`), and the store's
//! GC then purges the member payloads. Anything the analysis cannot
//! prove stays fully retained, so enabling the plan can never change
//! observable results — only the store's footprint.

use crate::facts::{
    extract_aggregate_reads, extract_scan_reads, AggReadSource, RuleFacts, ScanReads,
};
use demaq_qdl::{AppSpec, PropKind};
use std::collections::BTreeMap;

/// How the application reads a queue's (or slicing's) member documents —
/// one point of the liveness lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReadShape {
    /// No member document is ever read.
    Unread,
    /// Members are read exclusively through aggregate shapes the
    /// incremental pass maintains; a persisted accumulator can stand in
    /// for the member payloads.
    AggregateOnly,
    /// Only the newest `k` members are ever read (`SOURCE[last()]`).
    BoundedSuffix(usize),
    /// Arbitrary member reads: full retention required (conservative
    /// fallback = behavior before this pass existed).
    FullScan,
}

impl ReadShape {
    /// Least shape that answers both read families.
    pub fn join(self, other: ReadShape) -> ReadShape {
        use ReadShape::*;
        match (self, other) {
            (Unread, x) | (x, Unread) => x,
            (FullScan, _) | (_, FullScan) => FullScan,
            (AggregateOnly, AggregateOnly) => AggregateOnly,
            (BoundedSuffix(a), BoundedSuffix(b)) => BoundedSuffix(a.max(b)),
            // Serving both at once would need two retention strategies
            // per slice; stay conservative.
            (AggregateOnly, BoundedSuffix(_)) | (BoundedSuffix(_), AggregateOnly) => FullScan,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            ReadShape::Unread => "unread",
            ReadShape::AggregateOnly => "aggregate-only",
            ReadShape::BoundedSuffix(_) => "bounded-suffix",
            ReadShape::FullScan => "full-scan",
        }
    }
}

/// The retention verdict for one slicing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlicePlan {
    /// Join of every `qs:slice()` read in the slicing's rules.
    pub shape: ReadShape,
    /// Queues whose messages can become members of this slicing (the
    /// key property's binding queues for `fixed` properties; every
    /// queue for `inherited`/`explicit` keys, which any message can
    /// carry).
    pub member_queues: Vec<String>,
    /// Every member queue's own shape is `Unread`: purging a member
    /// payload cannot change any queue-level read.
    pub member_queues_unread: bool,
    /// Some rule resets this slicing (named or bare), bounding each
    /// slice generation's lifetime.
    pub has_reset: bool,
    /// The engine may narrow retention for this slicing — drop,
    /// summarize, or suffix-trim processed member payloads.
    pub narrowable: bool,
}

/// Per-application lowering of the liveness lattice, carried on
/// `Analysis` (and hence `CompiledApp`) for the engine's GC to consult.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetentionPlan {
    /// Queue name → how its members are read.
    pub queues: BTreeMap<String, ReadShape>,
    /// Slicing name → its retention verdict.
    pub slicings: BTreeMap<String, SlicePlan>,
    /// A dynamically-targeted read (`qs:queue(E)`, argument-less
    /// `qs:queue()` outside a queue rule, computed `collection(E)`)
    /// forced every queue to `FullScan`.
    pub dynamic_reads: bool,
}

impl RetentionPlan {
    /// Shape for a queue (absent = never mentioned = `Unread`).
    pub fn queue_shape(&self, queue: &str) -> ReadShape {
        if self.dynamic_reads {
            return ReadShape::FullScan;
        }
        self.queues
            .get(queue)
            .copied()
            .unwrap_or(ReadShape::Unread)
    }
}

/// Build the retention plan from the spec and per-rule facts.
pub fn retention_plan(spec: &AppSpec, rules: &[RuleFacts]) -> RetentionPlan {
    // Property bindings evaluate per message too; their reads count the
    // same as rule-body reads. Argument-less `qs:queue()` has no queue
    // context there, so it classifies as dynamic.
    let binding_reads: Vec<(ScanReads, Vec<crate::facts::AggregateReadFact>)> = spec
        .properties
        .iter()
        .flat_map(|p| p.bindings.iter())
        .map(|b| {
            (
                extract_scan_reads(&b.value, None),
                extract_aggregate_reads(&b.value, None),
            )
        })
        .collect();

    let dynamic_reads = rules.iter().any(|r| r.scan_reads.dynamic)
        || binding_reads.iter().any(|(s, _)| s.dynamic);

    // ---- per-queue shapes --------------------------------------------------
    let mut queues: BTreeMap<String, ReadShape> = spec
        .queues
        .iter()
        .map(|q| (q.name.clone(), ReadShape::Unread))
        .collect();
    {
        let mut join = |q: &str, shape: ReadShape| {
            let slot = queues.entry(q.to_string()).or_insert(ReadShape::Unread);
            *slot = slot.join(shape);
        };
        let absorb = |scans: &ScanReads, aggs: &[crate::facts::AggregateReadFact],
                          join: &mut dyn FnMut(&str, ReadShape)| {
            for q in &scans.queues {
                join(q, ReadShape::FullScan);
            }
            for (q, k) in &scans.suffix {
                if let Some(q) = q {
                    join(q, ReadShape::BoundedSuffix(*k));
                }
            }
            for a in aggs {
                if let (AggReadSource::Queue(q), true) = (&a.source, a.incremental) {
                    join(q, ReadShape::AggregateOnly);
                }
                // Non-incremental aggregates also recorded a raw scan.
            }
        };
        for r in rules {
            absorb(&r.scan_reads, &r.aggregate_reads, &mut join);
        }
        for (scans, aggs) in &binding_reads {
            absorb(scans, aggs, &mut join);
        }
        if dynamic_reads {
            for shape in queues.values_mut() {
                *shape = ReadShape::FullScan;
            }
        }
    }

    // ---- per-slicing plans -------------------------------------------------
    let all_queues: Vec<String> = spec.queues.iter().map(|q| q.name.clone()).collect();
    let mut slicings: BTreeMap<String, SlicePlan> = BTreeMap::new();
    for s in &spec.slicings {
        let own_rules = || {
            rules
                .iter()
                .filter(|r| r.on_slicing && r.target == s.name)
        };
        let mut shape = ReadShape::Unread;
        for r in own_rules() {
            if r.scan_reads.slice {
                shape = shape.join(ReadShape::FullScan);
            }
            for (q, k) in &r.scan_reads.suffix {
                if q.is_none() {
                    shape = shape.join(ReadShape::BoundedSuffix(*k));
                }
            }
            for a in &r.aggregate_reads {
                if a.source == AggReadSource::Slice {
                    shape = shape.join(if a.incremental {
                        ReadShape::AggregateOnly
                    } else {
                        ReadShape::FullScan
                    });
                }
            }
        }
        let has_reset = rules.iter().any(|r| {
            r.named_resets.iter().any(|n| n == &s.name)
                || (r.bare_resets > 0 && r.on_slicing && r.target == s.name)
        });
        // Which queues can contribute members? A `fixed` key is computed
        // only on its binding queues (plus any enqueue that names it in a
        // `with` clause, kept for conservatism); `inherited`/`explicit`
        // keys can ride on any message anywhere.
        let member_queues: Vec<String> = match spec.property(&s.property) {
            Some(p) if p.kind == PropKind::Fixed => {
                let mut qs: Vec<String> = p
                    .bindings
                    .iter()
                    .flat_map(|b| b.queues.iter().cloned())
                    .collect();
                for r in rules {
                    for site in &r.enqueues {
                        if site.with_props.iter().any(|(n, _)| n == &s.property) {
                            qs.push(site.queue.clone());
                        }
                    }
                }
                qs.sort();
                qs.dedup();
                qs
            }
            _ => all_queues.clone(),
        };
        let member_queues_unread = !dynamic_reads
            && member_queues
                .iter()
                .all(|q| matches!(queues.get(q.as_str()), Some(ReadShape::Unread)));
        let narrowable = member_queues_unread && shape != ReadShape::FullScan;
        slicings.insert(
            s.name.clone(),
            SlicePlan {
                shape,
                member_queues,
                member_queues_unread,
                has_reset,
                narrowable,
            },
        );
    }

    RetentionPlan {
        queues,
        slicings,
        dynamic_reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demaq_qdl::parse_program;

    fn plan(src: &str) -> RetentionPlan {
        let spec = parse_program(src).expect("parse");
        let facts: Vec<RuleFacts> = spec
            .rules
            .iter()
            .map(|r| RuleFacts::from_rule(r, &spec))
            .collect();
        retention_plan(&spec, &facts)
    }

    const TELEMETRY: &str = r#"
        create queue readings kind basic mode persistent
        create queue reports kind basic mode persistent
        create property device as xs:string fixed queue readings value //reading/@dev
        create slicing byDevice on device
        create rule rollover for byDevice
          if (count(qs:slice()) >= 16) then
            (do enqueue <window n="{count(qs:slice())}" total="{sum(qs:slice()//v)}"/>
               into reports,
             do reset)
    "#;

    #[test]
    fn join_is_commutative_and_conservative() {
        use ReadShape::*;
        assert_eq!(Unread.join(AggregateOnly), AggregateOnly);
        assert_eq!(AggregateOnly.join(BoundedSuffix(1)), FullScan);
        assert_eq!(BoundedSuffix(1).join(BoundedSuffix(3)), BoundedSuffix(3));
        assert_eq!(FullScan.join(Unread), FullScan);
    }

    #[test]
    fn aggregate_only_slicing_on_fixed_key_narrows() {
        let p = plan(TELEMETRY);
        let s = &p.slicings["byDevice"];
        assert_eq!(s.shape, ReadShape::AggregateOnly);
        assert_eq!(s.member_queues, ["readings"]);
        assert!(s.member_queues_unread, "{p:?}");
        assert!(s.has_reset);
        assert!(s.narrowable);
        assert_eq!(p.queue_shape("readings"), ReadShape::Unread);
    }

    #[test]
    fn raw_slice_scan_blocks_narrowing() {
        let p = plan(r#"
            create queue readings kind basic mode persistent
            create queue reports kind basic mode persistent
            create property device as xs:string fixed queue readings value //reading/@dev
            create slicing byDevice on device
            create rule dump for byDevice
              if (count(qs:slice()) >= 4) then
                (do enqueue <all>{qs:slice()//v}</all> into reports, do reset)
        "#);
        let s = &p.slicings["byDevice"];
        assert_eq!(s.shape, ReadShape::FullScan);
        assert!(!s.narrowable);
    }

    #[test]
    fn member_queue_read_elsewhere_blocks_narrowing() {
        let p = plan(r#"
            create queue readings kind basic mode persistent
            create queue reports kind basic mode persistent
            create property device as xs:string fixed queue readings value //reading/@dev
            create slicing byDevice on device
            create rule roll for byDevice
              if (count(qs:slice()) >= 4) then do reset
            create rule audit for reports
              if (count(qs:queue("readings")) > 100) then
                do enqueue <big/> into reports
        "#);
        // `count(qs:queue("readings"))` is AggregateOnly — but any
        // queue-level read observes retained members, so purging them
        // would change it.
        assert_eq!(p.queue_shape("readings"), ReadShape::AggregateOnly);
        assert!(!p.slicings["byDevice"].member_queues_unread);
        assert!(!p.slicings["byDevice"].narrowable);
    }

    #[test]
    fn suffix_reads_stay_bounded() {
        let p = plan(r#"
            create queue events kind basic mode persistent
            create queue out kind basic mode persistent
            create property sess as xs:string fixed queue events value //e/@s
            create slicing bySession on sess
            create rule latest for bySession
              if (qs:slice()[last()]//e/@kind = "close") then
                do enqueue <bye/> into out
        "#);
        let s = &p.slicings["bySession"];
        assert_eq!(s.shape, ReadShape::BoundedSuffix(1));
        assert!(s.narrowable);
        assert!(!s.has_reset);
    }

    #[test]
    fn inherited_key_widens_member_queues_and_dynamic_reads_widen_all() {
        let p = plan(r#"
            create queue a kind basic mode persistent
            create queue b kind basic mode persistent
            create property lane as xs:integer inherited
            create slicing lanes on lane
            create rule roll for lanes
              if (count(qs:slice()) > 3) then do reset
        "#);
        let s = &p.slicings["lanes"];
        assert_eq!(s.member_queues, ["a", "b"]);
        assert!(s.member_queues_unread);
        assert!(s.narrowable);

        let p = plan(r#"
            create queue a kind basic mode persistent
            create queue b kind basic mode persistent
            create property lane as xs:integer inherited
            create slicing lanes on lane
            create rule roll for lanes
              if (count(qs:slice()) > 3) then do reset
            create rule peek for a
              if (exists(collection(//which)//x)) then do enqueue <saw/> into b
        "#);
        assert!(p.dynamic_reads);
        assert_eq!(p.queue_shape("a"), ReadShape::FullScan);
        assert!(!p.slicings["lanes"].narrowable);
    }

    #[test]
    fn unread_slicing_shape_allows_drop_narrowing() {
        // A slicing whose rules never read the slice at all (pure
        // latest-trigger logic) narrows to dropping members outright.
        let p = plan(r#"
            create queue pings kind basic mode persistent
            create queue out kind basic mode persistent
            create property host as xs:string fixed queue pings value //p/@h
            create slicing byHost on host
            create rule note for byHost
              if (qs:message()//p/@up = "0") then do enqueue <down/> into out
        "#);
        let s = &p.slicings["byHost"];
        assert_eq!(s.shape, ReadShape::Unread);
        assert!(s.narrowable);
    }
}
