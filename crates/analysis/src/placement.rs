//! Queue → shard placement derived from the whole-application flow graph.
//!
//! The paper's slice-granularity locking (Sec. 5) already treats slices as
//! independent units of work; placement extends that to a *partitioned*
//! deployment: N engine shards, each owning its own store (private WAL +
//! slice index), fronted by a routing directory that maps
//! `(queue, slicing-key-hash)` to a shard at enqueue time.
//!
//! The computed placement keeps two invariants:
//!
//! 1. **Slice completeness** — all messages carrying the same slicing-key
//!    value land on the same shard, so slicing rules see whole slices.
//!    With a single slicing key this holds by hashing the key value with
//!    one process-stable hash everywhere; queues that cannot be keyed
//!    (gateways, echo queues, queues read via `qs:queue(...)`) are pinned
//!    to a fixed shard instead.
//! 2. **Chain locality** — queues connected by flow edges or cross-queue
//!    reads share a *group*; a whole group is either key-partitioned or
//!    pinned together, so a hot rule chain (e.g. enrich → finish) never
//!    hops shards when the key is inherited down the chain.
//!
//! Messages that reach a key-partitioned queue *without* the key fall
//! back to the group's dedicated shard, keeping key-less traffic of one
//! chain co-located. A 1-shard placement routes everything to shard 0 and
//! degrades exactly to the single-server engine.

use crate::facts::RuleFacts;
use crate::graph::FlowGraph;
use demaq_qdl::{AppSpec, QueueKind};
use std::collections::{BTreeMap, BTreeSet};

/// Where one queue's messages live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueuePlacement {
    /// Every message of this queue lives on one shard.
    Fixed(usize),
    /// Messages are distributed by the hash of `property`'s value;
    /// messages that do not carry the key go to `fallback`.
    ByKey { property: String, fallback: usize },
}

/// The routing directory: queue name → placement, for a shard count.
#[derive(Debug, Clone)]
pub struct Placement {
    pub shards: usize,
    pub queues: BTreeMap<String, QueuePlacement>,
}

impl Placement {
    /// The trivial single-shard placement (everything on shard 0).
    pub fn single() -> Placement {
        Placement {
            shards: 1,
            queues: BTreeMap::new(),
        }
    }

    /// Destination shard for a message entering `queue`, given the stable
    /// hash of its slicing-key value (`None` when the key is absent).
    /// Unknown queues route to shard 0.
    pub fn route(&self, queue: &str, key_hash: Option<u64>) -> usize {
        if self.shards <= 1 {
            return 0;
        }
        match self.queues.get(queue) {
            Some(QueuePlacement::Fixed(s)) => *s,
            Some(QueuePlacement::ByKey { fallback, .. }) => match key_hash {
                Some(h) => (h % self.shards as u64) as usize,
                None => *fallback,
            },
            None => 0,
        }
    }

    /// The slicing-key property that partitions `queue`, if any.
    pub fn key_property(&self, queue: &str) -> Option<&str> {
        match self.queues.get(queue) {
            Some(QueuePlacement::ByKey { property, .. }) => Some(property),
            _ => None,
        }
    }
}

/// Process-stable FNV-1a over a key value's canonical bytes. Every shard
/// of a deployment must agree on `hash(value) % shards`, so the std
/// `DefaultHasher` (randomly seeded per instance) is out.
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Union-find over queue indexes.
struct Groups {
    parent: Vec<usize>,
}

impl Groups {
    fn new(n: usize) -> Groups {
        Groups {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, a: usize) -> usize {
        let mut r = a;
        while self.parent[r] != r {
            r = self.parent[r];
        }
        let mut c = a;
        while self.parent[c] != c {
            let next = self.parent[c];
            self.parent[c] = r;
            c = next;
        }
        r
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Queues on which `prop` is known to appear statically: binding sites
/// plus `with prop …` enqueue targets.
fn static_carriers(spec: &AppSpec, rules: &[RuleFacts], prop: &str) -> Vec<String> {
    let mut out = BTreeSet::new();
    if let Some(p) = spec.property(prop) {
        for b in &p.bindings {
            for q in &b.queues {
                out.insert(q.clone());
            }
        }
    }
    for r in rules {
        for s in &r.enqueues {
            if s.with_props.iter().any(|(n, _)| n == prop) {
                out.insert(s.queue.clone());
            }
        }
    }
    out.into_iter().collect()
}

/// The queues a rule's firings originate from: its trigger queue, or — for
/// a slicing rule — every queue its key property can statically appear on.
fn rule_sources(spec: &AppSpec, rules: &[RuleFacts], r: &RuleFacts) -> Vec<String> {
    if !r.on_slicing {
        return vec![r.target.clone()];
    }
    match spec.slicing(&r.target) {
        Some(s) => static_carriers(spec, rules, &s.property),
        None => Vec::new(),
    }
}

/// Compute the queue → shard routing directory for `shards` shards.
///
/// Grouping: queues joined by flow edges, by a rule's cross-queue reads
/// (`qs:queue(...)` — the read queue must be whole on the reader's
/// shard), or by carrying the same slicing key are placed together. A
/// group is key-partitioned iff the application has exactly one slicing
/// key, and the group contains only basic queues none of which is read
/// across queues; otherwise the group is pinned to one shard,
/// round-robin over groups in deterministic (name) order. `overrides`
/// pin individual queues last and win over the computed placement.
pub fn compute_placement(
    spec: &AppSpec,
    rules: &[RuleFacts],
    graph: &FlowGraph,
    shards: usize,
    overrides: &BTreeMap<String, usize>,
) -> Placement {
    let shards = shards.max(1);
    let mut queues: BTreeMap<String, QueuePlacement> = BTreeMap::new();
    if shards == 1 {
        for q in &graph.queues {
            queues.insert(q.clone(), QueuePlacement::Fixed(0));
        }
        return Placement { shards, queues };
    }

    let n = graph.queues.len();
    let idx = |name: &str| graph.index(name);
    let mut groups = Groups::new(n);
    for e in &graph.edges {
        groups.union(e.from, e.to);
    }
    // Readers must be co-located with the queues they read in full.
    for r in rules {
        for src in rule_sources(spec, rules, r) {
            if let Some(a) = idx(&src) {
                for read in &r.reads_queues {
                    if let Some(b) = idx(read) {
                        groups.union(a, b);
                    }
                }
            }
        }
    }
    // Statically-known carriers of one slicing key belong together.
    let slicing_props: BTreeSet<&str> = spec
        .slicings
        .iter()
        .map(|s| s.property.as_str())
        .collect();
    for p in &slicing_props {
        let carriers = static_carriers(spec, rules, p);
        let mut first = None;
        for q in &carriers {
            if let Some(i) = idx(q) {
                match first {
                    None => first = Some(i),
                    Some(f) => groups.union(f, i),
                }
            }
        }
    }

    // One slicing key → hash-partitioning has an unambiguous dimension.
    let single_key: Option<&str> = if slicing_props.len() == 1 {
        slicing_props.iter().next().copied()
    } else {
        None
    };
    let read_queues: BTreeSet<&str> = rules
        .iter()
        .flat_map(|r| r.reads_queues.iter().map(|q| q.as_str()))
        .collect();

    // Deterministic group order: by each group's smallest queue name.
    let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        by_root.entry(groups.find(i)).or_default().push(i);
    }
    let mut group_list: Vec<Vec<usize>> = by_root.into_values().collect();
    for g in &mut group_list {
        g.sort_by(|&a, &b| graph.queues[a].cmp(&graph.queues[b]));
    }
    group_list.sort_by(|a, b| graph.queues[a[0]].cmp(&graph.queues[b[0]]));

    for (gi, members) in group_list.iter().enumerate() {
        let home = gi % shards;
        let partitionable = single_key.is_some()
            && members.iter().all(|&i| {
                let name = graph.queues[i].as_str();
                spec.queue(name).map(|q| q.kind) == Some(QueueKind::Basic)
                    && !read_queues.contains(name)
            });
        for &i in members {
            let name = graph.queues[i].clone();
            let p = if partitionable {
                QueuePlacement::ByKey {
                    property: single_key.unwrap().to_string(),
                    fallback: home,
                }
            } else {
                QueuePlacement::Fixed(home)
            };
            queues.insert(name, p);
        }
    }
    for (q, s) in overrides {
        queues.insert(q.clone(), QueuePlacement::Fixed(s % shards));
    }
    Placement { shards, queues }
}

/// One DQ010 finding: a flow edge whose target lands on a different shard
/// than its trigger queue under `placement`.
#[derive(Debug, Clone)]
pub struct CrossShardEdge {
    pub rule: String,
    pub from: String,
    pub to: String,
    pub message: String,
}

/// Flow edges that hop shards under the given placement. Edges into
/// gateways and echo queues are exempt — those queues are single-homed by
/// construction and the egress hop is expected. Off-key warnings (a
/// produced message dropping the slicing key) fire only when the trigger
/// queue statically carries the key and the producing rule is not a
/// slicing rule: a slicing rule's output is a per-slice aggregate, not a
/// per-message chain, so its fallback-shard hop is expected.
pub fn cross_shard_edges(
    spec: &AppSpec,
    rules: &[RuleFacts],
    graph: &FlowGraph,
    placement: &Placement,
) -> Vec<CrossShardEdge> {
    let mut out = Vec::new();
    if placement.shards <= 1 {
        return out;
    }
    let mut seen = BTreeSet::new();
    for e in &graph.edges {
        let from = graph.queues[e.from].as_str();
        let to = graph.queues[e.to].as_str();
        if spec.queue(to).map(|q| q.kind) != Some(QueueKind::Basic) {
            continue;
        }
        let (Some(pf), Some(pt)) = (placement.queues.get(from), placement.queues.get(to)) else {
            continue;
        };
        let message = match (pf, pt) {
            (QueuePlacement::Fixed(a), QueuePlacement::Fixed(b)) if a != b => Some(format!(
                "enqueues from `{from}` (shard {a}) into `{to}` (shard {b}): every firing \
                 crosses shards"
            )),
            (QueuePlacement::ByKey { property, .. }, QueuePlacement::Fixed(b)) => Some(format!(
                "enqueues from key-partitioned `{from}` (by `{property}`) into `{to}` pinned \
                 to shard {b}: most firings cross shards"
            )),
            (QueuePlacement::Fixed(a), QueuePlacement::ByKey { property, .. }) => Some(format!(
                "enqueues from `{from}` pinned to shard {a} into key-partitioned `{to}` \
                 (by `{property}`): most firings cross shards"
            )),
            (
                QueuePlacement::ByKey { property: p1, .. },
                QueuePlacement::ByKey { property: p2, .. },
            ) => {
                if p1 != p2 {
                    Some(format!(
                        "`{from}` is partitioned by `{p1}` but `{to}` by `{p2}`: firings \
                         cross shards whenever the keys hash apart"
                    ))
                } else if key_guaranteed_on_target(spec, rules, &e.rule, to, p1) {
                    None
                } else {
                    let trigger_keyed = static_carriers(spec, rules, p1)
                        .iter()
                        .any(|q| q == from);
                    let from_slicing_rule = rules
                        .iter()
                        .any(|r| r.name == e.rule && r.on_slicing);
                    if trigger_keyed && !from_slicing_rule {
                        Some(format!(
                            "messages produced into `{to}` do not carry slicing key \
                             `{p1}` (not inherited, not set at the enqueue, no binding \
                             on `{to}`): they fall back off-key and the chain hops shards"
                        ))
                    } else {
                        None
                    }
                }
            }
            _ => None,
        };
        if let Some(message) = message {
            if seen.insert((e.rule.clone(), e.from, e.to)) {
                out.push(CrossShardEdge {
                    rule: e.rule.clone(),
                    from: from.to_string(),
                    to: to.to_string(),
                    message,
                });
            }
        }
    }
    out
}

/// Does a message produced by `rule` into `to` reliably carry key
/// property `prop`?
fn key_guaranteed_on_target(
    spec: &AppSpec,
    rules: &[RuleFacts],
    rule: &str,
    to: &str,
    prop: &str,
) -> bool {
    if let Some(p) = spec.property(prop) {
        if p.kind == demaq_qdl::PropKind::Inherited {
            return true; // propagates from the trigger
        }
        if p.bindings.iter().any(|b| b.queues.iter().any(|q| q == to)) {
            return true; // computed on arrival
        }
    }
    rules.iter().filter(|r| r.name == rule).any(|r| {
        r.enqueues.iter().any(|s| {
            s.queue == to && s.with_props.iter().any(|(n, _)| n == prop)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::RuleFacts;
    use demaq_qdl::parse_program;

    fn place(src: &str, shards: usize) -> (demaq_qdl::AppSpec, Vec<RuleFacts>, Placement) {
        let spec = parse_program(src).expect("parse");
        let facts: Vec<RuleFacts> = spec
            .rules
            .iter()
            .map(|r| RuleFacts::from_rule(r, &spec))
            .collect();
        let graph = FlowGraph::build(&spec, &facts);
        let p = compute_placement(&spec, &facts, &graph, shards, &BTreeMap::new());
        (spec, facts, p)
    }

    const KEYED_PIPELINE: &str = r#"
        create queue intake kind basic mode persistent
        create queue enriched kind basic mode persistent
        create queue done kind basic mode persistent
        create property lane as xs:integer inherited
        create slicing lanes on lane
        create rule enrich for intake
          if (//job) then do enqueue <enriched/> into enriched
        create rule finish for enriched
          if (//enriched) then do enqueue <done/> into done
    "#;

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let (_, _, p) = place(KEYED_PIPELINE, 1);
        assert_eq!(p.route("intake", Some(42)), 0);
        assert_eq!(p.route("done", None), 0);
    }

    #[test]
    fn single_slicing_key_partitions_the_chain() {
        let (_, _, p) = place(KEYED_PIPELINE, 4);
        for q in ["intake", "enriched", "done"] {
            assert_eq!(
                p.key_property(q),
                Some("lane"),
                "{q} should be key-partitioned: {:?}",
                p.queues.get(q)
            );
            // Same key value → same shard on every queue of the chain.
            let h = stable_hash(b"7");
            assert_eq!(p.route(q, Some(h)), (h % 4) as usize);
        }
    }

    #[test]
    fn gateways_and_read_queues_pin_their_group() {
        let (_, _, p) = place(
            r#"
            create queue inbox kind basic mode persistent
            create queue ship kind outgoingGateway mode persistent endpoint "urn:s"
            create queue audit kind basic mode persistent
            create property lane as xs:integer inherited
            create slicing lanes on lane
            create rule send for inbox
              if (//order and not(qs:queue("audit")[/copy])) then
                do enqueue <req/> into ship
            create rule stash for inbox
              if (//order) then do enqueue <copy/> into audit
        "#,
            4,
        );
        // `audit` is read in full; `ship` is a gateway: the whole group is
        // pinned to one shard.
        let home = p.route("inbox", None);
        assert!(matches!(p.queues.get("inbox"), Some(QueuePlacement::Fixed(_))));
        assert_eq!(p.route("audit", Some(stable_hash(b"x"))), home);
        assert_eq!(p.route("ship", Some(stable_hash(b"y"))), home);
    }

    #[test]
    fn keyless_messages_share_the_group_fallback() {
        let (_, _, p) = place(KEYED_PIPELINE, 4);
        let f = p.route("intake", None);
        assert_eq!(p.route("enriched", None), f);
        assert_eq!(p.route("done", None), f);
    }

    #[test]
    fn disconnected_groups_spread_round_robin() {
        let (_, _, p) = place(
            r#"
            create queue a1 kind basic mode persistent
            create queue a2 kind basic mode persistent
            create queue b1 kind basic mode persistent
            create queue b2 kind basic mode persistent
            create rule ra for a1 if (//x) then do enqueue <y/> into a2
            create rule rb for b1 if (//x) then do enqueue <y/> into b2
        "#,
            2,
        );
        // No slicing: both chains are pinned, each whole, on different
        // shards.
        let ha = p.route("a1", None);
        let hb = p.route("b1", None);
        assert_eq!(p.route("a2", None), ha);
        assert_eq!(p.route("b2", None), hb);
        assert_ne!(ha, hb);
    }

    #[test]
    fn overrides_pin_individual_queues() {
        let spec = parse_program(KEYED_PIPELINE).unwrap();
        let facts: Vec<RuleFacts> = spec
            .rules
            .iter()
            .map(|r| RuleFacts::from_rule(r, &spec))
            .collect();
        let graph = FlowGraph::build(&spec, &facts);
        let mut ov = BTreeMap::new();
        ov.insert("done".to_string(), 3usize);
        let p = compute_placement(&spec, &facts, &graph, 4, &ov);
        assert_eq!(p.queues.get("done"), Some(&QueuePlacement::Fixed(3)));
        assert_eq!(p.key_property("intake"), Some("lane"));
    }

    #[test]
    fn inherited_key_chain_has_no_cross_shard_edges() {
        let (spec, facts, p) = place(KEYED_PIPELINE, 4);
        let graph = FlowGraph::build(&spec, &facts);
        let edges = cross_shard_edges(&spec, &facts, &graph, &p);
        assert!(edges.is_empty(), "got: {edges:?}");
    }

    #[test]
    fn non_inherited_key_flags_the_hot_edge() {
        let (spec, facts, p) = place(
            r#"
            create queue intake kind basic mode persistent
            create queue done kind basic mode persistent
            create property lane as xs:integer
                queue intake value //job/@lane
            create slicing lanes on lane
            create rule fwd for intake
              if (//job) then do enqueue <done/> into done
        "#,
            4,
        );
        let graph = FlowGraph::build(&spec, &facts);
        let edges = cross_shard_edges(&spec, &facts, &graph, &p);
        assert_eq!(edges.len(), 1, "got: {edges:?}");
        assert_eq!(edges[0].rule, "fwd");
        assert_eq!(edges[0].to, "done");
    }

    #[test]
    fn override_split_chain_is_flagged() {
        let spec = parse_program(KEYED_PIPELINE).unwrap();
        let facts: Vec<RuleFacts> = spec
            .rules
            .iter()
            .map(|r| RuleFacts::from_rule(r, &spec))
            .collect();
        let graph = FlowGraph::build(&spec, &facts);
        let mut ov = BTreeMap::new();
        ov.insert("enriched".to_string(), 2usize);
        let p = compute_placement(&spec, &facts, &graph, 4, &ov);
        let edges = cross_shard_edges(&spec, &facts, &graph, &p);
        // intake→enriched (ByKey→Fixed) and enriched→done (Fixed→ByKey).
        assert_eq!(edges.len(), 2, "got: {edges:?}");
    }
}
