//! BPEL/XL-style per-instance context engine with a dehydration store.
//!
//! Models the architecture the paper contrasts with in Sec. 2.1: "instance-
//! local variables can be used for storing state information. Contexts that
//! include these variable bindings have to be kept for each active process
//! instance, which leads to scalability issues if the number of processes
//! is large. Some execution systems try to overcome this problem by
//! serializing data (dehydration) of 'stale' instances … the Oracle BPEL
//! Process Manager stores application contexts in a relational database
//! system (dehydration store) and reacquires them when processing
//! continues."
//!
//! The engine runs a correlate-accumulate workload comparable to a Demaq
//! slicing: each incoming message belongs to one process instance; the
//! instance's context is an XML document that is loaded, grown by the new
//! message, and saved back. At most `active_cap` contexts stay hydrated in
//! memory; the rest are serialized to the dehydration directory and must be
//! re-parsed on access — the per-message cost the paper attributes to this
//! design.

use demaq_obs::{Counter, Histogram, Obs};
use demaq_xml::{parse, serialize, DocBuilder, Document};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Statistics of a run.
#[derive(Debug, Default, Clone)]
pub struct ContextStats {
    pub messages: u64,
    pub dehydrations: u64,
    pub rehydrations: u64,
    pub bytes_serialized: u64,
}

/// Registry handles (`demaq_baseline_ctx_*`) — the same registry a Demaq
/// server reports into, so bench runs can compare both sides in one
/// exposition.
struct CtxMetrics {
    messages: Counter,
    dehydrations: Counter,
    rehydrations: Counter,
    bytes_serialized: Counter,
    deliver_ns: Histogram,
}

struct Hydrated {
    doc: Arc<Document>,
    last_used: u64,
}

/// The baseline engine.
pub struct ContextEngine {
    dir: PathBuf,
    active_cap: usize,
    hydrated: HashMap<String, Hydrated>,
    /// Instances that have been dehydrated at least once.
    on_disk: HashMap<String, PathBuf>,
    tick: u64,
    pub stats: ContextStats,
    metrics: Option<CtxMetrics>,
}

impl ContextEngine {
    /// Create an engine with a dehydration store in `dir`, keeping at most
    /// `active_cap` instance contexts in memory.
    pub fn new(dir: impl Into<PathBuf>, active_cap: usize) -> std::io::Result<ContextEngine> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ContextEngine {
            dir,
            active_cap: active_cap.max(1),
            hydrated: HashMap::new(),
            on_disk: HashMap::new(),
            tick: 0,
            stats: ContextStats::default(),
            metrics: None,
        })
    }

    /// Report into `obs` (`demaq_baseline_ctx_*` series). Replaces any
    /// previous attachment.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.metrics = Some(CtxMetrics {
            messages: obs.registry.counter("demaq_baseline_ctx_messages_total"),
            dehydrations: obs.registry.counter("demaq_baseline_ctx_dehydrations_total"),
            rehydrations: obs.registry.counter("demaq_baseline_ctx_rehydrations_total"),
            bytes_serialized: obs
                .registry
                .counter("demaq_baseline_ctx_bytes_serialized_total"),
            deliver_ns: obs.registry.histogram("demaq_baseline_ctx_deliver_ns"),
        });
    }

    /// Deliver one message to its instance: load (possibly rehydrate) the
    /// context, append the message to the context's history, store back.
    /// Returns the number of messages now accumulated in the instance.
    pub fn deliver(&mut self, instance: &str, message_xml: &str) -> std::io::Result<usize> {
        let started = Instant::now();
        self.tick += 1;
        self.stats.messages += 1;
        if let Some(m) = &self.metrics {
            m.messages.inc();
        }
        let tick = self.tick;

        // Load or create the context document.
        let doc = match self.hydrated.get_mut(instance) {
            Some(h) => {
                h.last_used = tick;
                Arc::clone(&h.doc)
            }
            None => {
                let doc = match self.on_disk.get(instance) {
                    Some(path) => {
                        // Rehydrate: read + parse the serialized context.
                        self.stats.rehydrations += 1;
                        if let Some(m) = &self.metrics {
                            m.rehydrations.inc();
                        }
                        let bytes = std::fs::read(path)?;
                        parse(std::str::from_utf8(&bytes).expect("utf8 context")).map_err(|e| {
                            std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                        })?
                    }
                    None => {
                        let mut b = DocBuilder::new();
                        b.start("context").attr("instance", instance).end();
                        b.finish()
                    }
                };
                self.make_room()?;
                self.hydrated.insert(
                    instance.to_string(),
                    Hydrated {
                        doc: Arc::clone(&doc),
                        last_used: tick,
                    },
                );
                doc
            }
        };

        // Grow the context: copy the old variables + append the message
        // (immutably rebuilding, as our trees are frozen — comparable cost
        // to a DOM mutation + re-serialization in the modelled systems).
        let msg = parse(message_xml)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut b = DocBuilder::new();
        b.start("context").attr("instance", instance);
        if let Some(root) = doc.document_element() {
            for c in root.children() {
                b.copy_node(&c);
            }
        }
        b.copy_node(&msg.document_element().expect("message root"));
        b.end();
        let new_doc = b.finish();
        let count = new_doc
            .document_element()
            .map(|r| r.children().len())
            .unwrap_or(0);
        self.hydrated.insert(
            instance.to_string(),
            Hydrated {
                doc: new_doc,
                last_used: tick,
            },
        );
        if let Some(m) = &self.metrics {
            m.deliver_ns.record(started.elapsed());
        }
        Ok(count)
    }

    /// Evict least-recently-used contexts past the cap (dehydration).
    fn make_room(&mut self) -> std::io::Result<()> {
        while self.hydrated.len() >= self.active_cap {
            let victim = self
                .hydrated
                .iter()
                .min_by_key(|(_, h)| h.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            let h = self.hydrated.remove(&victim).expect("present");
            let xml = serialize(&h.doc);
            let path = self.dir.join(format!("{victim}.ctx"));
            std::fs::write(&path, xml.as_bytes())?;
            self.stats.dehydrations += 1;
            self.stats.bytes_serialized += xml.len() as u64;
            if let Some(m) = &self.metrics {
                m.dehydrations.inc();
                m.bytes_serialized.add(xml.len() as u64);
            }
            self.on_disk.insert(victim, path);
        }
        Ok(())
    }

    /// Number of messages accumulated for an instance (hydrating it if
    /// needed) — the read path of the comparison workload.
    pub fn instance_size(&mut self, instance: &str) -> std::io::Result<usize> {
        // Reuse deliver's loading logic via a no-op touch: read path only.
        if let Some(h) = self.hydrated.get(instance) {
            return Ok(h
                .doc
                .document_element()
                .map(|r| r.children().len())
                .unwrap_or(0));
        }
        if let Some(path) = self.on_disk.get(instance) {
            self.stats.rehydrations += 1;
            if let Some(m) = &self.metrics {
                m.rehydrations.inc();
            }
            let bytes = std::fs::read(path)?;
            let doc = parse(std::str::from_utf8(&bytes).expect("utf8"))
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            return Ok(doc
                .document_element()
                .map(|r| r.children().len())
                .unwrap_or(0));
        }
        Ok(0)
    }

    /// Hydrated instance count (diagnostics).
    pub fn hydrated_count(&self) -> usize {
        self.hydrated.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    #[test]
    fn accumulates_messages_per_instance() {
        let dir = TempDir::new().unwrap();
        let mut eng = ContextEngine::new(dir.path(), 100).unwrap();
        assert_eq!(eng.deliver("i1", "<a/>").unwrap(), 1);
        assert_eq!(eng.deliver("i1", "<b/>").unwrap(), 2);
        assert_eq!(eng.deliver("i2", "<a/>").unwrap(), 1);
        assert_eq!(eng.instance_size("i1").unwrap(), 2);
    }

    #[test]
    fn dehydrates_past_cap_and_rehydrates() {
        let dir = TempDir::new().unwrap();
        let mut eng = ContextEngine::new(dir.path(), 4).unwrap();
        for i in 0..16 {
            eng.deliver(&format!("inst-{i}"), "<m>payload</m>").unwrap();
        }
        assert!(eng.stats.dehydrations > 0, "LRU contexts were written out");
        assert!(eng.hydrated_count() <= 4);
        // Touching an old instance forces a rehydration (disk + parse).
        let n = eng.deliver("inst-0", "<m2/>").unwrap();
        assert_eq!(n, 2, "state survived the dehydration roundtrip");
        assert!(eng.stats.rehydrations > 0);
    }

    #[test]
    fn obs_mirrors_stats() {
        let dir = TempDir::new().unwrap();
        let obs = Obs::new();
        let mut eng = ContextEngine::new(dir.path(), 2).unwrap();
        eng.attach_obs(&obs);
        for i in 0..8 {
            eng.deliver(&format!("inst-{}", i % 4), "<m/>").unwrap();
        }
        let r = &obs.registry;
        assert_eq!(
            r.counter("demaq_baseline_ctx_messages_total").get(),
            eng.stats.messages
        );
        assert_eq!(
            r.counter("demaq_baseline_ctx_dehydrations_total").get(),
            eng.stats.dehydrations
        );
        assert_eq!(
            r.counter("demaq_baseline_ctx_rehydrations_total").get(),
            eng.stats.rehydrations
        );
        assert_eq!(
            r.counter("demaq_baseline_ctx_bytes_serialized_total").get(),
            eng.stats.bytes_serialized
        );
        assert_eq!(
            r.histogram("demaq_baseline_ctx_deliver_ns").count(),
            eng.stats.messages
        );
    }

    #[test]
    fn interleaved_instances_thrash_the_store() {
        let dir = TempDir::new().unwrap();
        let mut eng = ContextEngine::new(dir.path(), 2).unwrap();
        for round in 0..5 {
            for i in 0..6 {
                eng.deliver(&format!("inst-{i}"), &format!("<m r='{round}'/>"))
                    .unwrap();
            }
        }
        // With 6 live instances and room for 2, almost every delivery
        // rehydrates — the scalability issue the paper describes.
        assert!(eng.stats.rehydrations as f64 >= eng.stats.messages as f64 * 0.5);
        for i in 0..6 {
            assert_eq!(eng.instance_size(&format!("inst-{i}")).unwrap(), 5);
        }
    }
}
