//! Explicit message deletion — the manual-memory-management strawman of
//! paper Sec. 2.3.3.
//!
//! "One straightforward solution is to allow for explicit deletion by the
//! application program. This is the equivalent of manual memory management
//! … a chronic source of errors … In particular, the order in which the
//! three conditions for safe message deletion become true varies from
//! order to order. Thus, all modules would need to know about the message
//! retention policy of the other parts of the application."
//!
//! This baseline reproduces that design: each module registers the
//! messages it still needs; a message may be deleted only when *every*
//! module that ever claimed it has released it, and application code must
//! call `try_delete` at the right moments. Forgetting a release leaks the
//! message forever; releasing in the wrong order (deleting after the first
//! release) drops data other modules still need — both failure modes are
//! measurable, which is the point of benchmark E8.

use demaq_obs::{Counter, Gauge, Obs};
use std::collections::{HashMap, HashSet};

/// A module's name.
pub type Module = &'static str;

/// Registry handles (`demaq_baseline_explicit_*`).
struct DelMetrics {
    inserted: Counter,
    deleted: Counter,
    premature: Counter,
    live: Gauge,
}

/// Store of messages with per-module manual retention claims.
#[derive(Default)]
pub struct ExplicitDeleteStore {
    messages: HashMap<u64, String>,
    claims: HashMap<u64, HashSet<Module>>,
    next: u64,
    pub deleted: u64,
    /// Deletions attempted while another module still held a claim.
    pub premature_delete_attempts: u64,
    metrics: Option<DelMetrics>,
}

impl ExplicitDeleteStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Report into `obs` (`demaq_baseline_explicit_*` series). Replaces
    /// any previous attachment.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.metrics = Some(DelMetrics {
            inserted: obs
                .registry
                .counter("demaq_baseline_explicit_inserted_total"),
            deleted: obs.registry.counter("demaq_baseline_explicit_deleted_total"),
            premature: obs
                .registry
                .counter("demaq_baseline_explicit_premature_delete_attempts_total"),
            live: obs.registry.gauge("demaq_baseline_explicit_live"),
        });
    }

    /// Insert a message claimed by the given modules.
    pub fn insert(&mut self, payload: String, claimed_by: &[Module]) -> u64 {
        let id = self.next;
        self.next += 1;
        self.messages.insert(id, payload);
        self.claims.insert(id, claimed_by.iter().copied().collect());
        if let Some(m) = &self.metrics {
            m.inserted.inc();
            m.live.set(self.messages.len() as i64);
        }
        id
    }

    /// A module declares it no longer needs the message.
    pub fn release(&mut self, id: u64, module: Module) {
        if let Some(c) = self.claims.get_mut(&id) {
            c.remove(module);
        }
    }

    /// Application-driven deletion: succeeds only when no claims remain.
    /// (The application must remember to call this after the *last*
    /// release — the coordination burden the paper criticizes.)
    pub fn try_delete(&mut self, id: u64) -> bool {
        match self.claims.get(&id) {
            Some(c) if c.is_empty() => {
                self.claims.remove(&id);
                self.messages.remove(&id);
                self.deleted += 1;
                if let Some(m) = &self.metrics {
                    m.deleted.inc();
                    m.live.set(self.messages.len() as i64);
                }
                true
            }
            Some(_) => {
                self.premature_delete_attempts += 1;
                if let Some(m) = &self.metrics {
                    m.premature.inc();
                }
                false
            }
            None => false,
        }
    }

    /// Messages still alive.
    pub fn live(&self) -> usize {
        self.messages.len()
    }

    /// Messages with no remaining claims that nobody deleted — the "message
    /// leaks" of a module that released without attempting deletion.
    pub fn leaked(&self) -> usize {
        self.claims.values().filter(|c| c.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delete_requires_all_releases() {
        let mut s = ExplicitDeleteStore::new();
        let id = s.insert("<order/>".into(), &["packaging", "finance", "or"]);
        s.release(id, "packaging");
        assert!(!s.try_delete(id), "finance + OR still need it");
        s.release(id, "finance");
        assert!(!s.try_delete(id));
        s.release(id, "or");
        assert!(s.try_delete(id));
        assert_eq!(s.live(), 0);
        assert_eq!(s.premature_delete_attempts, 2);
    }

    #[test]
    fn obs_counters_track_lifecycle() {
        let obs = demaq_obs::Obs::new();
        let mut s = ExplicitDeleteStore::new();
        s.attach_obs(&obs);
        let id = s.insert("<m/>".into(), &["a", "b"]);
        s.release(id, "a");
        assert!(!s.try_delete(id));
        s.release(id, "b");
        assert!(s.try_delete(id));
        let r = &obs.registry;
        assert_eq!(r.counter("demaq_baseline_explicit_inserted_total").get(), 1);
        assert_eq!(r.counter("demaq_baseline_explicit_deleted_total").get(), 1);
        assert_eq!(
            r.counter("demaq_baseline_explicit_premature_delete_attempts_total")
                .get(),
            1
        );
        assert_eq!(r.gauge("demaq_baseline_explicit_live").get(), 0);
    }

    #[test]
    fn forgetting_the_delete_call_leaks() {
        let mut s = ExplicitDeleteStore::new();
        let id = s.insert("<order/>".into(), &["packaging"]);
        s.release(id, "packaging");
        // Nobody calls try_delete: the message leaks.
        assert_eq!(s.leaked(), 1);
        assert_eq!(s.live(), 1);
    }

    #[test]
    fn varying_release_order_needs_delete_everywhere() {
        // The paper: "the order in which the three conditions … become true
        // varies from order to order" — so every module must attempt the
        // delete, multiplying coordination calls.
        let mut s = ExplicitDeleteStore::new();
        let mut call_count = 0u32;
        for perm in [["a", "b", "c"], ["c", "a", "b"], ["b", "c", "a"]] {
            let id = s.insert("<m/>".into(), &["a", "b", "c"]);
            for module in perm {
                s.release(id, module);
                // Defensive pattern: every module tries to delete.
                s.try_delete(id);
                call_count += 1;
            }
        }
        assert_eq!(
            s.live(),
            0,
            "defensive deletes eventually collect everything"
        );
        assert_eq!(
            call_count, 9,
            "3 delete attempts per message vs. 0 with slices"
        );
        assert_eq!(s.premature_delete_attempts, 6);
    }
}
