//! # demaq-baselines
//!
//! Comparison systems for the benchmark suite — each implements the
//! architecture the paper argues *against*, so the experiments in
//! EXPERIMENTS.md can measure the claimed effect:
//!
//! * [`context_engine`] — a BPEL/XL-style engine keeping **per-instance
//!   runtime contexts** with a dehydration store (paper Sec. 2.1:
//!   "contexts … have to be kept for each active process instance, which
//!   leads to scalability issues"; Oracle BPEL's "dehydration store").
//!   Benchmark E1.
//! * [`slice_scan`] — computing a slice's members by **merging the slice
//!   definition into the query**, i.e. scanning the queues and evaluating
//!   the key property per message, instead of the materialized slice index
//!   (Sec. 4.3). Benchmark E2.
//! * [`explicit_delete`] — **manual message deletion** management: every
//!   module tracks its own retention conditions and must coordinate,
//!   reproducing the "message leak" failure mode of Sec. 2.3.3.
//!   Benchmark E8.

pub mod context_engine;
pub mod explicit_delete;
pub mod slice_scan;

pub use context_engine::ContextEngine;
pub use explicit_delete::ExplicitDeleteStore;
pub use slice_scan::scan_slice_members;
