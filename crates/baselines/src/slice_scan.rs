//! Non-materialized slice access: merge the slice definition into the
//! query (paper Sec. 4.3's strawman — "this would require to evaluate a
//! complex query for every incoming message").
//!
//! Given the queues a slicing is defined over and the key-property
//! expression, compute the members of one slice by scanning every retained
//! message, parsing it, evaluating the key path, and comparing with the
//! wanted key. The materialized [`demaq_store::slice::SliceIndex`] answers
//! the same question with one ordered-map lookup; benchmark E2 measures
//! the gap.

use demaq_store::{MessageStore, MsgId, PropValue};
use demaq_xml::parse;
use demaq_xquery::{parse_expr, DynamicContext, Evaluator, Expr, NoHost, StaticContext};
use std::sync::Arc;

/// Evaluate `key_expr` (e.g. `//customerID`) against every message of the
/// named queues, returning the ids whose computed key equals `key`.
pub fn scan_slice_members(
    store: &MessageStore,
    queues: &[&str],
    key_expr: &Expr,
    key: &PropValue,
) -> Vec<MsgId> {
    let sctx = StaticContext::default();
    let dctx = DynamicContext::new(Arc::new(NoHost));
    let wanted = key.render();
    let mut out = Vec::new();
    for q in queues {
        let Ok(messages) = store.queue_messages(q) else {
            continue;
        };
        for m in messages {
            let Ok(doc) = parse(&m.payload) else { continue };
            let mut ev = Evaluator::new(&sctx, &dctx);
            if let Ok(seq) = ev.eval_with_context(key_expr, doc.root()) {
                if let Some(item) = seq.0.first() {
                    if item.string_value() == wanted {
                        out.push(m.id);
                    }
                }
            }
        }
    }
    out.sort();
    out
}

/// Convenience: parse the key expression from text.
pub fn scan_slice_members_src(
    store: &MessageStore,
    queues: &[&str],
    key_expr_src: &str,
    key: &PropValue,
) -> Vec<MsgId> {
    let expr = parse_expr(key_expr_src).expect("valid key expression");
    scan_slice_members(store, queues, &expr, key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use demaq_store::{QueueMode, StoreOptions};
    use tempfile::TempDir;

    #[test]
    fn scan_agrees_with_materialized_index() {
        let dir = TempDir::new().unwrap();
        let store = MessageStore::open(StoreOptions::new(dir.path())).unwrap();
        store
            .create_queue("orders", QueueMode::Persistent, 0)
            .unwrap();
        store
            .create_queue("bills", QueueMode::Persistent, 0)
            .unwrap();
        for i in 0..30 {
            let customer = i % 5;
            let queue = if i % 2 == 0 { "orders" } else { "bills" };
            let txn = store.begin();
            let id = store
                .enqueue(
                    txn,
                    queue,
                    format!("<doc><customerID>{customer}</customerID><n>{i}</n></doc>").into(),
                    vec![],
                    0,
                )
                .unwrap();
            store
                .slice_add(txn, "byCustomer", PropValue::Str(customer.to_string()), id)
                .unwrap();
            store.commit(txn).unwrap();
        }
        for customer in 0..5 {
            let key = PropValue::Str(customer.to_string());
            let scanned =
                scan_slice_members_src(&store, &["orders", "bills"], "string(//customerID)", &key);
            let indexed = store.slice_members("byCustomer", &key);
            assert_eq!(scanned, indexed, "customer {customer}");
            assert_eq!(scanned.len(), 6);
        }
    }

    #[test]
    fn missing_key_yields_empty() {
        let dir = TempDir::new().unwrap();
        let store = MessageStore::open(StoreOptions::new(dir.path())).unwrap();
        store.create_queue("q", QueueMode::Persistent, 0).unwrap();
        let got = scan_slice_members_src(&store, &["q"], "//x", &PropValue::Str("zz".into()));
        assert!(got.is_empty());
    }
}
