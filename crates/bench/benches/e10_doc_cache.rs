//! E10 — Sharded document cache + materialized slice sequences (ISSUE 3).
//!
//! The rule-evaluation hot path used to re-parse message payloads on
//! every access: a slicing rule over a slice of N members parsed all N
//! documents on *each* member arrival, so processing N arrivals cost
//! O(N²) parses. The sharded byte-budgeted document cache plus the
//! version-validated slice-sequence cache turn that into O(N): each
//! document is parsed once on first touch, and an arrival extends the
//! cached member sequence incrementally instead of rebuilding it.
//!
//! Measured:
//! * `slice_join` — N arrivals into one slice, each followed by
//!   `run_until_idle` so the slicing rule re-evaluates against the
//!   growing slice. `cached` (defaults: 16 shards / 64 MiB budget /
//!   sequence cache on) vs `uncached` (`doc_cache_budget(0)`,
//!   `slice_seq_cache(false)` — the pre-cache engine shape).
//! * `parallel_4` — correlate workload drained by
//!   `process_all_parallel(4)`, cached vs uncached, to show the cache
//!   does not regress (and the condvar-parked workers do not spin).
//!
//! Expected shape: `demaq_core_doc_parses_total` grows linearly with N
//! when cached and quadratically when uncached; wall clock ≥ 2x better
//! cached at N = 1024. The metrics dumps land in `target/metrics/`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demaq::Server;
use demaq_store::store::SyncPolicy;

/// One slice that every message joins; the rule forces a full slice
/// materialization per processing without ever firing its action.
const JOIN_PROGRAM: &str = r#"
    create queue parts kind basic mode persistent
    create queue alerts kind basic mode persistent
    create property rid as xs:string fixed queue parts value //@rid
    create slicing byRid on rid
    create rule join for byRid
      if (count(qs:slice()) >= 1000000) then
        do enqueue <overflow>{qs:slicekey()}</overflow> into alerts
"#;

fn smoke() -> bool {
    std::env::var("DEMAQ_E10_SMOKE").is_ok()
}

fn build_server(cached: bool) -> Server {
    // The E14 aggregate registry answers this rule's membership-only
    // `count` without materializing the slice at all, which would leave
    // the caches under measurement with zero traffic. E10 isolates the
    // cache layer, so both twins pin the pre-registry engine shape; the
    // registry's own win over this exact workload is measured by E14.
    let mut b = Server::builder()
        .program(JOIN_PROGRAM)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .incremental_aggregates(false);
    if !cached {
        b = b.doc_cache_budget(0).slice_seq_cache(false);
    }
    b.build().expect("valid program")
}

/// N arrivals into the single slice, processing after each so the
/// slicing rule always sees the slice mid-growth (the O(N²) shape).
fn run_join(server: &Server, n: usize) {
    for i in 0..n {
        server
            .enqueue_external("parts", &format!("<p rid='hot'><n>{i}</n></p>"))
            .expect("enqueue");
        server.run_until_idle().expect("idle");
    }
}

/// Read one unlabeled counter/gauge value from a Prometheus exposition.
fn metric_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .unwrap_or(0)
}

fn bench_e10(c: &mut Criterion) {
    let sizes: &[usize] = if smoke() { &[32] } else { &[256, 1024] };
    let mut group = c.benchmark_group("e10_doc_cache");
    group.sample_size(10);

    for &n in sizes {
        group.throughput(Throughput::Elements(n as u64));
        for cached in [true, false] {
            let label = if cached {
                "slice_join_cached"
            } else {
                "slice_join_uncached"
            };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| {
                    let server = build_server(cached);
                    run_join(&server, n);
                    server.stats().processed
                });
            });
        }
    }

    // Parallel drain: feed first, then 4 workers race the scheduler. The
    // cache must help (shared across workers) — and at minimum not hurt.
    let (messages, instances) = if smoke() { (64, 8) } else { (1024, 8) };
    group.throughput(Throughput::Elements(messages as u64));
    for cached in [true, false] {
        let label = if cached {
            "parallel_4_cached"
        } else {
            "parallel_4_uncached"
        };
        group.bench_with_input(
            BenchmarkId::new(label, messages),
            &messages,
            |b, &messages| {
                b.iter(|| {
                    let server = build_server(cached);
                    for i in 0..messages {
                        let inst = i % instances;
                        server
                            .enqueue_external("parts", &format!("<p rid='i{inst}'><n>{i}</n></p>"))
                            .expect("enqueue");
                    }
                    server.process_all_parallel(4).expect("parallel");
                    server.stats().processed
                });
            },
        );
    }
    group.finish();

    // Representative runs with metric snapshots: the cached run must show
    // real hit traffic and linear parse growth; the uncached run pins the
    // quadratic baseline shape next to it in target/metrics/.
    let n = if smoke() { 48 } else { 512 };

    let server = build_server(true);
    run_join(&server, n);
    let text = server.metrics_text();
    let parses = metric_value(&text, "demaq_core_doc_parses_total");
    let doc_hits = metric_value(&text, "demaq_core_doc_cache_hits_total");
    let seq_hits = metric_value(&text, "demaq_core_slice_seq_hits_total")
        + metric_value(&text, "demaq_core_slice_seq_appends_total");
    let rebuilds = metric_value(&text, "demaq_core_slice_seq_rebuilds_total");
    assert!(doc_hits > 0, "doc cache saw no hits:\n{text}");
    assert!(seq_hits > 0, "slice-seq cache saw no hits/appends:\n{text}");
    assert!(
        parses <= (2 * n) as u64,
        "cached parse count must stay linear in N={n}, got {parses}"
    );
    assert!(
        rebuilds <= (n / 2) as u64,
        "cached sequence rebuilds must stay rare for an append-only slice, got {rebuilds}"
    );
    demaq_bench::dump_metrics(&server, "e10_doc_cache");

    let server = build_server(false);
    run_join(&server, n);
    let text = server.metrics_text();
    let parses_uncached = metric_value(&text, "demaq_core_doc_parses_total");
    assert!(
        parses_uncached > parses,
        "uncached baseline must re-parse more ({parses_uncached} vs {parses})"
    );
    demaq_bench::dump_metrics(&server, "e10_doc_cache_uncached");

    println!(
        "e10: N={n} parses cached={parses} uncached={parses_uncached} \
         doc_hits={doc_hits} seq_hits+appends={seq_hits} rebuilds={rebuilds}"
    );

    // Trajectory entry: the cache's parse-avoidance shape, machine-readable.
    let mut report = demaq_bench::report::BenchReport::new("e10_doc_cache", smoke());
    report
        .result("slice_members", n as f64, "count")
        .result("parses_cached", parses as f64, "count")
        .result("parses_uncached", parses_uncached as f64, "count")
        .result(
            "parse_reduction",
            parses_uncached as f64 / (parses as f64).max(1.0),
            "x",
        )
        .result("doc_cache_hits", doc_hits as f64, "count")
        .result("slice_seq_hits_and_appends", seq_hits as f64, "count");
    report.write();
}

criterion_group!(benches, bench_e10);
criterion_main!(benches);
