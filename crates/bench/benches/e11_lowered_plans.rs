//! E11 — Lowered execution plans (ISSUE 4).
//!
//! Rule bodies used to be re-interpreted from the name-based AST on every
//! message: every QName test compared strings, every variable reference
//! scanned the binding stack by name, and every trigger condition
//! materialized (and document-order-deduplicated) the full step result
//! just to take its effective boolean value. The lowering pass
//! (`demaq_xquery::plan`) resolves all of that at deploy time: name tests
//! become interned-symbol integer comparisons, variables become frame-slot
//! indices, constants fold, and boolean-position paths become streaming
//! existence tests that stop at the first matching node.
//!
//! Measured:
//! * `rule_eval` — single-thread rule-body evaluation throughput, lowered
//!   plan vs reference AST interpreter, on (a) the paper's Fig. 5
//!   newOfferRequest rule against its offerRequest message and (b) the
//!   4-rule pipeline workload. No store, no scheduler: pure evaluation.
//! * `pipeline_e2e` — the full engine path (doc cache enabled, Batch
//!   sync, single thread) with `lowered_plans(true)` vs `(false)`.
//!
//! Gate: the lowered evaluator must clear the speedup floor on the pure
//! rule-eval measurement (1.5x full, 1.0x smoke — smoke runs are too
//! short to assert more than "not slower"), and the e2e path must not
//! regress. Metric snapshots land in `target/metrics/`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demaq::engine::PlanMode;
use demaq::Server;
use demaq_bench::{feed_pipeline, pipeline_server_opts};
use demaq_store::store::SyncPolicy;
use demaq_xquery::{
    DynamicContext, Evaluator, NoHost, Plan, PlanEvaluator, StaticContext,
};
use demaq_xml::NodeRef;
use std::sync::Arc;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("DEMAQ_E11_SMOKE").is_ok()
}

/// Fig. 5 (Example 3.1): the newOfferRequest rule and a matching message.
const FIG5_PROGRAM: &str = r#"
    create queue crm kind basic mode persistent
    create queue finance kind basic mode persistent
    create queue legal kind basic mode persistent
    create queue supplier kind basic mode persistent
    create rule newOfferRequest for crm
      if (//offerRequest) then
        let $customerInfo :=
          <requestCustomerInfo>{//requestID} {//customerID}</requestCustomerInfo>
        let $exportRestrictionInfo :=
          <requestRestrictionInfo>{//requestID} {//items}</requestRestrictionInfo>
        let $plantCapacityInfo :=
          <plantCapacityInfo>{//requestID} {//items}</plantCapacityInfo>
        return (do enqueue $customerInfo into finance,
                do enqueue $exportRestrictionInfo into legal,
                do enqueue $plantCapacityInfo into supplier)
"#;

const FIG5_MESSAGE: &str = "<offerRequest><requestID>r1</requestID><customerID>c23</customerID>\
     <items><item>solvent</item><item>acid</item><item>base</item></items></offerRequest>";

/// A deployed rule set: (body, plan) pairs pulled out of the compiled app.
fn deployed_rules(server: &Server, queue: &str) -> Vec<(demaq_xquery::Expr, Arc<Plan>)> {
    server.app().queues[queue]
        .rules
        .iter()
        .map(|r| (r.body.clone(), Arc::clone(&r.plan)))
        .collect()
}

/// Evaluate every rule body with the reference interpreter.
fn eval_reference(rules: &[(demaq_xquery::Expr, Arc<Plan>)], root: &NodeRef) -> usize {
    let sctx = StaticContext::default();
    let dctx = DynamicContext::new(Arc::new(NoHost));
    let mut updates = 0;
    for (body, _) in rules {
        let mut ev = Evaluator::new(&sctx, &dctx);
        ev.eval_with_context(body, root.clone()).expect("eval");
        updates += ev.updates.len();
    }
    updates
}

/// Evaluate every lowered rule plan.
fn eval_lowered(rules: &[(demaq_xquery::Expr, Arc<Plan>)], root: &NodeRef) -> usize {
    let dctx = DynamicContext::new(Arc::new(NoHost));
    let mut updates = 0;
    for (_, plan) in rules {
        let mut ev = PlanEvaluator::new(&dctx);
        ev.eval_with_context(plan, root.clone()).expect("eval");
        updates += ev.updates.len();
    }
    updates
}

/// Median wall time of `samples` timed runs of `f`.
fn median_ns(samples: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos().max(1)
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Read one unlabeled counter/gauge value from a Prometheus exposition.
fn metric_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .unwrap_or(0)
}

fn bench_e11(c: &mut Criterion) {
    let fig5_server = Server::builder()
        .program(FIG5_PROGRAM)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()
        .expect("valid program");
    let fig5_rules = deployed_rules(&fig5_server, "crm");
    let fig5_doc = demaq_xml::parse(FIG5_MESSAGE).expect("parse");
    let fig5_root = fig5_doc.root();

    const PIPE_RULES: usize = 4;
    let pipe_server =
        pipeline_server_opts(PIPE_RULES, SyncPolicy::Batch, PlanMode::RuleAtATime, false, true);
    let pipe_rules = deployed_rules(&pipe_server, "inbox");
    // A message of realistic size (the paper's listings carry request IDs,
    // customer data, and item lists — not two elements): the matching
    // element sits behind a small header, with a payload tail the
    // existence test never needs to visit.
    let header: String = (0..4).map(|i| format!("<h{i}>x</h{i}>")).collect();
    let tail: String = (0..24)
        .map(|i| format!("<item n='{i}'><desc>part {i}</desc></item>"))
        .collect();
    let pipe_doc =
        demaq_xml::parse(&format!("<m>{header}<kind2 n='7'/>{tail}</m>")).expect("parse");
    let pipe_root = pipe_doc.root();

    // ---- criterion groups ------------------------------------------------
    let mut group = c.benchmark_group("e11_rule_eval");
    group.throughput(Throughput::Elements(1));
    group.bench_function("fig5_reference", |b| {
        b.iter(|| eval_reference(&fig5_rules, &fig5_root))
    });
    group.bench_function("fig5_lowered", |b| {
        b.iter(|| eval_lowered(&fig5_rules, &fig5_root))
    });
    group.bench_function("pipeline4_reference", |b| {
        b.iter(|| eval_reference(&pipe_rules, &pipe_root))
    });
    group.bench_function("pipeline4_lowered", |b| {
        b.iter(|| eval_lowered(&pipe_rules, &pipe_root))
    });
    group.finish();

    let messages = if smoke() { 128 } else { 2048 };
    let mut group = c.benchmark_group("e11_pipeline_e2e");
    group.sample_size(10);
    group.throughput(Throughput::Elements(messages as u64));
    for lowered in [true, false] {
        let label = if lowered { "lowered" } else { "reference" };
        group.bench_with_input(BenchmarkId::new(label, messages), &messages, |b, &n| {
            b.iter(|| {
                let server = pipeline_server_opts(
                    PIPE_RULES,
                    SyncPolicy::Batch,
                    PlanMode::RuleAtATime,
                    false,
                    lowered,
                );
                feed_pipeline(&server, n, PIPE_RULES);
                server.run_until_idle().expect("idle");
                server.stats().processed
            });
        });
    }
    group.finish();

    // ---- speedup gate on pure rule-eval throughput -----------------------
    let (iters, samples) = if smoke() { (1_500, 5) } else { (12_000, 7) };
    // Interleave a matching and a non-matching message so both the
    // short-circuit (hit) and the full-scan (miss) shapes count.
    let miss_doc =
        demaq_xml::parse(&format!("<m>{header}<other n='0'/>{tail}</m>")).expect("parse");
    let miss_root = miss_doc.root();
    let ref_ns = median_ns(samples, || {
        for _ in 0..iters {
            eval_reference(&pipe_rules, &pipe_root);
            eval_reference(&pipe_rules, &miss_root);
        }
    });
    let low_ns = median_ns(samples, || {
        for _ in 0..iters {
            eval_lowered(&pipe_rules, &pipe_root);
            eval_lowered(&pipe_rules, &miss_root);
        }
    });
    let speedup = ref_ns as f64 / low_ns as f64;
    let floor = if smoke() { 1.0 } else { 1.5 };
    println!(
        "e11: rule-eval pipeline4 reference={ref_ns}ns lowered={low_ns}ns speedup={speedup:.2}x (floor {floor}x)"
    );
    assert!(
        speedup >= floor,
        "lowered plans must be at least {floor}x the AST interpreter on the \
         pipeline rule-eval workload, measured {speedup:.2}x"
    );

    // ---- e2e representative run with metric snapshot ---------------------
    let server =
        pipeline_server_opts(PIPE_RULES, SyncPolicy::Batch, PlanMode::RuleAtATime, false, true);
    feed_pipeline(&server, messages, PIPE_RULES);
    server.run_until_idle().expect("idle");
    let stats = server.stats();
    // Each inbox message is processed and produces one outbox message
    // (also processed), so the count is 2x the feed.
    assert!(stats.processed >= messages as u64, "{stats:?}");
    assert!(stats.plans_lowered > 0, "no plans lowered: {stats:?}");
    assert!(
        stats.ebv_short_circuits > 0,
        "existence tests never short-circuited: {stats:?}"
    );
    assert!(stats.interned_symbols > 0, "empty symbol table: {stats:?}");
    let text = server.metrics_text();
    for m in [
        "demaq_xquery_plans_lowered_total",
        "demaq_xquery_ebv_short_circuits_total",
        "demaq_xquery_interned_symbols",
    ] {
        assert!(metric_value(&text, m) > 0, "metric {m} missing:\n{text}");
    }
    demaq_bench::dump_metrics(&server, "e11_lowered_plans");

    // Trajectory entry: the lowered-vs-reference speedup, machine-readable.
    let mut report = demaq_bench::report::BenchReport::new("e11_lowered_plans", smoke());
    report
        .result("rule_eval_speedup", speedup, "x")
        .result("rule_eval_reference", ref_ns as f64, "ns")
        .result("rule_eval_lowered", low_ns as f64, "ns")
        .metric_from(&text, "demaq_xquery_plans_lowered_total")
        .metric_from(&text, "demaq_xquery_ebv_short_circuits_total")
        .metric_from(&text, "demaq_xquery_interned_symbols");
    report.write();

    let server =
        pipeline_server_opts(PIPE_RULES, SyncPolicy::Batch, PlanMode::RuleAtATime, false, false);
    feed_pipeline(&server, messages, PIPE_RULES);
    server.run_until_idle().expect("idle");
    demaq_bench::dump_metrics(&server, "e11_lowered_plans_reference");
}

criterion_group!(benches, bench_e11);
criterion_main!(benches);
