//! E12 — Sustained multi-threaded drain under full durability (ISSUE 6).
//!
//! The earlier experiments isolate one mechanism each (group commit,
//! caches, lowered plans); E12 measures the composed hot path the way a
//! deployment runs it: a two-stage rule pipeline on persistent queues
//! with `SyncPolicy::Always` (every commit fsynced, group commit
//! batching them), drained by 4 workers racing the scheduler — now with
//! causal provenance recorded for every rule enqueue and per-rule
//! wall-time attribution on.
//!
//! Measured:
//! * `drain` — wall-clock drain throughput of a pre-filled intake queue,
//!   1 vs 4 workers (elements = messages *processed*, 3 per fed message:
//!   the intake message, the enriched one, and the rule-less done one).
//! * The representative 4-worker run distills throughput, per-rule p99
//!   evaluation time, and provenance coverage into `BENCH_E12.json` at
//!   the repo root (schema `demaq-bench/v1`) — the machine-readable
//!   bench-trajectory entry the CI gate validates.
//!
//! Expected shape: 4 workers beat 1 (group commit keeps the fsync path
//! from serializing them), every drained message carries lineage, and
//! the per-rule histograms are populated for both pipeline stages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demaq::Server;
use demaq_bench::report::BenchReport;
use demaq_store::store::SyncPolicy;
use std::time::Instant;
use tempfile::TempDir;

/// Two rule stages so every fed message produces a two-edge causal chain
/// (intake → enriched → done) under per-rule attribution.
const PIPELINE: &str = r#"
    create queue intake kind basic mode persistent
    create queue enriched kind basic mode persistent
    create queue done kind basic mode persistent
    create rule enrich for intake
      if (//job) then do enqueue <enriched>{string(//job/@n)}</enriched> into enriched
    create rule finish for enriched
      if (//enriched) then do enqueue <done>{//enriched/text()}</done> into done
"#;

fn smoke() -> bool {
    std::env::var("DEMAQ_E12_SMOKE").is_ok()
}

/// First sample of `name` in Prometheus-style metrics text (0 if absent —
/// counters register lazily on first increment).
fn metric_value(text: &str, name: &str) -> f64 {
    text.lines()
        .filter(|l| l.starts_with(name))
        .filter_map(|l| l.rsplit(' ').next()?.parse().ok())
        .next()
        .unwrap_or(0.0)
}

fn messages() -> usize {
    if smoke() {
        256
    } else {
        2048
    }
}

/// A durable server: on-disk WAL, fsync on every commit.
fn build_server(dir: &TempDir) -> Server {
    Server::builder()
        .program(PIPELINE)
        .dir(dir.path())
        .sync_policy(SyncPolicy::Always)
        // The full run emits ~12k trace events (3 stages × 2048 messages,
        // enqueue + process each); the 4096 default ring dropped 8192 of
        // them, leaving no usable tail.
        .trace_capacity(32768)
        .build()
        .expect("valid program")
}

fn feed(server: &Server, n: usize) {
    for i in 0..n {
        server
            .enqueue_external("intake", &format!("<job n='{i}'/>"))
            .expect("enqueue");
    }
}

fn bench_e12(c: &mut Criterion) {
    let n = messages();
    let mut group = c.benchmark_group("e12_sustained_drain");
    group.sample_size(10);
    // Each fed message is processed three times: on intake, as the
    // enriched message, and as the (rule-less) done message.
    group.throughput(Throughput::Elements((3 * n) as u64));
    for &threads in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::new("drain", threads), &threads, |b, &threads| {
            b.iter(|| {
                let dir = TempDir::new().expect("tempdir");
                let server = build_server(&dir);
                feed(&server, n);
                server.process_all_parallel(threads).expect("drain")
            });
        });
    }
    group.finish();

    // ---- representative 4-worker run → BENCH_E12.json --------------------
    let dir = TempDir::new().expect("tempdir");
    let server = build_server(&dir);
    feed(&server, n);
    let started = Instant::now();
    let drained = server.process_all_parallel(4).expect("drain");
    let elapsed = started.elapsed();

    assert_eq!(drained, (3 * n) as u64, "the whole cascade drained");
    assert_eq!(server.queue_messages("done").expect("done").len(), n);

    // Provenance covers the whole cascade: every `done` message walks
    // back to its intake root, and every rule edge is WAL-durable.
    for m in server.queue_messages("done").expect("done") {
        let lineage = server.lineage(m.id);
        assert_eq!(lineage.ancestors.len(), 2, "done → enriched → intake");
        let edge = lineage.target.expect("indexed");
        assert_eq!(edge.rule.as_deref(), Some("finish"));
        assert!(edge.lsn.is_some(), "rule edge must be WAL-durable");
    }

    // Per-rule attribution is on for both stages.
    let profiles = server.rule_profiles();
    assert_eq!(profiles.len(), 2, "one profile per rule: {profiles:?}");
    for p in &profiles {
        assert_eq!(p.fires, n as u64, "`{}` fired per message", p.rule);
        assert_eq!(p.messages_produced, n as u64, "`{}` produced", p.rule);
        assert!(p.eval_ns_p50 <= p.eval_ns_p99);
    }

    let secs = elapsed.as_secs_f64().max(1e-9);
    let text = server.metrics_text();

    // The drain path shares payload bytes zero-copy end to end: enqueue,
    // WAL append, recovery-free reads, and rule evaluation all borrow the
    // same `Arc<str>`. Copies only happen on checkpoint materialization
    // and snapshot recovery, neither of which this workload performs.
    let copies = metric_value(&text, "demaq_store_payload_copies_total");
    assert_eq!(copies, 0.0, "drain path must not copy payload bytes");
    let overwrites = metric_value(&text, "demaq_obs_trace_overwrites_total");
    assert_eq!(overwrites, 0.0, "trace ring must be sized for the run");
    let mut report = BenchReport::new("e12_sustained_drain", smoke());
    report
        .result("drain_throughput", drained as f64 / secs, "msgs/s")
        .result("drained_messages", drained as f64, "count")
        .result("workers", 4.0, "threads")
        .result("lineage_indexed", server.provenance().len() as f64, "records");
    for p in &profiles {
        report.result(
            &format!("rule_{}_eval_p99", p.rule),
            p.eval_ns_p99 as f64,
            "ns",
        );
    }
    let stats = server.stats();
    report
        .result("processed", stats.processed as f64, "count")
        .result("enqueued", stats.enqueued as f64, "count")
        .metric_from(&text, "demaq_store_commits_total")
        .metric_from(&text, "demaq_store_group_commit_waits_total")
        .metric_from(&text, "demaq_store_apply_batches_total")
        .metric_from(&text, "demaq_store_apply_waits_total")
        .metric_from(&text, "demaq_store_payload_shared_reads_total")
        .metric_from(&text, "demaq_store_payload_copies_total")
        .metric_from(&text, "demaq_obs_trace_overwrites_total");
    report.write();
    demaq_bench::dump_metrics(&server, "e12_sustained_drain");

    println!(
        "e12: drained {drained} msgs in {elapsed:?} ({:.0} msgs/s, 4 workers, fsync-always)",
        drained as f64 / secs
    );
}

criterion_group!(benches, bench_e12);
criterion_main!(benches);
