//! E13 — Sharded multi-worker drain scaling (ISSUE 7 tentpole gate).
//!
//! E12 established the composed single-store hot path: 4 workers over one
//! WAL with fsync-always durability. Its ceiling is structural — every
//! commit serializes through one WAL pipeline. E13 measures the sharded
//! runtime that removes it: the same keyed two-stage pipeline partitioned
//! by slicing key across 1 / 2 / 4 shards, each shard a full store
//! (private WAL, slice index, doc cache) drained by its own pinned
//! workers. The placement analysis co-locates the whole
//! intake → enriched → done chain per key, so steady-state processing is
//! shard-local and the shards' group-commit pipelines overlap instead of
//! queueing behind a single fsync stream.
//!
//! Measured:
//! * `drain` — wall-clock drain throughput of a pre-filled intake queue
//!   at 1, 2, and 4 shards (4 workers per shard; the 1-shard point is
//!   E12's configuration running under the sharded runtime).
//! * Representative runs distill per-shard-count throughput and the
//!   scaling ratios into `BENCH_E13.json` (schema `demaq-bench/v1`).
//!   Target: `scaling_4v1 ≥ 2.5` on a multi-core host with independent
//!   fsync streams.
//!
//! The scaling gate is host-adaptive. Sharding converts one WAL commit
//! pipeline into N; how much that buys depends on how well the host
//! overlaps concurrent fsync streams under the same CPU budget — a
//! 1-core VM whose ext4 journal coalesces concurrent syncs tops out far
//! below N×. The bench therefore first probes the raw ceiling (N plain
//! append+fsync streams with the drain's per-commit compute mixed in)
//! and requires the engine to capture a fixed fraction of whatever the
//! probe says is available, instead of asserting a number the hardware
//! cannot produce. Both the probe and the gate land in `BENCH_E13.json`.
//!
//! Expected shape: scaling tracking the probe ceiling, zero cross-shard
//! forwards (placement keeps the hot chain local), zero payload copies,
//! and zero trace-ring overwrites (capacity sized to the workload).
//!
//! Knobs: `DEMAQ_E13_SMOKE` (256 msgs instead of 2048),
//! `DEMAQ_E13_WORKERS` (workers per shard, default 4),
//! `DEMAQ_E13_NOSYNC` (SyncPolicy::Batch — isolates the CPU ceiling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demaq::{Server, ShardedServer};
use demaq_bench::report::BenchReport;
use demaq_store::store::SyncPolicy;
use demaq_xquery::Atomic;
use std::time::Instant;
use tempfile::TempDir;

/// The E12 pipeline plus a slicing key, so the placement analysis
/// partitions the whole chain by `lane`.
const PIPELINE: &str = r#"
    create queue intake kind basic mode persistent
    create queue enriched kind basic mode persistent
    create queue done kind basic mode persistent
    create property lane as xs:integer inherited
    create slicing lanes on lane
    create rule enrich for intake
      if (//job) then do enqueue <enriched>{string(//job/@n)}</enriched> into enriched
    create rule finish for enriched
      if (//enriched) then do enqueue <done>{//enriched/text()}</done> into done
"#;

const LANES: i64 = 64;

fn workers_per_shard() -> usize {
    std::env::var("DEMAQ_E13_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn smoke() -> bool {
    std::env::var("DEMAQ_E13_SMOKE").is_ok()
}

fn messages() -> usize {
    if smoke() {
        256
    } else {
        2048
    }
}

/// A durable sharded deployment: per-shard on-disk WAL, fsync on every
/// commit, trace ring sized so the full run keeps its tail.
fn build_server(dir: &TempDir, shards: usize) -> ShardedServer {
    let sync = if std::env::var("DEMAQ_E13_NOSYNC").is_ok() {
        SyncPolicy::Batch
    } else {
        SyncPolicy::Always
    };
    Server::builder()
        .program(PIPELINE)
        .dir(dir.path())
        .sync_policy(sync)
        .trace_capacity(32768)
        .shards(shards)
        .build()
        .expect("valid program")
}

fn feed(server: &ShardedServer, n: usize) {
    for i in 0..n {
        server
            .enqueue_external_with_props(
                "intake",
                &format!("<job n='{i}'/>"),
                &[("lane".to_string(), Atomic::Int(i as i64 % LANES))],
            )
            .expect("enqueue");
    }
}

/// One timed representative drain; returns msgs/s.
fn representative(dir: &TempDir, shards: usize, n: usize) -> (ShardedServer, f64) {
    let server = build_server(dir, shards);
    feed(&server, n);
    let started = Instant::now();
    let drained = server
        .process_all_parallel(workers_per_shard())
        .expect("drain");
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(drained, (3 * n) as u64, "the whole cascade drained");
    assert_eq!(server.queue_messages("done").expect("done").len(), n);
    if std::env::var("DEMAQ_E13_DEBUG").is_ok() {
        let text = server.metrics_text();
        eprintln!("--- {shards} shard(s): {:.0} msgs/s", drained as f64 / secs);
        for m in [
            "demaq_store_commits_total",
            "demaq_store_wal_syncs_total",
            "demaq_store_group_commit_waits_total",
            "demaq_store_apply_batches_total",
            "demaq_store_apply_waits_total",
        ] {
            eprintln!("    {m} = {}", metric_value(&text, m));
        }
        let loads: Vec<usize> = (0..server.num_shards())
            .map(|s| server.shard(s).queue_messages("done").unwrap().len())
            .collect();
        eprintln!("    per-shard done: {loads:?}");
    }
    (server, drained as f64 / secs)
}

/// Raw ceiling probe: `streams` independent files, each doing
/// (≈30µs compute, append 256 B, fsync) in a loop — the drain's
/// per-commit pattern without any engine on top. Returns ops/s.
fn fsync_stream_ops(dir: &TempDir, streams: usize, iters: usize) -> f64 {
    use std::io::Write;
    let spin = |d: std::time::Duration| {
        let s = Instant::now();
        while s.elapsed() < d {
            std::hint::spin_loop();
        }
    };
    let started = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..streams {
            let path = dir.path().join(format!("probe_{w}.dat"));
            let spin = &spin;
            scope.spawn(move || {
                let mut f = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .expect("probe file");
                for _ in 0..iters {
                    spin(std::time::Duration::from_micros(30));
                    f.write_all(&[0u8; 256]).expect("probe write");
                    f.sync_data().expect("probe fsync");
                }
            });
        }
    });
    (streams * iters) as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

/// Best-of-3 probe of how much 4 independent WAL streams outperform one
/// on this host (medianish: best-of reduces the noise of a shared VM
/// disk), plus the absolute single-stream rate to spot fsync-free hosts.
fn probe_fsync_parallelism() -> (f64, f64) {
    let dir = TempDir::new().expect("probe dir");
    let iters = if smoke() { 150 } else { 300 };
    let mut best_single: f64 = 0.0;
    let mut best_quad: f64 = 0.0;
    for _ in 0..3 {
        best_single = best_single.max(fsync_stream_ops(&dir, 1, iters));
        best_quad = best_quad.max(fsync_stream_ops(&dir, 4, iters));
    }
    (best_quad / best_single, best_single)
}

/// First sample of `name` in Prometheus-style metrics text (0 if absent —
/// counters register lazily on first increment).
fn metric_value(text: &str, name: &str) -> f64 {
    text.lines()
        .filter(|l| l.starts_with(name))
        .filter_map(|l| l.rsplit(' ').next()?.parse().ok())
        .next()
        .unwrap_or(0.0)
}

fn bench_e13(c: &mut Criterion) {
    let n = messages();
    let mut group = c.benchmark_group("e13_sharded_drain");
    group.sample_size(10);
    group.throughput(Throughput::Elements((3 * n) as u64));
    for &shards in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("drain", shards), &shards, |b, &shards| {
            b.iter(|| {
                let dir = TempDir::new().expect("tempdir");
                let server = build_server(&dir, shards);
                feed(&server, n);
                server.process_all_parallel(workers_per_shard()).expect("drain")
            });
        });
    }
    group.finish();

    // ---- representative runs → BENCH_E13.json ----------------------------
    let mut throughput = std::collections::BTreeMap::new();
    let mut four_shard: Option<(TempDir, ShardedServer)> = None;
    for &shards in &[1usize, 2, 4] {
        // Fresh directory per run: shard WALs must not recover a previous
        // shard count's messages.
        let dir = TempDir::new().expect("tempdir");
        let (server, msgs_per_sec) = representative(&dir, shards, n);
        throughput.insert(shards, msgs_per_sec);
        if shards == 4 {
            four_shard = Some((dir, server));
        }
    }
    let (_dir, server) = four_shard.expect("4-shard run");

    // Behavior gates on the 4-shard deployment: the placement analysis
    // must keep the keyed chain shard-local (no forwards), every lane's
    // slice coherent on one shard, and lineage complete across the fleet.
    let text = server.metrics_text();
    let forwards = metric_value(&text, "demaq_engine_shard_forwards_total");
    assert_eq!(forwards, 0.0, "keyed chain must stay shard-local");
    let copies = metric_value(&text, "demaq_store_payload_copies_total");
    assert_eq!(copies, 0.0, "drain path must not copy payload bytes");
    let overwrites = metric_value(&text, "demaq_obs_trace_overwrites_total");
    assert_eq!(overwrites, 0.0, "trace ring must be sized for the run");
    for m in server.queue_messages("done").expect("done") {
        let lineage = server.lineage(m.id);
        assert_eq!(lineage.ancestors.len(), 2, "done → enriched → intake");
    }
    let busy_shards = (0..server.num_shards())
        .filter(|&s| !server.shard(s).queue_messages("done").unwrap().is_empty())
        .count();
    assert_eq!(busy_shards, 4, "all shards took part of the key space");

    let t1 = throughput[&1];
    let t2 = throughput[&2];
    let t4 = throughput[&4];

    // ---- host-adaptive scaling gate ---------------------------------------
    let (probe_ratio, single_stream_ops) = probe_fsync_parallelism();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as f64;
    // A host where one plain stream already clears ~20k ops/s is not
    // durability-bound (fsync is effectively free, e.g. tmpfs): sharding
    // has no WAL pipeline to parallelize there, so only require "not
    // materially slower". Otherwise demand 70% of the smaller of what
    // the probe measured and what the core count permits — on a 4-core
    // host with independent fsync streams that works out to the 2.5×
    // target, on a 1-core VM it degrades to the overlap the disk offers.
    let durability_bound = single_stream_ops < 20_000.0;
    let ceiling = probe_ratio.min(3.6).min(cores.max(1.5));
    let gate = if durability_bound {
        (0.7 * ceiling).max(1.05)
    } else {
        0.8
    };
    let scaling_4v1 = t4 / t1;
    assert!(
        scaling_4v1 >= gate,
        "4-shard scaling {scaling_4v1:.2}x under host gate {gate:.2}x \
         (probe {probe_ratio:.2}x, {cores} cores, single stream {single_stream_ops:.0} ops/s)"
    );

    let mut report = BenchReport::new("e13_sharded_drain", smoke());
    report
        .result("drain_throughput_1shard", t1, "msgs/s")
        .result("drain_throughput_2shard", t2, "msgs/s")
        .result("drain_throughput_4shard", t4, "msgs/s")
        .result("scaling_2v1", t2 / t1, "ratio")
        .result("scaling_4v1", scaling_4v1, "ratio")
        .result("fsync_parallelism_probe_4v1", probe_ratio, "ratio")
        .result("fsync_single_stream", single_stream_ops, "ops/s")
        .result("scaling_gate", gate, "ratio")
        .result("host_cores", cores, "count")
        .result("drained_messages", (3 * n) as f64, "count")
        .result("workers_per_shard", workers_per_shard() as f64, "threads")
        .result("lanes", LANES as f64, "count")
        .metric_from(&text, "demaq_store_commits_total")
        .metric_from(&text, "demaq_store_group_commit_waits_total")
        .metric_from(&text, "demaq_store_payload_shared_reads_total")
        .metric_from(&text, "demaq_store_payload_copies_total")
        .metric_from(&text, "demaq_engine_shard_forwards_total")
        .metric_from(&text, "demaq_engine_shard_ingest_errors_total")
        .metric_from(&text, "demaq_obs_trace_overwrites_total");
    report.write();

    println!(
        "e13: {n} msgs × 3 stages, fsync-always — 1 shard {t1:.0} msgs/s, \
         2 shards {t2:.0} ({:.2}×), 4 shards {t4:.0} ({:.2}×); \
         host ceiling probe {probe_ratio:.2}×, gate {gate:.2}×",
        t2 / t1,
        t4 / t1
    );
}

criterion_group!(benches, bench_e13);
criterion_main!(benches);
