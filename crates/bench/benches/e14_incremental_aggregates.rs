//! E14 — Incremental slice aggregates (ISSUE 9).
//!
//! A slicing rule whose condition aggregates over its slice used to
//! rescan all N members on every arrival: `sum(qs:slice()//v)` folded N
//! documents per message, so N arrivals cost O(N²) member visits even
//! with the E10 caches (the *fold* was linear, not the loads). The
//! aggregate registry materializes one cell per `(aggregate, slicing
//! key)` validated by the store's version clocks: an append-only arrival
//! takes the delta path (absorb exactly the new suffix), a same-version
//! re-read is a pure hit, and reset/GC force a rebuild — per-message
//! aggregate cost becomes O(1) in N.
//!
//! Measured:
//! * `aggregate_rule_{incremental,rescan}` — N arrivals into one hot
//!   slice, each followed by `run_until_idle`, so the rule's `count` +
//!   `sum` aggregates re-evaluate against the growing slice.
//! * Representative runs assert the counter shape (deltas ≈ N with each
//!   delta absorbing a 1-member suffix; rebuilds rare; membership-only
//!   `count` answered as hits) and the end-to-end wall-clock ratio:
//!   ≥ 5x over the rescan twin at N = 1024 in full mode.
//!
//! The headline `incremental_throughput` is per-message and therefore
//! comparable between smoke (N=48) and full (N=1024) runs — flatness in
//! N is the claim being gated.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demaq::Server;
use demaq_store::store::SyncPolicy;
use std::time::Instant;

/// One hot slice every message joins. The guard aggregates twice — a
/// membership-only `count` (registry fast path) and a stepped `sum`
/// (materialized cell) — and never fires, so each arrival pays exactly
/// the aggregate-read cost.
const AGG_PROGRAM: &str = r#"
    create queue parts kind basic mode persistent
    create queue alerts kind basic mode persistent
    create property rid as xs:string fixed queue parts value //@rid
    create slicing byRid on rid
    create rule watch for byRid
      if (count(qs:slice()) >= 1000000 or sum(qs:slice()//v) >= 1000000000) then
        do enqueue <overflow>{qs:slicekey()}</overflow> into alerts
"#;

fn smoke() -> bool {
    std::env::var("DEMAQ_E14_SMOKE").is_ok()
}

fn build_server(incremental: bool) -> Server {
    Server::builder()
        .program(AGG_PROGRAM)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .incremental_aggregates(incremental)
        .build()
        .expect("valid program")
}

/// N arrivals into the single slice, processing after each so the rule
/// always re-aggregates mid-growth (the O(N²) rescan shape).
fn run_feed(server: &Server, n: usize) {
    for i in 0..n {
        server
            .enqueue_external("parts", &format!("<p rid='hot'><v>{}</v></p>", i % 17))
            .expect("enqueue");
        server.run_until_idle().expect("idle");
    }
}

/// Read one unlabeled counter/gauge value from a Prometheus exposition.
fn metric_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .unwrap_or(0)
}

fn timed_feed(incremental: bool, n: usize) -> (Server, f64) {
    let server = build_server(incremental);
    let t0 = Instant::now();
    run_feed(&server, n);
    (server, t0.elapsed().as_secs_f64())
}

fn bench_e14(c: &mut Criterion) {
    let sizes: &[usize] = if smoke() { &[32] } else { &[256, 1024] };
    let mut group = c.benchmark_group("e14_incremental_aggregates");
    group.sample_size(10);

    for &n in sizes {
        group.throughput(Throughput::Elements(n as u64));
        for incremental in [true, false] {
            let label = if incremental {
                "aggregate_rule_incremental"
            } else {
                "aggregate_rule_rescan"
            };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| {
                    let server = build_server(incremental);
                    run_feed(&server, n);
                    server.stats().processed
                });
            });
        }
    }
    group.finish();

    // Representative runs with metric snapshots and the shape asserts.
    let n = if smoke() { 48 } else { 1024 };

    let (server, t_inc) = timed_feed(true, n);
    let text = server.metrics_text();
    let hits = metric_value(&text, "demaq_core_agg_hits_total");
    let deltas = metric_value(&text, "demaq_core_agg_deltas_total");
    let rebuilds = metric_value(&text, "demaq_core_agg_rebuilds_total");
    assert!(hits > 0, "membership fast path saw no hits:\n{text}");
    assert!(deltas > 0, "append-only growth must take the delta path:\n{text}");
    // Flat-in-N counter shape: every arrival's aggregate reads are
    // answered by the registry (hits + deltas + rebuilds cover all
    // reads), each delta absorbs exactly the 1-message suffix (so deltas
    // is linear in N, and total member visits ≈ N, not N²), and full
    // refolds stay rare.
    assert!(
        hits + deltas + rebuilds >= n as u64,
        "registry must answer at least one read per arrival (N={n}): \
         hits={hits} deltas={deltas} rebuilds={rebuilds}"
    );
    assert!(
        deltas <= (n + 8) as u64,
        "delta count must stay linear in N={n}, got {deltas}"
    );
    assert!(
        rebuilds <= (n / 8 + 4) as u64,
        "rebuilds must stay rare for an append-only slice, got {rebuilds}"
    );
    demaq_bench::dump_metrics(&server, "e14_incremental_aggregates");

    let (server, t_rescan) = timed_feed(false, n);
    let text = server.metrics_text();
    for name in [
        "demaq_core_agg_hits_total",
        "demaq_core_agg_deltas_total",
        "demaq_core_agg_rebuilds_total",
    ] {
        assert_eq!(
            metric_value(&text, name),
            0,
            "the rescan twin has no registry; {name} must be 0"
        );
    }
    demaq_bench::dump_metrics(&server, "e14_incremental_aggregates_rescan");

    let speedup = t_rescan / t_inc.max(1e-9);
    if !smoke() {
        assert!(
            speedup >= 5.0,
            "incremental aggregates must beat the rescan twin ≥5x at N={n}, \
             got {speedup:.2}x ({t_rescan:.3}s vs {t_inc:.3}s)"
        );
        // Per-message cost must be flat in N: quadrupling the slice may
        // not even double the per-message time (generous bound; a rescan
        // engine quadruples it).
        let (_, t_small) = timed_feed(true, n / 4);
        let per_big = t_inc / n as f64;
        let per_small = t_small / (n / 4) as f64;
        assert!(
            per_big <= per_small * 2.0,
            "per-message aggregate cost must stay flat in N: \
             {:.1}us at N={} vs {:.1}us at N={}",
            per_big * 1e6,
            n,
            per_small * 1e6,
            n / 4
        );
    }

    println!(
        "e14: N={n} hits={hits} deltas={deltas} rebuilds={rebuilds} \
         incremental={t_inc:.3}s rescan={t_rescan:.3}s speedup={speedup:.2}x"
    );

    let mut report = demaq_bench::report::BenchReport::new("e14_incremental_aggregates", smoke());
    report
        .result("slice_members", n as f64, "count")
        .result("agg_hits", hits as f64, "count")
        .result("agg_deltas", deltas as f64, "count")
        .result("agg_rebuilds", rebuilds as f64, "count")
        .result("incremental_wall_s", t_inc, "s")
        .result("rescan_wall_s", t_rescan, "s")
        .result("incremental_throughput", n as f64 / t_inc.max(1e-9), "msg/s")
        .result("speedup_vs_rescan", speedup, "x");
    report.write();
}

criterion_group!(benches, bench_e14);
criterion_main!(benches);
