//! E15 — Static retention narrowing under a long-running soak (ISSUE 10).
//!
//! A telemetry fan-in whose slicing is only ever read through
//! incrementally-maintained aggregates used to retain every member
//! forever: without a `do reset`, slice membership pins each processed
//! reading in the store, so resident bytes grow linearly with uptime
//! even though no rule will ever look at the old payloads again. The
//! liveness pass proves the slicing `AggregateOnly`, and GC folds
//! processed members into persisted base cells and purges the payloads
//! — the store footprint plateaus while every count/sum still spans the
//! entire history.
//!
//! Measured:
//! * `soak_{narrowed,full}` — R rounds of keyed readings, each round
//!   followed by `run_until_idle` + `gc()`, on the narrowed server vs
//!   the `static_retention(false)` twin.
//! * A representative soak records the resident-byte trajectory per
//!   round and asserts the shape: the narrowed footprint plateaus
//!   (second half adds almost nothing) while the full-retention twin
//!   keeps growing, and the final narrowed residency is a small
//!   fraction of the twin's. Aggregate outputs stay identical.
//!
//! The headline `soak_throughput` is per-message and flat in uptime, so
//! smoke and full runs are directly comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demaq::Server;
use demaq_store::store::SyncPolicy;
use std::time::Instant;

/// Aggregate-only fan-in: the slicing's sole reader folds `count` +
/// `sum` over the slice, and the member queue is read nowhere else —
/// exactly the shape the liveness pass narrows.
const SOAK_PROGRAM: &str = r#"
    create queue intake kind basic mode persistent
    create queue report kind basic mode persistent
    create property device as xs:string fixed queue intake value //reading/@dev
    create slicing byDevice on device
    create rule stats for byDevice
      if (qs:message()//reading) then
        do enqueue <stat dev="{qs:slicekey()}" n="{count(qs:slice())}"
                         total="{sum(qs:slice()//v)}"/> into report
"#;

const DEVICES: usize = 8;

fn smoke() -> bool {
    std::env::var("DEMAQ_E15_SMOKE").is_ok()
}

fn build_server(narrowed: bool) -> Server {
    Server::builder()
        .program(SOAK_PROGRAM)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .static_retention(narrowed)
        .build()
        .expect("valid program")
}

/// One soak round: `per_round` keyed readings, drained, then GC — the
/// maintenance cadence of a long-running node.
fn soak_round(server: &Server, round: usize, per_round: usize) {
    for i in 0..per_round {
        let n = round * per_round + i;
        server
            .enqueue_external(
                "intake",
                &format!("<reading dev='d{}'><v>{}</v></reading>", n % DEVICES, n % 17),
            )
            .expect("enqueue");
    }
    server.run_until_idle().expect("idle");
    server.gc().expect("gc");
}

/// Full soak returning the server, wall seconds, and the resident-byte
/// trajectory sampled after each round's GC.
fn soak(narrowed: bool, rounds: usize, per_round: usize) -> (Server, f64, Vec<u64>) {
    let server = build_server(narrowed);
    let t0 = Instant::now();
    let mut resident = Vec::with_capacity(rounds);
    for r in 0..rounds {
        soak_round(&server, r, per_round);
        resident.push(server.store().resident_payload_bytes());
    }
    (server, t0.elapsed().as_secs_f64(), resident)
}

/// Read one unlabeled counter/gauge value from a Prometheus exposition.
fn metric_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .unwrap_or(0)
}

fn bench_e15(c: &mut Criterion) {
    let (rounds, per_round) = if smoke() { (4, 48) } else { (8, 384) };
    let total = rounds * per_round;

    let mut group = c.benchmark_group("e15_retention_soak");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total as u64));
    for narrowed in [true, false] {
        let label = if narrowed { "soak_narrowed" } else { "soak_full" };
        group.bench_with_input(BenchmarkId::new(label, total), &total, |b, _| {
            b.iter(|| {
                let server = build_server(narrowed);
                for r in 0..rounds {
                    soak_round(&server, r, per_round);
                }
                server.stats().processed
            });
        });
    }
    group.finish();

    // Representative soaks with trajectory + metric shape asserts.
    let (nar, t_nar, res_nar) = soak(true, rounds, per_round);
    let (full, t_full, res_full) = soak(false, rounds, per_round);

    // Identical observable behavior (the differential suite proves this
    // exhaustively; the soak re-checks the cheap invariants).
    assert_eq!(nar.stats().processed, full.stats().processed);
    assert_eq!(nar.stats().errors_routed, full.stats().errors_routed);

    let text = nar.metrics_text();
    let released = metric_value(&text, "demaq_engine_retention_released_total");
    assert!(released > 0, "narrowed soak never released a member:\n{text}");
    assert_eq!(
        metric_value(&full.metrics_text(), "demaq_engine_retention_released_total"),
        0,
        "full-retention twin must not release"
    );

    // Footprint shape: the narrowed trajectory plateaus — its second
    // half adds (almost) nothing — while full retention keeps growing
    // and ends well above it.
    let (mid, last) = (res_nar[rounds / 2 - 1].max(1), *res_nar.last().unwrap());
    assert!(
        last <= mid * 2,
        "narrowed residency must plateau: {res_nar:?}"
    );
    let (fmid, flast) = (res_full[rounds / 2 - 1].max(1), *res_full.last().unwrap());
    assert!(
        flast >= fmid * 3 / 2,
        "full-retention residency should keep growing: {res_full:?}"
    );
    let ratio = flast as f64 / last.max(1) as f64;
    assert!(
        ratio >= 2.0,
        "narrowing should shed most of the resident bytes: \
         narrowed={last} full={flast} ({ratio:.2}x)"
    );

    // Narrowing must not tax the hot path: the soak includes the fold
    // work, yet stays within noise of the full-retention twin (and wins
    // once the twin's slices get long enough to slow *its* GC scans).
    let slowdown = t_nar / t_full.max(1e-9);
    assert!(
        slowdown <= 2.0,
        "narrowed soak fell behind the full-retention twin: \
         {t_nar:.3}s vs {t_full:.3}s ({slowdown:.2}x)"
    );

    demaq_bench::dump_metrics(&nar, "e15_retention_soak");
    demaq_bench::dump_metrics(&full, "e15_retention_soak_full");

    println!(
        "e15: msgs={total} released={released} resident_narrowed={last}B \
         resident_full={flast}B ratio={ratio:.2}x narrowed={t_nar:.3}s full={t_full:.3}s"
    );

    let mut report = demaq_bench::report::BenchReport::new("e15_retention_soak", smoke());
    report
        .result("soak_messages", total as f64, "count")
        .result("released_members", released as f64, "count")
        .result("resident_bytes_narrowed", last as f64, "bytes")
        .result("resident_bytes_full", flast as f64, "bytes")
        .result("resident_ratio_full_vs_narrowed", ratio, "x")
        .result("soak_throughput", total as f64 / t_nar.max(1e-9), "msg/s")
        .result("full_retention_wall_s", t_full, "s");
    report.write();
}

criterion_group!(benches, bench_e15);
criterion_main!(benches);
