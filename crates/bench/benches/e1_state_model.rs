//! E1 — Declarative message state vs. per-instance contexts (Sec. 2.1).
//!
//! Claim: "contexts … have to be kept for each active process instance,
//! which leads to scalability issues if the number of processes is large";
//! dehydration stores trade memory for serialize/parse churn. Demaq keeps
//! state *as messages* and reaches it through slices, so per-message cost
//! is flat in the number of instances.
//!
//! Workload: deliver a fixed number of correlated messages spread over N
//! process instances, N ∈ {64, 512, 4096}. The baseline keeps at most 256
//! hydrated contexts (the dehydration cap); Demaq runs its slicing engine.
//! Expected shape: the baseline's cost per message grows sharply once
//! N exceeds the hydration cap (every delivery rehydrates); Demaq stays
//! roughly flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demaq_baselines::ContextEngine;
use demaq_bench::{correlate_server, feed_correlate};
use demaq_store::LockGranularity;
use tempfile::TempDir;

const MESSAGES: usize = 2048;
const HYDRATION_CAP: usize = 256;

fn bench_e1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_state_model");
    group.sample_size(10);
    group.throughput(Throughput::Elements(MESSAGES as u64));

    for &instances in &[64usize, 512, 4096] {
        group.bench_with_input(
            BenchmarkId::new("demaq_slices", instances),
            &instances,
            |b, &n| {
                b.iter(|| {
                    let server = correlate_server(LockGranularity::Slice);
                    feed_correlate(&server, MESSAGES, n);
                    server.run_until_idle().expect("run");
                    server.stats().processed
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bpel_contexts", instances),
            &instances,
            |b, &n| {
                b.iter(|| {
                    let dir = TempDir::new().expect("tempdir");
                    let mut engine = ContextEngine::new(dir.path(), HYDRATION_CAP).expect("engine");
                    for i in 0..MESSAGES {
                        let inst = format!("i{}", i % n);
                        engine
                            .deliver(&inst, &format!("<event><n>{i}</n></event>"))
                            .expect("deliver");
                    }
                    engine.stats.messages
                });
            },
        );
    }
    group.finish();

    // One representative run's internal counters/latencies, dumped next
    // to the criterion timings.
    let server = correlate_server(LockGranularity::Slice);
    feed_correlate(&server, MESSAGES, 512);
    server.run_until_idle().expect("run");
    demaq_bench::dump_metrics(&server, "e1_state_model");
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
