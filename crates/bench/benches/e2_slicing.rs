//! E2 — Materialized slices vs. merged slice queries (Sec. 4.3).
//!
//! Claim: "similar to the materialized views concept in RDBMSs, it is
//! possible to maintain a physical representation of the slices, for
//! example using a B-Tree indexed by the slice key", instead of
//! "evaluat[ing] a complex query for every incoming message".
//!
//! Workload: a store with Q messages spread over 64 customers across two
//! queues; look up one customer's slice. `index` uses the slice index;
//! `scan` merges the definition into a query (parse every message,
//! evaluate the key path, compare). Expected shape: the index is O(slice
//! size) and roughly flat in Q; the scan grows linearly with Q —
//! orders-of-magnitude gap at the top end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use demaq_baselines::slice_scan::scan_slice_members_src;
use demaq_store::{MessageStore, PropValue, QueueMode, StoreOptions};
use tempfile::TempDir;

const CUSTOMERS: usize = 64;

fn build_store(messages: usize) -> (TempDir, MessageStore) {
    let dir = TempDir::new().expect("tempdir");
    let mut opts = StoreOptions::new(dir.path());
    opts.sync = demaq_store::store::SyncPolicy::Batch;
    let store = MessageStore::open(opts).expect("open");
    store
        .create_queue("orders", QueueMode::Persistent, 0)
        .expect("queue");
    store
        .create_queue("bills", QueueMode::Persistent, 0)
        .expect("queue");
    for i in 0..messages {
        let customer = i % CUSTOMERS;
        let queue = if i % 2 == 0 { "orders" } else { "bills" };
        let txn = store.begin();
        let id = store
            .enqueue(
                txn,
                queue,
                format!("<doc><customerID>{customer}</customerID><payload>{i}</payload></doc>").into(),
                vec![],
                0,
            )
            .expect("enqueue");
        store
            .slice_add(txn, "byCustomer", PropValue::Str(customer.to_string()), id)
            .expect("slice");
        store.commit(txn).expect("commit");
    }
    (dir, store)
}

fn bench_e2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_slicing");
    group.sample_size(10);
    for &q in &[256usize, 2048, 16384] {
        let (_dir, store) = build_store(q);
        let key = PropValue::Str("7".into());
        group.bench_with_input(BenchmarkId::new("index", q), &q, |b, _| {
            b.iter(|| store.slice_members("byCustomer", &key));
        });
        group.bench_with_input(BenchmarkId::new("scan", q), &q, |b, _| {
            b.iter(|| {
                scan_slice_members_src(&store, &["orders", "bills"], "string(//customerID)", &key)
            });
        });
        // Sanity: both strategies agree.
        assert_eq!(
            store.slice_members("byCustomer", &key),
            scan_slice_members_src(&store, &["orders", "bills"], "string(//customerID)", &key)
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
