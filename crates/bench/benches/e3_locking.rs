//! E3 — Slice-granularity locking vs. whole-queue locks (Sec. 4.3).
//!
//! Claim: "slices … form a natural new granularity … By locking just the
//! affected slices, full serializability of the individual
//! message-processing transactions can be guaranteed without locking whole
//! queues."
//!
//! **Measurement note.** This harness runs on whatever CPU budget the host
//! grants; on a single-core container (this reproduction's CI environment
//! reports `available_parallelism = 1`) wall-clock *scaling* with worker
//! threads is physically impossible for either configuration. The
//! granularity claim is therefore measured by its direct observable —
//! **lock contention**: the number of acquisitions that had to block.
//! Queue-exclusive locking makes almost every concurrent transaction block
//! on the single work queue; slice locking blocks only when two workers
//! hit the *same* slice. On a multi-core host the blocked-acquisition gap
//! is exactly what turns into the throughput gap. A Criterion timing group
//! is included for completeness.
//!
//! Workload: 384 messages over 32 slices; the slicing rule aggregates its
//! slice's content (real per-transaction work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demaq::Server;
use demaq_store::store::SyncPolicy;
use demaq_store::LockGranularity;
use std::time::{Duration, Instant};

const MESSAGES: usize = 384;
const SLICES: usize = 32;

fn build_with(granularity: LockGranularity, sync: SyncPolicy) -> Server {
    let server = Server::builder()
        .program(
            r#"
            create queue work kind basic mode persistent
            create queue alerts kind basic mode persistent
            create property instance as xs:string fixed queue work value //@instance
            create slicing byInstance on instance
            create rule watch for byInstance
              if (sum(for $e in qs:slice()//n return number($e)) >= 100000000) then
                do enqueue <overflow>{qs:slicekey()}</overflow> into alerts
            "#,
        )
        .in_memory()
        .sync_policy(sync)
        .lock_granularity(granularity)
        .build()
        .expect("valid program");
    for i in 0..MESSAGES {
        let inst = i % SLICES;
        server
            .enqueue_external(
                "work",
                &format!("<event instance='i{inst}'><n>{i}</n></event>"),
            )
            .expect("enqueue");
    }
    server
}

/// The primary E3 table: blocked lock acquisitions per configuration.
fn contention_report() {
    // Durable commits (fsync inside the lock hold) model the paper's
    // transactional message store: every blocked acquisition below is a
    // stall for the whole commit latency.
    println!("\n--- E3 lock contention (blocked acquisitions, {MESSAGES} msgs / {SLICES} slices, fsync commits) ---");
    println!(
        "{:>8} {:>14} {:>14}",
        "workers", "queue locks", "slice locks"
    );
    for &threads in &[1usize, 2, 4, 8] {
        let mut cells = Vec::new();
        for granularity in [LockGranularity::Queue, LockGranularity::Slice] {
            let server = build_with(granularity, SyncPolicy::Always);
            let done = server.process_all_parallel(threads).expect("run");
            assert_eq!(done, MESSAGES as u64);
            cells.push(server.store().locks.blocked_acquisitions());
        }
        println!("{:>8} {:>14} {:>14}", threads, cells[0], cells[1]);
    }
    println!(
        "(host parallelism: {:?}; on a single core the wall-clock columns below \
         cannot separate — the blocked counts are the claim's observable)\n",
        std::thread::available_parallelism()
    );
}

fn bench_e3(c: &mut Criterion) {
    contention_report();
    let mut group = c.benchmark_group("e3_locking");
    group.sample_size(10);
    group.throughput(Throughput::Elements(MESSAGES as u64));

    for &threads in &[1usize, 4] {
        for (label, granularity) in [
            ("queue_locks", LockGranularity::Queue),
            ("slice_locks", LockGranularity::Slice),
        ] {
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let server = build_with(granularity, SyncPolicy::Batch);
                        let t = Instant::now();
                        let done = server.process_all_parallel(threads).expect("parallel run");
                        total += t.elapsed();
                        assert_eq!(done, MESSAGES as u64);
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
