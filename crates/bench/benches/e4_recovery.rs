//! E4 — Append-only logging & recovery (Sec. 4.1).
//!
//! Claims: (a) "our append-only approach for message queues simplifies
//! logging and recovery because there are fewer in-place updates";
//! (b) "our declarative mechanism for specifying message retention frees
//! the system from the need to fully log message deletions — after a
//! crash, the decision to delete certain messages can be reached without
//! analyzing the log."
//!
//! Measured: (1) recovery (reopen) time after M persistent messages, with
//! and without a checkpoint — recovery replays the logical redo log;
//! (2) the *log volume* of the append-only design vs. an update-in-place
//! baseline that must write before/after images of a state record per
//! operation (modelled by the BPEL context engine's serialization bytes);
//! (3) GC after crash needs no log analysis (asserted, timed).
//!
//! Expected shape: log bytes per message are ~constant for Demaq and grow
//! with context size for the baseline; checkpointed recovery is near-flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use demaq_baselines::ContextEngine;
use demaq_store::{MessageStore, PropValue, QueueMode, StoreOptions};
use tempfile::TempDir;

fn populate(dir: &TempDir, messages: usize, checkpoint: bool) -> u64 {
    let store = MessageStore::open(StoreOptions::new(dir.path())).expect("open");
    store
        .create_queue("q", QueueMode::Persistent, 0)
        .expect("queue");
    for i in 0..messages {
        let txn = store.begin();
        let id = store
            .enqueue(
                txn,
                "q",
                format!("<order><n>{i}</n><body>payload {i}</body></order>").into(),
                vec![],
                0,
            )
            .expect("enqueue");
        store
            .slice_add(txn, "s", PropValue::Int((i % 10) as i64), id)
            .expect("slice");
        store.commit(txn).expect("commit");
    }
    if checkpoint {
        store.checkpoint().expect("checkpoint");
    }
    store.wal_bytes_logged()
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_recovery");
    group.sample_size(10);
    for &m in &[200usize, 1000, 4000] {
        for (label, ckpt) in [("replay_log", false), ("from_checkpoint", true)] {
            let dir = TempDir::new().expect("tempdir");
            populate(&dir, m, ckpt);
            group.bench_with_input(BenchmarkId::new(label, m), &m, |b, &m| {
                b.iter(|| {
                    let store = MessageStore::open(StoreOptions::new(dir.path())).expect("recover");
                    assert_eq!(store.message_count(), m);
                    store.message_count()
                });
            });
        }
    }
    group.finish();
}

/// Not a timing benchmark: print the log-volume comparison table that
/// EXPERIMENTS.md records (append-only logical log vs. state-image churn).
fn log_volume_report() {
    println!("\n--- E4 log volume (bytes written per message) ---");
    println!(
        "{:>10} {:>18} {:>24}",
        "messages", "demaq WAL B/msg", "context-image B/msg"
    );
    for &m in &[200usize, 1000, 4000] {
        let dir = TempDir::new().expect("tempdir");
        let wal_bytes = populate(&dir, m, false);

        // Update-in-place baseline: a BPEL-ish engine that persists the
        // accumulated instance state on every eviction; with a small cap
        // it effectively rewrites state images continually.
        let cdir = TempDir::new().expect("tempdir");
        let mut eng = ContextEngine::new(cdir.path(), 8).expect("engine");
        for i in 0..m {
            eng.deliver(
                &format!("i{}", i % 64),
                &format!("<order><n>{i}</n><body>payload {i}</body></order>"),
            )
            .expect("deliver");
        }
        println!(
            "{:>10} {:>18.1} {:>24.1}",
            m,
            wal_bytes as f64 / m as f64,
            eng.stats.bytes_serialized as f64 / m as f64
        );
    }

    // Deletion without log analysis: purge, crash, recover, re-purge.
    let dir = TempDir::new().expect("tempdir");
    {
        let store = MessageStore::open(StoreOptions::new(dir.path())).expect("open");
        store
            .create_queue("q", QueueMode::Persistent, 0)
            .expect("queue");
        for i in 0..500 {
            let txn = store.begin();
            let id = store
                .enqueue(txn, "q", format!("<m>{i}</m>").into(), vec![], 0)
                .expect("enq");
            store.mark_processed(txn, id).expect("mark");
            store.commit(txn).expect("commit");
        }
        let wal_before = store.wal_bytes_logged();
        let purged = store.gc().expect("gc");
        let wal_after = store.wal_bytes_logged();
        println!(
            "\nGC purged {purged} messages writing {} log bytes (deletions are never logged)",
            wal_after - wal_before
        );
        assert_eq!(wal_after, wal_before);
    }
    let t = std::time::Instant::now();
    let store = MessageStore::open(StoreOptions::new(dir.path())).expect("recover");
    let re_purged = store.gc().expect("gc");
    println!(
        "post-crash GC re-derived {re_purged} deletions in {:?} without reading the log\n",
        t.elapsed()
    );
}

fn bench_e4(c: &mut Criterion) {
    log_volume_report();
    bench_recovery(c);
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
