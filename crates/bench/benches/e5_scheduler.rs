//! E5 — Priority scheduling (Sec. 3.1 / 4.4.2).
//!
//! Claim: "a message in a high priority queue may be processed before
//! another one stored in a queue with a lower priority, even if it has
//! been created more recently."
//!
//! Measured: (1) the *rank distribution* — with a mixed backlog of
//! high-priority and bulk messages, after how many processing steps is the
//! whole high-priority class drained, with and without priorities
//! (printed once as the table EXPERIMENTS.md records); (2) scheduler
//! overhead — throughput of a mixed backlog with priorities on vs. all
//! priorities equal (the priority heap must not cost noticeable time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demaq::Server;
use demaq_store::store::SyncPolicy;

const BULK: usize = 900;
const URGENT: usize = 100;

fn build(priorities: bool) -> Server {
    let (hp, lp) = if priorities { (10, 0) } else { (0, 0) };
    let program = format!(
        r#"
        create queue urgent kind basic mode persistent priority {hp}
        create queue bulk kind basic mode persistent priority {lp}
        create queue done kind basic mode persistent
        create rule u for urgent if (//m) then do enqueue <u/> into done
        create rule b for bulk if (//m) then do enqueue <b/> into done
        "#
    );
    Server::builder()
        .program(&program)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()
        .expect("valid program")
}

fn feed(server: &Server) {
    // Interleave: urgent messages arrive late, scattered through the bulk.
    for i in 0..BULK {
        server.enqueue_external("bulk", "<m/>").expect("enqueue");
        if i % (BULK / URGENT) == BULK / URGENT - 1 {
            server.enqueue_external("urgent", "<m/>").expect("enqueue");
        }
    }
}

/// Steps until every urgent message has been processed.
fn urgent_drain_rank(server: &Server) -> usize {
    let mut steps = 0usize;
    loop {
        if !server.step().expect("step") {
            break;
        }
        steps += 1;
        let done: usize = server
            .queue_bodies("done")
            .expect("read")
            .iter()
            .filter(|b| b.as_str() == "<u/>")
            .count();
        if done == URGENT {
            return steps;
        }
    }
    steps
}

fn rank_report() {
    println!("\n--- E5 urgent-class drain rank (steps until all {URGENT} urgent done) ---");
    for (label, prio) in [("priorities on", true), ("priorities off", false)] {
        let server = build(prio);
        feed(&server);
        let rank = urgent_drain_rank(&server);
        println!("{label:>16}: {rank:>5} of {} total steps", BULK + URGENT);
    }
    println!();
}

fn bench_e5(c: &mut Criterion) {
    rank_report();
    let mut group = c.benchmark_group("e5_scheduler");
    group.sample_size(10);
    group.throughput(Throughput::Elements((BULK + URGENT) as u64));
    for (label, prio) in [("with_priorities", true), ("uniform", false)] {
        group.bench_with_input(BenchmarkId::new(label, BULK + URGENT), &prio, |b, &prio| {
            b.iter(|| {
                let server = build(prio);
                feed(&server);
                server.run_until_idle().expect("run")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
