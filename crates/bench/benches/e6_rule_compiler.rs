//! E6 — Rule compiler: merged canonical plans & trigger pre-filtering
//! (Sec. 4.4.1).
//!
//! Claim: "the rule bodies are combined into a single query by
//! concatenating all pending actions into a single sequence. The query is
//! then compiled into an execution plan that is executed every time a
//! message arrives in that queue. A variety of existing techniques can be
//! leveraged …, including XML filtering."
//!
//! Workload: R rules on one queue, each triggered by a distinct root
//! element; each message matches exactly one rule. Configurations:
//! * `rule_at_a_time` — every rule evaluated separately, with the
//!   compiler's trigger pre-filter (the XML-filtering stand-in) skipping
//!   rules whose required element is absent;
//! * `merged_plan` — the canonical single plan concatenating all bodies
//!   (no pre-filter possible: the merged query always runs whole).
//!
//! Expected shape: for selective rule sets the filter makes rule-at-a-time
//! scale sub-linearly in R, while the merged plan pays for every rule body
//! on every message; with few rules the merged plan's lower per-rule
//! overhead wins. The crossover is the interesting artifact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demaq::engine::PlanMode;
use demaq_bench::{feed_pipeline, pipeline_server};
use demaq_store::store::SyncPolicy;

const MESSAGES: usize = 256;

fn bench_e6(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_rule_compiler");
    group.sample_size(10);
    group.throughput(Throughput::Elements(MESSAGES as u64));
    for &rules in &[1usize, 4, 16, 32] {
        for (label, mode) in [
            ("rule_at_a_time", PlanMode::RuleAtATime),
            ("merged_plan", PlanMode::Merged),
        ] {
            group.bench_with_input(BenchmarkId::new(label, rules), &rules, |b, &rules| {
                b.iter(|| {
                    let server = pipeline_server(rules, SyncPolicy::Batch, mode, true);
                    feed_pipeline(&server, MESSAGES, rules);
                    server.run_until_idle().expect("run");
                    let stats = server.stats();
                    assert_eq!(
                        server.queue_bodies("outbox").expect("read").len(),
                        MESSAGES,
                        "exactly one rule fires per message"
                    );
                    stats.rules_evaluated
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
