//! E7 — Transactional pipeline throughput (Sec. 2.1.1 / 3.1).
//!
//! The paper's queues come in persistent and transient modes: "the
//! persistent queue mode guarantees that in case of a system crash,
//! messages are not lost … transient queues may be used in those parts of
//! an application that tolerate data loss." Persistence costs WAL writes
//! and (optionally) an fsync per commit; group commit amortizes the sync.
//!
//! Workload: the E6 pipeline with 4 rules. Configurations:
//! * `transient` — no logging at all,
//! * `persistent_group_commit` — logical logging, fsync at sync points,
//! * `persistent_fsync_each` — durability on every commit.
//!
//! Expected shape: transient > group-commit >> fsync-per-commit, with the
//! fsync gap dominated by device sync latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demaq::engine::PlanMode;
use demaq_bench::{feed_pipeline, pipeline_server};
use demaq_store::store::SyncPolicy;

const RULES: usize = 4;

fn bench_e7(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_throughput");
    group.sample_size(10);

    let configs: &[(&str, SyncPolicy, bool)] = &[
        ("transient", SyncPolicy::Batch, false),
        ("persistent_group_commit", SyncPolicy::Batch, true),
        ("persistent_fsync_each", SyncPolicy::Always, true),
    ];
    for &messages in &[64usize, 256] {
        group.throughput(Throughput::Elements(messages as u64));
        for &(label, sync, persistent) in configs {
            group.bench_with_input(
                BenchmarkId::new(label, messages),
                &messages,
                |b, &messages| {
                    b.iter(|| {
                        let server =
                            pipeline_server(RULES, sync, PlanMode::RuleAtATime, persistent);
                        feed_pipeline(&server, messages, RULES);
                        server.run_until_idle().expect("run");
                        if persistent {
                            server.store().sync().expect("group-commit boundary");
                        }
                        server.stats().processed
                    });
                },
            );
        }
    }
    group.finish();

    // One representative run's internal counters/latencies, dumped next
    // to the criterion timings.
    let server = pipeline_server(RULES, SyncPolicy::Batch, PlanMode::RuleAtATime, true);
    feed_pipeline(&server, 256, RULES);
    server.run_until_idle().expect("run");
    server.store().sync().expect("group-commit boundary");
    demaq_bench::dump_metrics(&server, "e7_throughput");
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
