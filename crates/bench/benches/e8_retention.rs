//! E8 — Declarative retention vs. explicit deletion (Sec. 2.3.3).
//!
//! Claim: with explicit deletion, "the multiple retention requirements
//! cannot be easily combined. In particular, the order in which the three
//! conditions for safe message deletion become true varies from order to
//! order. Thus, all modules would need to know about the message retention
//! policy of the other parts of the application." Demaq couples retention
//! to slice membership: each department resets its own slice; the GC does
//! the rest.
//!
//! Workload: the paper's procurement retention scenario — every order is
//! needed by packaging, finance, and operations research, whose release
//! order varies per order. Measured: wall time for N orders through both
//! designs; the baseline additionally reports its coordination calls, and
//! a variant with one forgetful module demonstrates the leak (printed for
//! EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demaq::Server;
use demaq_baselines::ExplicitDeleteStore;
use demaq_store::store::SyncPolicy;

const PROGRAM: &str = r#"
    create queue orders kind basic mode persistent
    create queue events kind basic mode persistent
    create property oid as xs:string fixed
        queue orders value //@id
        queue events value //@oid
    create slicing packaging on oid
    create slicing finance on oid
    create slicing research on oid
    (: Each department resets its slice when its own completion event
       arrives — no department knows about the others. :)
    create rule packagingDone for packaging
      if (qs:message()/picked) then do reset packaging key qs:slicekey()
    create rule financeDone for finance
      if (qs:message()/paid) then do reset finance key qs:slicekey()
    create rule researchDone for research
      if (qs:message()/monthEnd) then do reset research key qs:slicekey()
"#;

/// Per-order permutation of the three completion events.
fn event_order(i: usize) -> [&'static str; 3] {
    match i % 3 {
        0 => ["picked", "paid", "monthEnd"],
        1 => ["paid", "monthEnd", "picked"],
        _ => ["monthEnd", "picked", "paid"],
    }
}

fn run_demaq(orders: usize) -> usize {
    let server = Server::builder()
        .program(PROGRAM)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()
        .expect("valid");
    for i in 0..orders {
        server
            .enqueue_external("orders", &format!("<order id='o{i}'/>"))
            .expect("enq");
        for ev in event_order(i) {
            server
                .enqueue_external("events", &format!("<{ev} oid='o{i}'/>"))
                .expect("enq");
        }
    }
    server.run_until_idle().expect("run");
    server.gc().expect("gc")
}

fn run_explicit(orders: usize, forgetful: bool) -> (usize, usize) {
    let mut store = ExplicitDeleteStore::new();
    for i in 0..orders {
        let id = store.insert(
            format!("<order id='o{i}'/>"),
            &["packaging", "finance", "research"],
        );
        for (k, ev) in event_order(i).iter().enumerate() {
            let module: &'static str = match *ev {
                "picked" => "packaging",
                "paid" => "finance",
                _ => "research",
            };
            store.release(id, module);
            // Defensive coordination: every module attempts the delete,
            // except the forgetful variant's last module.
            if !(forgetful && k == 2) {
                store.try_delete(id);
            }
        }
    }
    (store.live(), store.leaked())
}

fn leak_report() {
    println!("\n--- E8 correctness: forgetful module ---");
    let (live, leaked) = run_explicit(300, true);
    println!("explicit deletion, one module forgets try_delete: {live} live, {leaked} leaked");
    let (live, leaked) = run_explicit(300, false);
    println!("explicit deletion, disciplined modules:          {live} live, {leaked} leaked");
    println!("demaq slicing GC purges everything regardless of release order\n");
}

fn bench_e8(c: &mut Criterion) {
    leak_report();
    let mut group = c.benchmark_group("e8_retention");
    group.sample_size(10);
    for &orders in &[50usize, 200] {
        group.throughput(Throughput::Elements(orders as u64));
        group.bench_with_input(
            BenchmarkId::new("demaq_slices", orders),
            &orders,
            |b, &n| {
                b.iter(|| {
                    let purged = run_demaq(n);
                    assert_eq!(purged, n * 4, "order + 3 events per order all purged");
                    purged
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("explicit_delete", orders),
            &orders,
            |b, &n| {
                b.iter(|| {
                    let (live, leaked) = run_explicit(n, false);
                    assert_eq!((live, leaked), (0, 0));
                    live
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
