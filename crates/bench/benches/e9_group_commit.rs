//! E9 — Group commit vs. fsync-per-commit (Sec. 2.3 execution model).
//!
//! The paper runs many message transactions concurrently against
//! persistent queues; each needs its commit record durable before the
//! transaction is acknowledged. With one fsync per commit under the WAL
//! append mutex, N workers serialize on N device syncs. The group-commit
//! coordinator lets concurrent committers share a single `sync_data`
//! (leader/follower, fsync outside the append mutex), so the fsync-bound
//! path scales with the batch size instead of the commit count.
//!
//! Measured: multi-threaded commit throughput on a shared store under
//! `SyncPolicy::Always` for
//! * `fsync_each` — `group_commit_max_batch = 1` (the pre-group-commit
//!   baseline: flush + fsync per commit, serialized), and
//! * `group_commit` — default batching (max_batch 64, no artificial
//!   window: commits arriving during an in-flight fsync share the next).
//!
//! Expected shape: near parity at 1 thread; ≥ 2x for group commit at
//! 4 threads (fsync-bound), with `demaq_store_group_commit_batch_size`
//! visible in the metrics dump.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demaq_obs::Obs;
use demaq_store::{MessageStore, PropValue, QueueMode, StoreOptions, SyncPolicy};
use std::sync::Arc;
use tempfile::TempDir;

/// Commits per thread per iteration (small payload, fsync-dominated).
fn commits_per_thread() -> usize {
    if std::env::var("DEMAQ_E9_SMOKE").is_ok() {
        8
    } else {
        32
    }
}

fn open_store(dir: &TempDir, max_batch: usize, obs: Option<Arc<Obs>>) -> Arc<MessageStore> {
    let mut opts = StoreOptions::new(dir.path());
    opts.sync = SyncPolicy::Always;
    opts.group_commit_max_batch = max_batch;
    opts.obs = obs;
    let store = Arc::new(MessageStore::open(opts).expect("open"));
    store
        .create_queue("q", QueueMode::Persistent, 0)
        .expect("queue");
    store
}

/// `threads` workers each run `per_thread` enqueue+slice+commit
/// transactions against one shared store.
fn run_workload(store: &Arc<MessageStore>, threads: usize, per_thread: usize) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let store = Arc::clone(store);
            s.spawn(move || {
                for i in 0..per_thread {
                    let txn = store.begin();
                    let id = store
                        .enqueue(txn, "q", format!("<m t='{t}' n='{i}'/>").into(), vec![], 0)
                        .expect("enqueue");
                    store
                        .slice_add(txn, "s", PropValue::Int((i % 8) as i64), id)
                        .expect("slice");
                    store.commit(txn).expect("commit");
                }
            });
        }
    });
}

fn bench_e9(c: &mut Criterion) {
    let per_thread = commits_per_thread();
    let mut group = c.benchmark_group("e9_group_commit");
    group.sample_size(10);

    let configs: &[(&str, usize)] = &[("fsync_each", 1), ("group_commit", 64)];
    for &threads in &[1usize, 4] {
        group.throughput(Throughput::Elements((threads * per_thread) as u64));
        for &(label, max_batch) in configs {
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter(|| {
                    let dir = TempDir::new().expect("tempdir");
                    let store = open_store(&dir, max_batch, None);
                    run_workload(&store, threads, per_thread);
                    store.message_count()
                });
            });
        }
    }
    group.finish();

    // One representative group-commit run with an attached registry, so
    // the batch-size histogram and sync counters land in the dump — and
    // its headline numbers in BENCH_E9.json (schema demaq-bench/v1).
    let obs = Obs::new();
    let dir = TempDir::new().expect("tempdir");
    let store = open_store(&dir, 64, Some(Arc::clone(&obs)));
    let commits = 4 * per_thread.max(32);
    let started = std::time::Instant::now();
    run_workload(&store, 4, per_thread.max(32));
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    demaq_bench::dump_registry(&obs.registry, "e9_group_commit");

    let text = obs.registry.render_text();
    let mut report = demaq_bench::report::BenchReport::new(
        "e9_group_commit",
        std::env::var("DEMAQ_E9_SMOKE").is_ok(),
    );
    report
        .result("commit_throughput", commits as f64 / secs, "commits/s")
        .result("commits", commits as f64, "count")
        .result("workers", 4.0, "threads")
        .metric_from(&text, "demaq_store_commits_total")
        .metric_from(&text, "demaq_store_group_commit_waits_total");
    report.write();
}

criterion_group!(benches, bench_e9);
criterion_main!(benches);
