//! `bench-check` — validate the machine-readable bench trajectory.
//!
//! ```text
//! bench-check [--require e9,e10,e11,e12]
//!             [--baseline FILE --min-ratio R [--headline NAME]] FILE...
//! ```
//!
//! Validates every `BENCH_E*.json` argument against the
//! `demaq-bench/v1` schema (see `demaq_bench::report`). With
//! `--require`, additionally fails unless each listed experiment number
//! is covered by a valid report among the inputs — the CI gate that a
//! bench which ran also emitted its trajectory entry. A missing or
//! unreadable file is a failure, not a skip: a bench that ran without
//! writing its report is exactly the regression this tool exists to
//! catch.
//!
//! With `--baseline`, the input covering the baseline's experiment is
//! compared against it on the headline result (`drain_throughput` unless
//! `--headline` overrides): the run fails if `candidate / baseline <
//! min-ratio` — the CI perf gate against the committed trajectory entry.
//! The comparison is reported with both modes, since a smoke candidate
//! is routinely gated against a full-mode committed entry (pick the
//! ratio accordingly).
//!
//! Exit status: 0 all valid (and required experiments covered, and the
//! baseline ratio held), 1 otherwise, 2 on usage errors.

use demaq_bench::report;
use std::collections::BTreeSet;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut required: BTreeSet<String> = BTreeSet::new();
    let mut paths: Vec<String> = Vec::new();
    let mut baseline: Option<String> = None;
    let mut min_ratio: Option<f64> = None;
    let mut headline = "drain_throughput".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require" => {
                let Some(list) = args.next() else {
                    eprintln!("bench-check: --require expects a comma-separated list (e9,e12)");
                    return ExitCode::from(2);
                };
                required.extend(list.split(',').map(|s| s.trim().to_string()));
            }
            "--baseline" => {
                let Some(path) = args.next() else {
                    eprintln!("bench-check: --baseline expects a BENCH_E*.json path");
                    return ExitCode::from(2);
                };
                baseline = Some(path);
            }
            "--min-ratio" => {
                let ratio = args.next().and_then(|v| v.parse::<f64>().ok());
                let Some(ratio) = ratio.filter(|r| r.is_finite() && *r > 0.0) else {
                    eprintln!("bench-check: --min-ratio expects a positive number (e.g. 0.8)");
                    return ExitCode::from(2);
                };
                min_ratio = Some(ratio);
            }
            "--headline" => {
                let Some(name) = args.next() else {
                    eprintln!("bench-check: --headline expects a result name");
                    return ExitCode::from(2);
                };
                headline = name;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench-check [--require e9,e10,...] \
                     [--baseline FILE --min-ratio R [--headline NAME]] FILE...\n\
                     Validates BENCH_E*.json reports against the demaq-bench/v1 schema;\n\
                     with --baseline, gates the matching input's headline result against it."
                );
                return ExitCode::SUCCESS;
            }
            p if !p.starts_with('-') => paths.push(p.to_string()),
            other => {
                eprintln!("bench-check: unknown option {other}");
                return ExitCode::from(2);
            }
        }
    }
    if baseline.is_some() != min_ratio.is_some() {
        eprintln!("bench-check: --baseline and --min-ratio must be used together");
        return ExitCode::from(2);
    }
    if paths.is_empty() {
        eprintln!("bench-check: no input files");
        return ExitCode::from(2);
    }

    let mut failed = false;
    let mut covered: BTreeSet<String> = BTreeSet::new();
    let mut valid: Vec<(String, String, report::ReportSummary)> = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-check: FAIL {path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match report::validate(&text) {
            Ok(summary) => {
                // The experiment's `e<digits>` prefix is its coverage key.
                let prefix = summary.experiment.split('_').next().unwrap_or_default();
                covered.insert(prefix.to_string());
                println!(
                    "bench-check: ok {path}: {} ({}, {} result(s))",
                    summary.experiment, summary.mode, summary.results
                );
                valid.push((path.clone(), text, summary));
            }
            Err(e) => {
                eprintln!("bench-check: FAIL {path}: {e}");
                failed = true;
            }
        }
    }

    if let (Some(base_path), Some(ratio)) = (&baseline, min_ratio) {
        match check_baseline(base_path, ratio, &headline, &valid) {
            Ok(line) => println!("bench-check: {line}"),
            Err(e) => {
                eprintln!("bench-check: FAIL {e}");
                failed = true;
            }
        }
    }

    for want in &required {
        if !covered.contains(want) {
            eprintln!(
                "bench-check: FAIL required experiment `{want}` has no valid report \
                 (the bench ran without emitting its BENCH_E*.json)"
            );
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Gate the input covering the baseline's experiment against the
/// baseline's headline result. Returns the success line to print, or the
/// failure description.
fn check_baseline(
    base_path: &str,
    min_ratio: f64,
    headline: &str,
    valid: &[(String, String, report::ReportSummary)],
) -> Result<String, String> {
    let base_text = std::fs::read_to_string(base_path)
        .map_err(|e| format!("baseline {base_path}: cannot read: {e}"))?;
    let base = report::validate(&base_text).map_err(|e| format!("baseline {base_path}: {e}"))?;
    let base_value = report::result_value(&base_text, headline)
        .map_err(|e| format!("baseline {base_path}: {e}"))?;
    if base_value <= 0.0 {
        return Err(format!(
            "baseline {base_path}: `{headline}` is {base_value}, cannot gate against it"
        ));
    }
    let prefix = base.experiment.split('_').next().unwrap_or_default();
    let candidate = valid
        .iter()
        .find(|(_, _, s)| s.experiment.split('_').next().unwrap_or_default() == prefix)
        .ok_or(format!(
            "no valid input covers baseline experiment `{}` — nothing to gate",
            base.experiment
        ))?;
    let (cand_path, cand_text, cand) = candidate;
    let cand_value = report::result_value(cand_text, headline)
        .map_err(|e| format!("candidate {cand_path}: {e}"))?;
    let ratio = cand_value / base_value;
    let line = format!(
        "{cand_path} ({}) vs baseline {base_path} ({}): `{headline}` \
         {cand_value:.1} / {base_value:.1} = {ratio:.3} (min {min_ratio})",
        cand.mode, base.mode
    );
    if ratio < min_ratio {
        Err(format!("perf gate: {line}"))
    } else {
        Ok(format!("perf gate ok: {line}"))
    }
}
