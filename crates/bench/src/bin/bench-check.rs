//! `bench-check` — validate the machine-readable bench trajectory.
//!
//! ```text
//! bench-check [--require e9,e10,e11,e12] FILE...
//! ```
//!
//! Validates every `BENCH_E*.json` argument against the
//! `demaq-bench/v1` schema (see `demaq_bench::report`). With
//! `--require`, additionally fails unless each listed experiment number
//! is covered by a valid report among the inputs — the CI gate that a
//! bench which ran also emitted its trajectory entry. A missing or
//! unreadable file is a failure, not a skip: a bench that ran without
//! writing its report is exactly the regression this tool exists to
//! catch. Exit status: 0 all valid (and required experiments covered),
//! 1 otherwise, 2 on usage errors.

use demaq_bench::report;
use std::collections::BTreeSet;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut required: BTreeSet<String> = BTreeSet::new();
    let mut paths: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require" => {
                let Some(list) = args.next() else {
                    eprintln!("bench-check: --require expects a comma-separated list (e9,e12)");
                    return ExitCode::from(2);
                };
                required.extend(list.split(',').map(|s| s.trim().to_string()));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench-check [--require e9,e10,...] FILE...\n\
                     Validates BENCH_E*.json reports against the demaq-bench/v1 schema."
                );
                return ExitCode::SUCCESS;
            }
            p if !p.starts_with('-') => paths.push(p.to_string()),
            other => {
                eprintln!("bench-check: unknown option {other}");
                return ExitCode::from(2);
            }
        }
    }
    if paths.is_empty() {
        eprintln!("bench-check: no input files");
        return ExitCode::from(2);
    }

    let mut failed = false;
    let mut covered: BTreeSet<String> = BTreeSet::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-check: FAIL {path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match report::validate(&text) {
            Ok(summary) => {
                // The experiment's `e<digits>` prefix is its coverage key.
                let prefix = summary.experiment.split('_').next().unwrap_or_default();
                covered.insert(prefix.to_string());
                println!(
                    "bench-check: ok {path}: {} ({}, {} result(s))",
                    summary.experiment, summary.mode, summary.results
                );
            }
            Err(e) => {
                eprintln!("bench-check: FAIL {path}: {e}");
                failed = true;
            }
        }
    }

    for want in &required {
        if !covered.contains(want) {
            eprintln!(
                "bench-check: FAIL required experiment `{want}` has no valid report \
                 (the bench ran without emitting its BENCH_E*.json)"
            );
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
