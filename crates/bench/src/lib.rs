//! Shared workload builders for the benchmark suite.
//!
//! Every bench in `benches/` regenerates one experiment of EXPERIMENTS.md;
//! this module provides the common Demaq server configurations so the
//! experiments measure the intended dimension and nothing else.

pub mod report;

use demaq::engine::PlanMode;
use demaq::Server;
use demaq_store::store::SyncPolicy;
use demaq_store::LockGranularity;

/// A Demaq server running the correlate-accumulate workload used by E1/E3:
/// messages carry an instance key; a slicing groups them; a rule touches
/// the slice (forcing slice access like a BPEL variable read would).
pub fn correlate_server(granularity: LockGranularity) -> Server {
    Server::builder()
        .program(
            r#"
            create queue work kind basic mode persistent
            create queue alerts kind basic mode persistent
            create property instance as xs:string fixed queue work value //@instance
            create slicing byInstance on instance
            create rule watch for byInstance
              if (count(qs:slice()) >= 1000000) then
                do enqueue <overflow>{qs:slicekey()}</overflow> into alerts
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .lock_granularity(granularity)
        .build()
        .expect("valid program")
}

/// Feed `messages` round-robin over `instances` into the correlate server.
pub fn feed_correlate(server: &Server, messages: usize, instances: usize) {
    for i in 0..messages {
        let inst = i % instances;
        server
            .enqueue_external(
                "work",
                &format!("<event instance='i{inst}'><n>{i}</n></event>"),
            )
            .expect("enqueue");
    }
}

/// A pipeline server for E6/E7: `rules` independent rules on the inbox,
/// each matching a distinct element so exactly one fires per message.
pub fn pipeline_server(rules: usize, sync: SyncPolicy, plan: PlanMode, persistent: bool) -> Server {
    pipeline_server_opts(rules, sync, plan, persistent, true)
}

/// [`pipeline_server`] with an explicit evaluator choice: `lowered = false`
/// pins the reference AST interpreter (the benchmark E11 baseline).
pub fn pipeline_server_opts(
    rules: usize,
    sync: SyncPolicy,
    plan: PlanMode,
    persistent: bool,
    lowered: bool,
) -> Server {
    let mode = if persistent {
        "persistent"
    } else {
        "transient"
    };
    let mut program = format!(
        "create queue inbox kind basic mode {mode}\ncreate queue outbox kind basic mode {mode}\n"
    );
    for r in 0..rules {
        program.push_str(&format!(
            "create rule r{r} for inbox if (//kind{r}) then do enqueue <out>{{//kind{r}/@n}}</out> into outbox\n"
        ));
    }
    Server::builder()
        .program(&program)
        .in_memory()
        .sync_policy(sync)
        .plan_mode(plan)
        .lowered_plans(lowered)
        .build()
        .expect("valid program")
}

/// Feed the pipeline: message `i` matches rule `i % rules`.
pub fn feed_pipeline(server: &Server, messages: usize, rules: usize) {
    for i in 0..messages {
        let k = i % rules;
        server
            .enqueue_external("inbox", &format!("<m><kind{k} n='{i}'/></m>"))
            .expect("enqueue");
    }
}

/// Dump the server's full Prometheus exposition to
/// `target/metrics/<experiment>.prom`, next to the criterion results
/// (`target/criterion-lite.jsonl`), so a bench run leaves an inspectable
/// snapshot of internal counters/latencies alongside the timing numbers.
pub fn dump_metrics(server: &Server, experiment: &str) {
    dump_text(&server.metrics_text(), experiment);
}

/// Like [`dump_metrics`], for benches that drive the store directly
/// (without a [`Server`]) and hold their own registry.
pub fn dump_registry(registry: &demaq_obs::Registry, experiment: &str) {
    dump_text(&registry.render_text(), experiment);
}

fn dump_text(text: &str, experiment: &str) {
    let dir = std::path::Path::new("target").join("metrics");
    if std::fs::create_dir_all(&dir).is_err() {
        return; // benches must never fail on snapshot IO
    }
    let _ = std::fs::write(dir.join(format!("{experiment}.prom")), text);
}
