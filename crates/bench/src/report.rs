//! Machine-readable bench trajectory: schema-versioned JSON reports.
//!
//! Every experiment's representative run distills its headline numbers
//! into `BENCH_E<n>.json` at the repo root, next to EXPERIMENTS.md, so
//! the performance trajectory of the repo is diffable across commits and
//! checkable in CI without scraping criterion output. The build is fully
//! offline and dependency-free, so both the writer and the validator
//! (used by the `bench-check` binary and the CI gate) are hand-rolled.
//!
//! Schema `demaq-bench/v1`:
//!
//! ```json
//! {
//!   "schema": "demaq-bench/v1",
//!   "experiment": "e12_sustained_drain",
//!   "mode": "smoke",
//!   "results": [
//!     {"name": "drain_throughput", "value": 12345.6, "unit": "msgs/s"}
//!   ],
//!   "metrics": {"demaq_store_sync_total": 42}
//! }
//! ```
//!
//! Required: `schema` (exactly the version string), `experiment`
//! (`e<digits>_…`), `mode` (`smoke` or `full`), `results` (non-empty,
//! every entry with a non-empty `name`/`unit` and a finite `value`).
//! `metrics` is an optional snapshot of internal counters.

use std::path::{Path, PathBuf};

/// The report schema identifier; bump on breaking shape changes.
pub const SCHEMA: &str = "demaq-bench/v1";

/// One headline measurement of an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    pub name: String,
    pub value: f64,
    pub unit: String,
}

/// A bench report accumulating toward one `BENCH_E<n>.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    pub experiment: String,
    /// `smoke` (CI-sized) or `full`.
    pub mode: String,
    pub results: Vec<Measurement>,
    /// Selected internal counters, in insertion order.
    pub metrics: Vec<(String, f64)>,
}

impl BenchReport {
    pub fn new(experiment: &str, smoke: bool) -> BenchReport {
        BenchReport {
            experiment: experiment.to_string(),
            mode: if smoke { "smoke" } else { "full" }.to_string(),
            results: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Add one headline measurement.
    pub fn result(&mut self, name: &str, value: f64, unit: &str) -> &mut Self {
        self.results.push(Measurement {
            name: name.to_string(),
            value,
            unit: unit.to_string(),
        });
        self
    }

    /// Snapshot one unlabeled counter/gauge from a Prometheus exposition
    /// (absent metrics record as 0 so the trajectory stays comparable).
    pub fn metric_from(&mut self, prom_text: &str, name: &str) -> &mut Self {
        self.metrics
            .push((name.to_string(), prom_value(prom_text, name)));
        self
    }

    /// The repo-root file this report lands in: `BENCH_E<n>.json`, with
    /// `<n>` taken from the experiment's `e<digits>` prefix.
    pub fn file_name(&self) -> String {
        let digits: String = self
            .experiment
            .strip_prefix('e')
            .unwrap_or(&self.experiment)
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        format!("BENCH_E{digits}.json")
    }

    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"schema\": {},\n  \"experiment\": {},\n  \"mode\": {},\n  \"results\": [",
            json_str(SCHEMA),
            json_str(&self.experiment),
            json_str(&self.mode)
        );
        for (i, m) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"value\": {}, \"unit\": {}}}",
                json_str(&m.name),
                json_num(m.value),
                json_str(&m.unit)
            ));
        }
        out.push_str("\n  ],\n  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_str(k), json_num(*v)));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Write the report to the repo root; returns the path. Benches must
    /// never fail on snapshot IO, so errors are printed and swallowed.
    pub fn write(&self) -> Option<PathBuf> {
        let path = repo_root().join(self.file_name());
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => {
                println!("{}: wrote {}", self.experiment, path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("{}: cannot write {}: {e}", self.experiment, path.display());
                None
            }
        }
    }
}

/// The repository root. Cargo runs benches with the *package* directory
/// as CWD, so resolve from the manifest dir instead.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Read one unlabeled counter/gauge value from a Prometheus exposition.
pub fn prom_value(text: &str, name: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.0)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal: finite, no NaN/Inf (clamped to 0), integers bare.
fn json_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

// ---- validation ------------------------------------------------------------

/// What a valid report asserts about itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSummary {
    pub experiment: String,
    pub mode: String,
    pub results: usize,
}

/// Validate a `BENCH_E*.json` document against schema `demaq-bench/v1`.
pub fn validate(json: &str) -> Result<ReportSummary, String> {
    let value = Json::parse(json)?;
    let obj = value.as_obj().ok_or("top level must be an object")?;
    let field = |k: &str| -> Result<&Json, String> {
        obj.iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| v)
            .ok_or(format!("missing required field `{k}`"))
    };

    let schema = field("schema")?.as_str().ok_or("`schema` must be a string")?;
    if schema != SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{SCHEMA}`"));
    }
    let experiment = field("experiment")?
        .as_str()
        .ok_or("`experiment` must be a string")?;
    let valid_name = experiment
        .strip_prefix('e')
        .is_some_and(|r| r.chars().next().is_some_and(|c| c.is_ascii_digit()));
    if !valid_name {
        return Err(format!("experiment `{experiment}` is not of the form e<digits>_…"));
    }
    let mode = field("mode")?.as_str().ok_or("`mode` must be a string")?;
    if mode != "smoke" && mode != "full" {
        return Err(format!("mode is `{mode}`, expected `smoke` or `full`"));
    }
    let results = field("results")?
        .as_arr()
        .ok_or("`results` must be an array")?;
    if results.is_empty() {
        return Err("`results` is empty: the bench measured nothing".to_string());
    }
    for (i, r) in results.iter().enumerate() {
        let entry = r.as_obj().ok_or(format!("results[{i}] must be an object"))?;
        let get = |k: &str| entry.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let name = get("name")
            .and_then(Json::as_str)
            .ok_or(format!("results[{i}] needs a string `name`"))?;
        let unit = get("unit")
            .and_then(Json::as_str)
            .ok_or(format!("results[{i}] needs a string `unit`"))?;
        if name.is_empty() || unit.is_empty() {
            return Err(format!("results[{i}] has an empty name or unit"));
        }
        let value = get("value")
            .and_then(Json::as_num)
            .ok_or(format!("results[{i}] (`{name}`) needs a numeric `value`"))?;
        if !value.is_finite() {
            return Err(format!("results[{i}] (`{name}`) has a non-finite value"));
        }
    }
    if let Ok(m) = field("metrics") {
        let metrics = m.as_obj().ok_or("`metrics` must be an object")?;
        for (k, v) in metrics {
            if v.as_num().is_none() {
                return Err(format!("metrics.{k} must be a number"));
            }
        }
    }
    Ok(ReportSummary {
        experiment: experiment.to_string(),
        mode: mode.to_string(),
        results: results.len(),
    })
}

/// Extract one named headline result's value from a report document.
/// Used by `bench-check --baseline` to compare trajectory entries.
pub fn result_value(json: &str, name: &str) -> Result<f64, String> {
    let value = Json::parse(json)?;
    let obj = value.as_obj().ok_or("top level must be an object")?;
    let results = obj
        .iter()
        .find(|(k, _)| k == "results")
        .and_then(|(_, v)| v.as_arr())
        .ok_or("missing `results` array")?;
    for r in results {
        let Some(entry) = r.as_obj() else { continue };
        let get = |k: &str| entry.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        if get("name").and_then(Json::as_str) == Some(name) {
            return get("value")
                .and_then(Json::as_num)
                .ok_or(format!("result `{name}` has no numeric value"));
        }
    }
    Err(format!("no result named `{name}`"))
}

// ---- minimal JSON parser (validation only; offline, dependency-free) -------

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("invalid \\u escape")?;
                        // Surrogate pairs are out of scope for counter
                        // names; map them to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        fields.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("e12_sustained_drain", true);
        r.result("drain_throughput", 12345.678, "msgs/s")
            .result("messages", 4096.0, "count");
        r.metrics.push(("demaq_store_sync_total".into(), 42.0));
        r
    }

    #[test]
    fn report_round_trips_through_the_validator() {
        let json = sample().to_json();
        let summary = validate(&json).expect("valid");
        assert_eq!(
            summary,
            ReportSummary {
                experiment: "e12_sustained_drain".into(),
                mode: "smoke".into(),
                results: 2,
            }
        );
    }

    #[test]
    fn file_name_derives_from_the_experiment_number() {
        assert_eq!(sample().file_name(), "BENCH_E12.json");
        assert_eq!(BenchReport::new("e9_group_commit", false).file_name(), "BENCH_E9.json");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        for (doc, why) in [
            ("{", "truncated"),
            ("[]", "not an object"),
            ("{\"schema\": \"demaq-bench/v0\"}", "wrong schema version"),
            (
                "{\"schema\": \"demaq-bench/v1\", \"experiment\": \"x\", \
                 \"mode\": \"smoke\", \"results\": [{\"name\":\"a\",\"value\":1,\"unit\":\"s\"}]}",
                "bad experiment name",
            ),
            (
                "{\"schema\": \"demaq-bench/v1\", \"experiment\": \"e1_x\", \
                 \"mode\": \"smoke\", \"results\": []}",
                "empty results",
            ),
            (
                "{\"schema\": \"demaq-bench/v1\", \"experiment\": \"e1_x\", \
                 \"mode\": \"dev\", \"results\": [{\"name\":\"a\",\"value\":1,\"unit\":\"s\"}]}",
                "bad mode",
            ),
            (
                "{\"schema\": \"demaq-bench/v1\", \"experiment\": \"e1_x\", \
                 \"mode\": \"full\", \"results\": [{\"name\":\"a\",\"unit\":\"s\"}]}",
                "result without value",
            ),
        ] {
            assert!(validate(doc).is_err(), "accepted a document with {why}");
        }
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = Json::parse(r#"{"a": [1, -2.5e1, "x\nyA"], "b": {"c": true, "d": null}}"#)
            .expect("parse");
        let obj = v.as_obj().unwrap();
        let arr = obj[0].1.as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("x\nyA"));
        let inner = obj[1].1.as_obj().unwrap();
        assert_eq!(inner[0].1, Json::Bool(true));
        assert_eq!(inner[1].1, Json::Null);
    }

    #[test]
    fn prom_value_reads_unlabeled_series() {
        let text = "demaq_store_sync_total 42\ndemaq_store_sync_total_other 9\n";
        assert_eq!(prom_value(text, "demaq_store_sync_total"), 42.0);
        assert_eq!(prom_value(text, "missing"), 0.0);
    }
}
