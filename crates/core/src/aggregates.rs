//! Materialized aggregate cells (ISSUE 9's reactive aggregate registry).
//!
//! Each cell holds the running [`AggAcc`] fold of one recognized aggregate
//! shape ([`demaq_xquery::AggregateSpec`]) over one *scope* — a whole
//! queue or one `(slicing, key)` slice — together with the member-id list
//! it was folded over and the store-side **version counter** current when
//! the fold was taken. Reads validate against the live `(ids, version)`
//! pair the store reports under one state lock:
//!
//! * version match → the cell is current: return its result, zero member
//!   access ([`AggLookup::Hit`]).
//! * old ids are a strict prefix of the new → only new members arrived
//!   since the fold: absorb just the suffix ([`AggLookup::Extend`] — the
//!   *delta* path that makes per-message aggregate cost O(1) in N).
//! * anything else (reset epoch bump, GC purge, cold) → refold from
//!   scratch ([`AggLookup::Miss`], a *rebuild*).
//!
//! The version clocks are bumped **inside batched commit apply** (member
//! add, queue insert, reset) and by GC purges — see
//! `demaq_store::slice::SliceIndex` — so a stale cell can never validate.
//! Cells are process-local and never persisted: after a crash the clock
//! restarts at 0 (which it never emits) and every cell rebuilds from the
//! recovered store, so recovery correctness never depends on cached state.
//! Abort safety is by construction — folds only ever observe post-commit
//! applied state, and a cell is only stored under the version read with
//! its membership.

use demaq_obs::{Counter, Obs};
use demaq_store::{MsgId, PropValue};
use demaq_xquery::AggAcc;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// What a cell aggregates over.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggScope {
    /// All retained messages of a named queue.
    Queue(String),
    /// The current lifetime of one slice.
    Slice(String, PropValue),
}

/// Result of a registry probe.
pub enum AggLookup {
    /// Cell is current: the aggregate's value, zero member access.
    Hit(demaq_xquery::Sequence),
    /// Members grew append-only since the fold: resume `acc` over
    /// `current_ids[from..]` only.
    Extend { acc: AggAcc, from: usize },
    /// Cold, reset, or purged: fold from scratch.
    Miss,
}

struct Cell {
    version: u64,
    ids: Vec<MsgId>,
    acc: AggAcc,
    last_used: u64,
}

type AggShard = HashMap<(String, AggScope), Cell>;

/// Sharded registry of materialized aggregate cells keyed by
/// `(aggregate cache key, scope)`.
pub struct AggRegistry {
    shards: Box<[Mutex<AggShard>]>,
    shard_mask: u64,
    cap_per_shard: usize,
    tick: AtomicU64,
    hits: Counter,
    deltas: Counter,
    rebuilds: Counter,
}

impl AggRegistry {
    pub fn new(shards: usize, cap: usize, obs: &Obs) -> AggRegistry {
        let n = shards.max(1).next_power_of_two();
        let r = &obs.registry;
        AggRegistry {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_mask: (n - 1) as u64,
            cap_per_shard: (cap / n).max(1),
            tick: AtomicU64::new(0),
            hits: r.counter("demaq_core_agg_hits_total"),
            deltas: r.counter("demaq_core_agg_deltas_total"),
            rebuilds: r.counter("demaq_core_agg_rebuilds_total"),
        }
    }

    fn shard(&self, key: &str, scope: &AggScope) -> &Mutex<AggShard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        scope.hash(&mut h);
        &self.shards[(h.finish() & self.shard_mask) as usize]
    }

    /// Count a read answered without touching any member document (used by
    /// the engine's membership-only fast path for `count`/`exists` with no
    /// steps, which bypasses cells entirely).
    pub fn note_fast_hit(&self) {
        self.hits.inc();
    }

    /// Probe against the store's current `(ids, version)` pair (read
    /// atomically under one store lock by the caller). `version` 0 means
    /// the clock has no reading for this scope — never cacheable.
    pub fn lookup(
        &self,
        key: &str,
        scope: &AggScope,
        version: u64,
        current_ids: &[MsgId],
    ) -> AggLookup {
        if version == 0 {
            return AggLookup::Miss;
        }
        let mut shard = self.shard(key, scope).lock();
        let Some(cell) = shard.get_mut(&(key.to_string(), scope.clone())) else {
            return AggLookup::Miss;
        };
        cell.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        if cell.version == version {
            self.hits.inc();
            return AggLookup::Hit(cell.acc.result());
        }
        if !cell.ids.is_empty()
            && cell.ids.len() <= current_ids.len()
            && cell.ids[..] == current_ids[..cell.ids.len()]
        {
            return AggLookup::Extend {
                acc: cell.acc.clone(),
                from: cell.ids.len(),
            };
        }
        AggLookup::Miss
    }

    /// Store a fold taken over `ids` at `version`. `extended` marks the
    /// delta path (absorbed a suffix) vs a full rebuild in the metrics.
    /// Folds that errored must NOT be stored — the caller declines the
    /// read instead, so the fallback reproduces the reference error.
    pub fn store(
        &self,
        key: &str,
        scope: &AggScope,
        version: u64,
        ids: Vec<MsgId>,
        acc: AggAcc,
        extended: bool,
    ) {
        if extended {
            self.deltas.inc();
        } else {
            self.rebuilds.inc();
        }
        if version == 0 {
            return;
        }
        let mut shard = self.shard(key, scope).lock();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        shard.insert(
            (key.to_string(), scope.clone()),
            Cell {
                version,
                ids,
                acc,
                last_used: tick,
            },
        );
        if shard.len() > self.cap_per_shard {
            if let Some(victim) = shard
                .iter()
                .min_by_key(|(_, c)| c.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.remove(&victim);
            }
        }
    }

    /// Drop cells folded over any purged message (GC hook). The version
    /// bump in the store already makes them unreturnable as `Hit`s, and
    /// the prefix check rejects them for `Extend`; this just frees memory.
    pub fn invalidate_msgs(&self, purged: &[MsgId]) {
        if purged.is_empty() {
            return;
        }
        let set: HashSet<MsgId> = purged.iter().copied().collect();
        for shard in self.shards.iter() {
            shard
                .lock()
                .retain(|_, c| !c.ids.iter().any(|m| set.contains(m)));
        }
    }

    /// Cell count (tests/diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demaq_xquery::AggOp;
    use std::sync::Arc;

    fn obs() -> Arc<Obs> {
        Obs::new()
    }

    fn count_acc(n: i64) -> AggAcc {
        let mut acc = AggAcc::new(AggOp::Count);
        if let AggAcc::Count(c) = &mut acc {
            *c = n;
        }
        acc
    }

    fn ids(v: &[u64]) -> Vec<MsgId> {
        v.iter().map(|&i| MsgId(i)).collect()
    }

    #[test]
    fn hit_on_version_match() {
        let o = obs();
        let reg = AggRegistry::new(4, 1024, &o);
        let scope = AggScope::Queue("q".into());
        assert!(matches!(reg.lookup("k", &scope, 7, &ids(&[1])), AggLookup::Miss));
        reg.store("k", &scope, 7, ids(&[1]), count_acc(1), false);
        match reg.lookup("k", &scope, 7, &ids(&[1])) {
            AggLookup::Hit(s) => assert_eq!(s.to_string(), "1"),
            _ => panic!("expected hit"),
        }
        assert_eq!(o.registry.counter_total("demaq_core_agg_hits_total"), 1);
        assert_eq!(o.registry.counter_total("demaq_core_agg_rebuilds_total"), 1);
    }

    #[test]
    fn extend_on_appended_members() {
        let o = obs();
        let reg = AggRegistry::new(4, 1024, &o);
        let scope = AggScope::Slice("s".into(), PropValue::Str("a".into()));
        reg.store("k", &scope, 3, ids(&[1, 2]), count_acc(2), false);
        match reg.lookup("k", &scope, 5, &ids(&[1, 2, 3, 4])) {
            AggLookup::Extend { acc, from } => {
                assert_eq!(from, 2);
                assert!(matches!(acc, AggAcc::Count(2)));
            }
            _ => panic!("expected extend"),
        }
        reg.store("k", &scope, 5, ids(&[1, 2, 3, 4]), count_acc(4), true);
        assert_eq!(o.registry.counter_total("demaq_core_agg_deltas_total"), 1);
        match reg.lookup("k", &scope, 5, &ids(&[1, 2, 3, 4])) {
            AggLookup::Hit(s) => assert_eq!(s.to_string(), "4"),
            _ => panic!("expected hit after delta store"),
        }
    }

    #[test]
    fn miss_on_divergent_membership() {
        let o = obs();
        let reg = AggRegistry::new(4, 1024, &o);
        let scope = AggScope::Queue("q".into());
        reg.store("k", &scope, 3, ids(&[1, 2]), count_acc(2), false);
        // Reset / purge: id 1 gone — not a prefix.
        assert!(matches!(
            reg.lookup("k", &scope, 9, &ids(&[2, 3])),
            AggLookup::Miss
        ));
        // Empty cached ids never extend.
        reg.store("k2", &scope, 3, vec![], count_acc(0), false);
        assert!(matches!(
            reg.lookup("k2", &scope, 9, &ids(&[1])),
            AggLookup::Miss
        ));
    }

    #[test]
    fn version_zero_never_caches() {
        let o = obs();
        let reg = AggRegistry::new(4, 1024, &o);
        let scope = AggScope::Queue("q".into());
        reg.store("k", &scope, 0, ids(&[1]), count_acc(1), false);
        assert!(reg.is_empty(), "version-0 store is dropped");
        assert!(matches!(reg.lookup("k", &scope, 0, &ids(&[1])), AggLookup::Miss));
    }

    #[test]
    fn scopes_and_keys_are_independent() {
        let o = obs();
        let reg = AggRegistry::new(4, 1024, &o);
        let qa = AggScope::Slice("s".into(), PropValue::Str("a".into()));
        let qb = AggScope::Slice("s".into(), PropValue::Str("b".into()));
        reg.store("k", &qa, 3, ids(&[1]), count_acc(1), false);
        assert!(matches!(reg.lookup("k", &qb, 3, &ids(&[1])), AggLookup::Miss));
        assert!(matches!(reg.lookup("other", &qa, 3, &ids(&[1])), AggLookup::Miss));
        assert!(matches!(reg.lookup("k", &qa, 3, &ids(&[1])), AggLookup::Hit(_)));
    }

    #[test]
    fn invalidate_drops_cells_over_purged_members() {
        let o = obs();
        let reg = AggRegistry::new(4, 1024, &o);
        let scope = AggScope::Queue("q".into());
        reg.store("k", &scope, 3, ids(&[1, 2]), count_acc(2), false);
        reg.store("k2", &scope, 3, ids(&[5]), count_acc(1), false);
        reg.invalidate_msgs(&ids(&[2]));
        assert_eq!(reg.len(), 1, "only the cell containing msg 2 dropped");
    }

    #[test]
    fn lru_eviction_bounds_cells() {
        let o = obs();
        let reg = AggRegistry::new(1, 2, &o);
        let s = |n: &str| AggScope::Queue(n.into());
        reg.store("k", &s("a"), 1, ids(&[1]), count_acc(1), false);
        reg.store("k", &s("b"), 2, ids(&[1]), count_acc(1), false);
        reg.store("k", &s("c"), 3, ids(&[1]), count_acc(1), false);
        assert_eq!(reg.len(), 2, "cap enforced");
    }
}
