//! Compiled application model.
//!
//! The [`CompiledApp`] is the deployed form of a QDL/QML program: schemas
//! and WSDL interfaces are parsed, rules are grouped per target and
//! rewritten by the [`crate::compiler`], and cross-reference maps
//! (property → slicings, queue → properties) are precomputed for the hot
//! path.

use crate::compiler::{self, CompiledRule};
use demaq_analysis::{Analysis, LintConfig, RuleFacts};
use demaq_net::WsdlInterface;
use demaq_qdl::{AppSpec, PropKind, PropertyDecl, QueueDecl, QueueKind, SlicingDecl};
use demaq_xml::schema::Schema;
use demaq_xquery::{Expr, Plan};
use std::collections::HashMap;
use std::sync::Arc;

/// A queue with its compiled artifacts.
pub struct CompiledQueue {
    pub decl: QueueDecl,
    /// Parsed schema, when declared.
    pub schema: Option<Schema>,
    /// Parsed WSDL interface, for outgoing gateways with `interface`.
    pub interface: Option<WsdlInterface>,
    /// Rules attached directly to this queue, in program order.
    pub rules: Vec<CompiledRule>,
    /// The per-queue canonical plan (all rule bodies concatenated, paper
    /// Sec. 4.4.1), precomputed at deploy time; `None` when the queue's
    /// rules cannot be merged (error-queue routing) or there are none.
    pub merged: Option<Arc<Expr>>,
    /// `merged` lowered to an execution plan.
    pub merged_plan: Option<Arc<Plan>>,
}

/// A slicing with its rules.
pub struct CompiledSlicing {
    pub decl: SlicingDecl,
    pub rules: Vec<CompiledRule>,
}

/// The deployed application.
pub struct CompiledApp {
    pub spec: AppSpec,
    pub queues: HashMap<String, CompiledQueue>,
    pub slicings: HashMap<String, CompiledSlicing>,
    /// property name -> declaration
    pub properties: HashMap<String, PropertyDecl>,
    /// property name -> slicing names keyed by it
    pub slicings_by_property: HashMap<String, Vec<String>>,
    /// Whole-application static analysis (flow graph, diagnostics,
    /// lock-order derivation), computed once at deploy time.
    pub analysis: Analysis,
    /// Deploy-time constant-folded property bindings:
    /// `prop name -> queue name -> value` for every binding whose value
    /// expression lowers to [`Plan::Const`] (`value false`, `value 3`, …).
    /// `compute_properties` reuses the value instead of re-evaluating the
    /// expression on every enqueue. The inner `Option` mirrors
    /// `eval_binding`: a constant *empty* sequence leaves the property
    /// absent.
    pub const_prop_bindings: HashMap<String, HashMap<String, Option<demaq_store::PropValue>>>,
    /// queue name -> global lock-acquisition rank (position in
    /// [`Analysis::lock_order`]; flow sources rank first). Every
    /// transaction acquires queue locks in ascending rank, which turns
    /// deadlock detect-and-retry into deadlock avoidance for
    /// cross-enqueueing rules.
    pub lock_ranks: HashMap<String, u32>,
}

/// The analyzer's view of a compiled rule: identity fields plus the
/// compiler's read/write sets and trigger filter.
fn rule_facts(rule: &CompiledRule) -> RuleFacts {
    RuleFacts::from_parts(
        &rule.name,
        &rule.target,
        rule.on_slicing,
        rule.error_queue.clone(),
        rule.reads_queues.clone(),
        rule.writes_queues.clone(),
        rule.trigger_elements.clone(),
        &rule.body,
    )
}

/// Error while compiling an application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError(pub String);

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "application compilation failed: {}", self.0)
    }
}
impl std::error::Error for CompileError {}

impl CompiledApp {
    /// Compile a validated [`AppSpec`]. `wsdl_files` resolves `interface`
    /// clause file names to WSDL content (the simulation's stand-in for
    /// reading WSDL from disk/URL).
    pub fn compile(
        spec: AppSpec,
        wsdl_files: &HashMap<String, String>,
    ) -> Result<CompiledApp, CompileError> {
        let violations = demaq_qdl::validate(&spec);
        if !violations.is_empty() {
            let msgs: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
            return Err(CompileError(msgs.join("; ")));
        }

        let mut schemas = HashMap::new();
        for (name, src) in &spec.schemas {
            let schema =
                Schema::parse(src).map_err(|e| CompileError(format!("schema `{name}`: {e}")))?;
            schemas.insert(name.clone(), schema);
        }

        let mut queues = HashMap::new();
        for q in &spec.queues {
            let schema = match &q.schema {
                Some(s) => Some(schemas.get(s).cloned().ok_or_else(|| {
                    CompileError(format!("queue `{}`: unknown schema `{s}`", q.name))
                })?),
                None => None,
            };
            let interface = match &q.interface {
                Some((file, port)) => {
                    let content = wsdl_files.get(file).ok_or_else(|| {
                        CompileError(format!(
                            "queue `{}`: interface file `{file}` not provided (register it via ServerBuilder::wsdl_file)",
                            q.name
                        ))
                    })?;
                    Some(
                        WsdlInterface::parse(content, port)
                            .map_err(|e| CompileError(format!("queue `{}`: {e}", q.name)))?,
                    )
                }
                None => None,
            };
            queues.insert(
                q.name.clone(),
                CompiledQueue {
                    decl: q.clone(),
                    schema,
                    interface,
                    rules: Vec::new(),
                    merged: None,
                    merged_plan: None,
                },
            );
        }

        let mut slicings = HashMap::new();
        let mut slicings_by_property: HashMap<String, Vec<String>> = HashMap::new();
        for s in &spec.slicings {
            slicings.insert(
                s.name.clone(),
                CompiledSlicing {
                    decl: s.clone(),
                    rules: Vec::new(),
                },
            );
            slicings_by_property
                .entry(s.property.clone())
                .or_default()
                .push(s.name.clone());
        }

        let properties: HashMap<String, PropertyDecl> = spec
            .properties
            .iter()
            .map(|p| (p.name.clone(), p.clone()))
            .collect();

        // Constant-fold property bindings once at deploy time (ISSUE 9
        // satellite): a `Fixed` (or defaulted) binding like `value false`
        // used to re-run the evaluator on every enqueue.
        let mut const_prop_bindings: HashMap<String, HashMap<String, Option<demaq_store::PropValue>>> =
            HashMap::new();
        for p in &spec.properties {
            for b in &p.bindings {
                if let Some(seq) = demaq_xquery::lower(&b.value).as_const() {
                    let value = seq
                        .0
                        .first()
                        .map(|item| crate::host::atomic_to_prop(&item.atomize()));
                    let per_queue = const_prop_bindings.entry(p.name.clone()).or_default();
                    for q in &b.queues {
                        per_queue.insert(q.clone(), value.clone());
                    }
                }
            }
        }

        // Compile rules into their targets.
        for r in &spec.rules {
            let on_slicing = slicings.contains_key(&r.target);
            let compiled = compiler::compile_rule(r, &spec, on_slicing)
                .map_err(|e| CompileError(format!("rule `{}`: {e}", r.name)))?;
            if on_slicing {
                slicings
                    .get_mut(&r.target)
                    .expect("checked")
                    .rules
                    .push(compiled);
            } else {
                queues
                    .get_mut(&r.target)
                    .expect("validated")
                    .rules
                    .push(compiled);
            }
        }

        // Precompute each queue's canonical merged plan once at deploy
        // time — the engine used to re-merge on every message.
        for q in queues.values_mut() {
            if let Some(merged) = compiler::merge_rules(&q.rules) {
                q.merged_plan = Some(Arc::new(demaq_xquery::lower(&merged)));
                q.merged = Some(Arc::new(merged));
            }
        }

        // Whole-application analysis over the compiled rules' read/write
        // sets (paper Sec. 4): diagnostics plus the flow-derived global
        // lock-acquisition order. The builder decides what to do with the
        // diagnostics (strict_analysis); ranks feed lock acquisition.
        let facts: Vec<RuleFacts> = queues
            .values()
            .flat_map(|q| q.rules.iter())
            .chain(slicings.values().flat_map(|s| s.rules.iter()))
            .map(rule_facts)
            .collect();
        let analysis = demaq_analysis::analyze(&spec, &facts, &LintConfig::default());
        let lock_ranks = analysis
            .lock_order
            .iter()
            .enumerate()
            .map(|(i, q)| (q.clone(), i as u32))
            .collect();

        Ok(CompiledApp {
            spec,
            queues,
            slicings,
            properties,
            slicings_by_property,
            const_prop_bindings,
            analysis,
            lock_ranks,
        })
    }

    /// The queue kind (engine dispatch).
    pub fn queue_kind(&self, name: &str) -> Option<QueueKind> {
        self.queues.get(name).map(|q| q.decl.kind)
    }

    /// Properties that have a value binding or inheritance on this queue —
    /// the set to compute at enqueue time.
    pub fn properties_for_queue<'a>(&'a self, queue: &str) -> Vec<&'a PropertyDecl> {
        self.properties
            .values()
            .filter(|p| {
                p.kind == PropKind::Inherited
                    || p.bindings
                        .iter()
                        .any(|b| b.queues.iter().any(|q| q == queue))
            })
            .collect()
    }

    /// All slicing rules that pertain to a message carrying the given
    /// property names: rules of slicings keyed by any of those properties.
    pub fn slicing_rules_for<'a>(
        &'a self,
        prop_names: impl Iterator<Item = &'a str>,
    ) -> Vec<(&'a str, &'a CompiledSlicing)> {
        let mut out = Vec::new();
        for p in prop_names {
            if let Some(slicing_names) = self.slicings_by_property.get(p) {
                for sname in slicing_names {
                    if let Some(s) = self.slicings.get(sname) {
                        out.push((sname.as_str(), s));
                    }
                }
            }
        }
        out
    }

    /// Resolve the error queue for a failure in `rule` (possibly None) on
    /// `queue`: rule-level, then queue-level, then system-level
    /// (paper Sec. 3.6's levels).
    pub fn error_queue_for<'a>(
        &'a self,
        rule: Option<&'a CompiledRule>,
        queue: &str,
    ) -> Option<&'a str> {
        if let Some(r) = rule {
            if let Some(eq) = &r.error_queue {
                return Some(eq);
            }
        }
        if let Some(q) = self.queues.get(queue) {
            if let Some(eq) = &q.decl.error_queue {
                return Some(eq);
            }
        }
        self.spec.system_error_queue.as_deref()
    }
}
