//! The engine's caching layer: redundant-work elimination on the
//! rule-evaluation hot path (paper Sec. 4's "avoiding redundant work").
//!
//! Two caches, both process-local and strictly derived from committed
//! store state:
//!
//! * [`DocCache`] — a **sharded, byte-budgeted LRU** over parsed message
//!   documents. Shards are selected by a multiplicative hash of the
//!   [`MsgId`], so concurrent workers in
//!   [`crate::engine::Server::process_all_parallel`] rarely contend on the
//!   same mutex (the previous design was one global `Mutex<HashMap>` with
//!   clear-*everything* eviction at a fixed entry count). Each cached
//!   entry also interns the document's element-name set
//!   ([`CachedDoc::element_names`]), so rule-trigger pre-filtering never
//!   re-walks the tree.
//!
//! * [`SliceSeqCache`] — materialized member [`Sequence`]s per
//!   `(slicing, key)`, validated by the store-side **slice version
//!   counter** (bumped inside commit on member add, reset, and GC purge —
//!   see `demaq_store::slice::SliceIndex`). An unchanged slice is
//!   materialized once per version instead of once per rule firing; when
//!   only new members arrived, the cached sequence is extended
//!   incrementally (the common N-arrivals-into-one-slice join goes from
//!   O(N²) to O(N) parse work).
//!
//! Snapshot safety: neither cache is consulted on trust — every lookup is
//! keyed by state the committing transaction itself updates (the unique,
//! never-reused `MsgId`; the monotonic slice version). Invalidation is
//! therefore a side effect of commit (and of GC/reset), never of
//! evaluation-time heuristics. A cached member sequence whose slice
//! changed — by a later add, a `do reset` epoch bump, or a GC purge — can
//! never be returned, because all three paths advance the version clock.

use demaq_obs::{Counter, Gauge, Obs};
use demaq_store::{MsgId, PropValue};
use demaq_xml::{Document, Sym};
use demaq_xquery::Sequence;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A parsed message document plus derived artifacts interned at (or after)
/// parse time, shared by every rule evaluation that touches the message.
pub struct CachedDoc {
    pub doc: Arc<Document>,
    names: OnceLock<HashSet<String>>,
    syms: OnceLock<HashSet<Sym>>,
}

impl CachedDoc {
    pub fn new(doc: Arc<Document>) -> CachedDoc {
        CachedDoc {
            doc,
            names: OnceLock::new(),
            syms: OnceLock::new(),
        }
    }

    /// Names of all elements in the document (rule-trigger pre-filtering).
    /// Computed once per cached document, not once per processing pass.
    pub fn element_names(&self) -> &HashSet<String> {
        self.names.get_or_init(|| {
            let mut out = HashSet::new();
            for n in self.doc.root().descendants() {
                if let Some(q) = n.name() {
                    out.insert(q.local.clone());
                }
            }
            out
        })
    }

    /// Interned symbols of all element names in the document — the
    /// sym-based counterpart of [`CachedDoc::element_names`], checked
    /// against [`crate::compiler::CompiledRule::trigger_syms`] with u32
    /// set probes instead of string hashing. Reads the symbols the tree
    /// interned at freeze time; no extra interning happens here.
    pub fn element_syms(&self) -> &HashSet<Sym> {
        self.syms.get_or_init(|| {
            self.doc
                .root()
                .descendants()
                .into_iter()
                .filter(|n| n.is_element())
                .filter_map(|n| n.name_sym())
                .collect()
        })
    }
}

/// Sentinel for "no slot" in the intrusive LRU list.
const NIL: usize = usize::MAX;

/// Fixed per-entry overhead charged against the byte budget (slot, map
/// entry, `Arc` headers).
const DOC_OVERHEAD_BYTES: usize = 160;
/// DOM expansion factor: a parsed tree costs roughly this multiple of its
/// serialized payload (node records, name/text allocations).
const DOM_EXPANSION: usize = 4;

struct Slot {
    id: MsgId,
    /// `None` only while the slot sits on the free list.
    entry: Option<Arc<CachedDoc>>,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// One shard: a hash map into an intrusive doubly-linked LRU list held in
/// a slab, so get/insert/evict are all O(1).
struct DocShard {
    map: HashMap<MsgId, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used (eviction end).
    tail: usize,
    bytes: usize,
}

impl DocShard {
    fn new() -> DocShard {
        DocShard {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (p, n) = (self.slots[i].prev, self.slots[i].next);
        if p != NIL {
            self.slots[p].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.slots[n].prev = p;
        } else {
            self.tail = p;
        }
        self.slots[i].prev = NIL;
        self.slots[i].next = NIL;
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Remove the LRU entry; returns its byte cost.
    fn evict_tail(&mut self) -> usize {
        let i = self.tail;
        self.unlink(i);
        let id = self.slots[i].id;
        self.map.remove(&id);
        let cost = self.slots[i].bytes;
        self.bytes -= cost;
        self.slots[i].entry = None;
        self.free.push(i);
        cost
    }

    fn remove(&mut self, id: MsgId) -> usize {
        match self.map.remove(&id) {
            Some(i) => {
                self.unlink(i);
                let cost = self.slots[i].bytes;
                self.bytes -= cost;
                self.slots[i].entry = None;
                self.free.push(i);
                cost
            }
            None => 0,
        }
    }
}

/// Sharded byte-budgeted LRU over parsed documents, keyed by [`MsgId`].
///
/// A byte budget of 0 disables the cache (every `get` misses, `insert`
/// still hands back a usable [`CachedDoc`] for the caller's own use) —
/// the benchmark baseline configuration.
pub struct DocCache {
    shards: Box<[Mutex<DocShard>]>,
    shard_mask: u64,
    shard_budget: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    parses: Counter,
    bytes: Gauge,
}

impl DocCache {
    pub fn new(shards: usize, byte_budget: usize, obs: &Obs) -> DocCache {
        let n = shards.max(1).next_power_of_two();
        let r = &obs.registry;
        DocCache {
            shards: (0..n).map(|_| Mutex::new(DocShard::new())).collect(),
            shard_mask: (n - 1) as u64,
            shard_budget: byte_budget / n,
            hits: r.counter("demaq_core_doc_cache_hits_total"),
            misses: r.counter("demaq_core_doc_cache_misses_total"),
            evictions: r.counter("demaq_core_doc_cache_evictions_total"),
            parses: r.counter("demaq_core_doc_parses_total"),
            bytes: r.gauge("demaq_core_doc_cache_bytes"),
        }
    }

    pub fn enabled(&self) -> bool {
        self.shard_budget > 0
    }

    fn shard(&self, id: MsgId) -> &Mutex<DocShard> {
        // Fibonacci hashing spreads the sequential MsgId space evenly.
        let h = id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h & self.shard_mask) as usize]
    }

    /// Count one actual XML parse performed to fill this cache (the metric
    /// the E10 shape claim is asserted on).
    pub fn note_parse(&self) {
        self.parses.inc();
    }

    pub fn get(&self, id: MsgId) -> Option<Arc<CachedDoc>> {
        if !self.enabled() {
            self.misses.inc();
            return None;
        }
        let mut s = self.shard(id).lock();
        match s.map.get(&id).copied() {
            Some(i) => {
                s.touch(i);
                self.hits.inc();
                s.slots[i].entry.as_ref().map(Arc::clone)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Insert (or refresh) a parsed document. `payload_len` is the
    /// serialized size used to estimate the tree's memory cost.
    pub fn insert(&self, id: MsgId, doc: Arc<Document>, payload_len: usize) -> Arc<CachedDoc> {
        let entry = Arc::new(CachedDoc::new(doc));
        if !self.enabled() {
            return entry;
        }
        let cost = DOC_OVERHEAD_BYTES + DOM_EXPANSION * payload_len;
        let mut s = self.shard(id).lock();
        if let Some(&i) = s.map.get(&id) {
            let old = std::mem::replace(&mut s.slots[i].bytes, cost);
            s.slots[i].entry = Some(Arc::clone(&entry));
            s.bytes = s.bytes - old + cost;
            self.bytes.add(cost as i64 - old as i64);
            s.touch(i);
        } else {
            let slot = Slot {
                id,
                entry: Some(Arc::clone(&entry)),
                bytes: cost,
                prev: NIL,
                next: NIL,
            };
            let i = match s.free.pop() {
                Some(i) => {
                    s.slots[i] = slot;
                    i
                }
                None => {
                    s.slots.push(slot);
                    s.slots.len() - 1
                }
            };
            s.map.insert(id, i);
            s.push_front(i);
            s.bytes += cost;
            self.bytes.add(cost as i64);
        }
        // LRU eviction down to the shard budget (an oversized entry evicts
        // itself: it is uncacheable, the caller keeps its own Arc).
        while s.bytes > self.shard_budget && s.tail != NIL {
            let freed = s.evict_tail();
            self.bytes.add(-(freed as i64));
            self.evictions.inc();
        }
        entry
    }

    /// Drop entries for purged messages (GC hook).
    pub fn remove_many(&self, ids: &[MsgId]) {
        for &id in ids {
            let freed = self.shard(id).lock().remove(id);
            if freed > 0 {
                self.bytes.add(-(freed as i64));
            }
        }
    }

    /// Current entry count across all shards (tests/diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current estimated bytes across all shards (tests/diagnostics).
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }
}

/// Result of a slice-sequence cache probe.
pub enum SeqLookup {
    /// Cached and current (version match): use as-is, zero parse work.
    Hit(Sequence),
    /// Cached for a strict prefix of the current members: parse only
    /// `current_ids[from..]` and append.
    Extend { seq: Sequence, from: usize },
    /// Not cached, or the membership diverged (reset / purge / out-of-order
    /// commit): materialize from scratch.
    Miss,
}

/// One shard of the slice-sequence cache.
type SeqShard = HashMap<(String, PropValue), SeqEntry>;

struct SeqEntry {
    version: u64,
    ids: Vec<MsgId>,
    seq: Sequence,
    last_used: u64,
}

/// Materialized member sequences per `(slicing, key)`, validated by the
/// store's slice version counter.
pub struct SliceSeqCache {
    shards: Box<[Mutex<SeqShard>]>,
    shard_mask: u64,
    cap_per_shard: usize,
    tick: AtomicU64,
    enabled: bool,
    hits: Counter,
    rebuilds: Counter,
    appends: Counter,
}

impl SliceSeqCache {
    pub fn new(shards: usize, cap: usize, enabled: bool, obs: &Obs) -> SliceSeqCache {
        let n = shards.max(1).next_power_of_two();
        let r = &obs.registry;
        SliceSeqCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_mask: (n - 1) as u64,
            cap_per_shard: (cap / n).max(1),
            tick: AtomicU64::new(0),
            enabled,
            hits: r.counter("demaq_core_slice_seq_hits_total"),
            rebuilds: r.counter("demaq_core_slice_seq_rebuilds_total"),
            appends: r.counter("demaq_core_slice_seq_appends_total"),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn shard(&self, slicing: &str, key: &PropValue) -> &Mutex<SeqShard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        slicing.hash(&mut h);
        key.hash(&mut h);
        &self.shards[(h.finish() & self.shard_mask) as usize]
    }

    /// Probe the cache against the store's current `(members, version)`
    /// reading (taken atomically under one store read lock by the caller).
    pub fn lookup(
        &self,
        slicing: &str,
        key: &PropValue,
        version: u64,
        current_ids: &[MsgId],
    ) -> SeqLookup {
        if !self.enabled {
            return SeqLookup::Miss;
        }
        let mut shard = self.shard(slicing, key).lock();
        let Some(e) = shard.get_mut(&(slicing.to_string(), key.clone())) else {
            return SeqLookup::Miss;
        };
        e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        if e.version == version {
            self.hits.inc();
            return SeqLookup::Hit(e.seq.clone());
        }
        // Version moved: reusable only if the old membership is a strict
        // prefix of the new one (append-only growth since we cached).
        if !e.ids.is_empty()
            && e.ids.len() <= current_ids.len()
            && e.ids[..] == current_ids[..e.ids.len()]
        {
            return SeqLookup::Extend {
                seq: e.seq.clone(),
                from: e.ids.len(),
            };
        }
        SeqLookup::Miss
    }

    /// Store a freshly materialized (or extended) sequence. `extended`
    /// distinguishes the incremental-append path from a full rebuild in
    /// the metrics.
    pub fn store(
        &self,
        slicing: &str,
        key: &PropValue,
        version: u64,
        ids: Vec<MsgId>,
        seq: Sequence,
        extended: bool,
    ) {
        if !self.enabled {
            // Still count the work shape for the disabled baseline.
            self.rebuilds.inc();
            return;
        }
        if extended {
            self.appends.inc();
        } else {
            self.rebuilds.inc();
        }
        let mut shard = self.shard(slicing, key).lock();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        shard.insert(
            (slicing.to_string(), key.clone()),
            SeqEntry {
                version,
                ids,
                seq,
                last_used: tick,
            },
        );
        if shard.len() > self.cap_per_shard {
            // Evict the least-recently-used entry (rare; cap is per shard).
            if let Some(victim) = shard
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.remove(&victim);
            }
        }
    }

    /// Drop every cached sequence containing any of the purged messages
    /// (GC hook). The version bump in the store already makes these
    /// entries unreturnable; this releases the pinned documents.
    pub fn invalidate_msgs(&self, purged: &[MsgId]) {
        if !self.enabled || purged.is_empty() {
            return;
        }
        let set: HashSet<MsgId> = purged.iter().copied().collect();
        for shard in self.shards.iter() {
            shard
                .lock()
                .retain(|_, e| !e.ids.iter().any(|m| set.contains(m)));
        }
    }

    /// Cached slice count (tests/diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demaq_xml::parse as parse_xml;
    use demaq_xquery::Item;

    fn obs() -> Arc<Obs> {
        Obs::new()
    }

    fn doc(xml: &str) -> Arc<Document> {
        parse_xml(xml).unwrap()
    }

    #[test]
    fn doc_cache_hit_miss_and_touch() {
        let o = obs();
        let c = DocCache::new(4, 1 << 20, &o);
        assert!(c.get(MsgId(1)).is_none());
        c.insert(MsgId(1), doc("<a/>"), 4);
        let e = c.get(MsgId(1)).expect("hit");
        assert_eq!(e.doc.root().to_xml(), "<a/>");
        assert_eq!(o.registry.counter_total("demaq_core_doc_cache_hits_total"), 1);
        assert_eq!(
            o.registry.counter_total("demaq_core_doc_cache_misses_total"),
            1
        );
    }

    #[test]
    fn doc_cache_byte_budget_evicts_lru() {
        let o = obs();
        // One shard so the LRU order is fully observable; a budget that
        // holds two entries (cost 164 each) but not three.
        let c = DocCache::new(1, DOC_OVERHEAD_BYTES * 2 + 100, &o);
        c.insert(MsgId(1), doc("<a/>"), 1);
        c.insert(MsgId(2), doc("<b/>"), 1);
        // Touch 1 so 2 is now least recently used.
        assert!(c.get(MsgId(1)).is_some());
        c.insert(MsgId(3), doc("<c/>"), 1);
        assert!(c.get(MsgId(2)).is_none(), "LRU entry evicted");
        assert!(c.get(MsgId(1)).is_some());
        assert!(c.get(MsgId(3)).is_some());
        assert!(o.registry.counter_total("demaq_core_doc_cache_evictions_total") >= 1);
        assert!(c.bytes() <= DOC_OVERHEAD_BYTES * 2 + 100);
    }

    #[test]
    fn doc_cache_zero_budget_disables() {
        let o = obs();
        let c = DocCache::new(4, 0, &o);
        let e = c.insert(MsgId(1), doc("<a/>"), 4);
        assert_eq!(e.doc.root().to_xml(), "<a/>");
        assert!(c.get(MsgId(1)).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn doc_cache_remove_many() {
        let o = obs();
        let c = DocCache::new(4, 1 << 20, &o);
        for i in 0..10 {
            c.insert(MsgId(i), doc("<a/>"), 4);
        }
        c.remove_many(&[MsgId(2), MsgId(5), MsgId(99)]);
        assert_eq!(c.len(), 8);
        assert!(c.get(MsgId(2)).is_none());
        assert!(c.get(MsgId(3)).is_some());
    }

    #[test]
    fn element_names_interned_once() {
        let e = CachedDoc::new(doc("<a><b/><c><b/></c></a>"));
        let names = e.element_names();
        assert!(names.contains("a") && names.contains("b") && names.contains("c"));
        assert_eq!(names.len(), 3);
        // Second call returns the same interned set.
        assert!(std::ptr::eq(names, e.element_names()));
    }

    fn seq_of(ids: &[u64]) -> Sequence {
        Sequence(
            ids.iter()
                .map(|i| Item::Node(doc(&format!("<m id='{i}'/>")).root()))
                .collect(),
        )
    }

    #[test]
    fn slice_seq_version_hit_extend_miss() {
        let o = obs();
        let c = SliceSeqCache::new(4, 1024, true, &o);
        let key = PropValue::Str("k".into());
        let ids = vec![MsgId(1), MsgId(2)];
        assert!(matches!(c.lookup("s", &key, 7, &ids), SeqLookup::Miss));
        c.store("s", &key, 7, ids.clone(), seq_of(&[1, 2]), false);
        // Same version: hit.
        match c.lookup("s", &key, 7, &ids) {
            SeqLookup::Hit(s) => assert_eq!(s.len(), 2),
            _ => panic!("expected hit"),
        }
        // Version moved, membership grew by append: extend from the prefix.
        let grown = vec![MsgId(1), MsgId(2), MsgId(3)];
        match c.lookup("s", &key, 9, &grown) {
            SeqLookup::Extend { seq, from } => {
                assert_eq!(seq.len(), 2);
                assert_eq!(from, 2);
            }
            _ => panic!("expected extend"),
        }
        // Version moved, membership diverged (reset): miss.
        let diverged = vec![MsgId(4)];
        assert!(matches!(c.lookup("s", &key, 11, &diverged), SeqLookup::Miss));
        assert_eq!(o.registry.counter_total("demaq_core_slice_seq_hits_total"), 1);
    }

    #[test]
    fn slice_seq_invalidate_msgs_drops_pinning_entries() {
        let o = obs();
        let c = SliceSeqCache::new(2, 64, true, &o);
        let k1 = PropValue::Str("a".into());
        let k2 = PropValue::Str("b".into());
        c.store("s", &k1, 1, vec![MsgId(1)], seq_of(&[1]), false);
        c.store("s", &k2, 1, vec![MsgId(2)], seq_of(&[2]), false);
        c.invalidate_msgs(&[MsgId(1)]);
        assert!(matches!(c.lookup("s", &k1, 1, &[MsgId(1)]), SeqLookup::Miss));
        assert!(matches!(c.lookup("s", &k2, 1, &[MsgId(2)]), SeqLookup::Hit(_)));
    }

    #[test]
    fn slice_seq_cap_evicts_lru() {
        let o = obs();
        let c = SliceSeqCache::new(1, 2, true, &o);
        for i in 0..5 {
            let k = PropValue::Int(i);
            c.store("s", &k, 1, vec![MsgId(i as u64)], seq_of(&[i as u64]), false);
        }
        assert!(c.len() <= 2);
    }
}
