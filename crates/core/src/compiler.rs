//! The rule compiler (paper Sec. 4.4.1).
//!
//! "On deployment of an application, the rule compiler is used to compile
//! the application's rule set into execution plans. … Rewriting includes
//! supplying default parameters to functions which depend on the current
//! queue (such as `qs:queue()`). Similar to conventional view merging,
//! fixed properties are inlined. … After rewriting, the rule bodies are
//! combined into a single query by concatenating all pending actions into
//! a single sequence."
//!
//! Implemented rewrites:
//! 1. **Default-parameter injection** — `qs:queue()` → `qs:queue("q")`
//!    where `q` is the rule's queue.
//! 2. **Fixed-property inlining** — `qs:property("p")` where `p` is a
//!    `fixed` property with a computed value on the rule's queue becomes
//!    the value expression applied to `qs:message()` (view merging); other
//!    property reads stay runtime lookups.
//! 3. **Static analysis** — the read set (queues named in `qs:queue(…)` /
//!    `collection(…)`) and write set (enqueue targets) are extracted for
//!    lock acquisition; the trigger's root-element filter (`//name` in the
//!    rule condition) is extracted so the engine can skip rules that cannot
//!    match (the "XML filtering" opportunity the paper cites).
//!
//! The per-queue rules can also be *merged* into one canonical plan — a
//! sequence concatenating every body (benchmark E6 measures merged vs.
//! rule-at-a-time evaluation).

use demaq_qdl::{AppSpec, PropKind, RuleDecl};
use demaq_xml::sym::{self, Sym};
use demaq_xml::QName;
use demaq_xquery::ast::{Axis, NodeTest};
use demaq_xquery::{lower, Error as XqError, Expr, Plan};
use std::sync::Arc;

/// A compiled, rewritten rule.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    pub name: String,
    /// Queue or slicing the rule is attached to.
    pub target: String,
    pub on_slicing: bool,
    pub error_queue: Option<String>,
    /// Rewritten body.
    pub body: Expr,
    /// The body lowered to a pre-resolved execution plan (interned name
    /// tests, slot-indexed variables, folded constants); the engine
    /// evaluates this unless lowered plans are disabled.
    pub plan: Arc<Plan>,
    /// Queues read via `qs:queue("…")` (lock read-set).
    pub reads_queues: Vec<String>,
    /// Queues written via `do enqueue … into …` (lock write-set).
    pub writes_queues: Vec<String>,
    /// Root-element names the trigger condition requires (`//name` or
    /// `/name` in the `if` condition); `None` = cannot pre-filter.
    pub trigger_elements: Option<Vec<String>>,
    /// Interned counterparts of `trigger_elements`, compared against the
    /// document cache's element-symbol sets.
    pub trigger_syms: Option<Vec<Sym>>,
}

/// Compile one rule in the context of its application.
pub fn compile_rule(
    rule: &RuleDecl,
    spec: &AppSpec,
    on_slicing: bool,
) -> Result<CompiledRule, XqError> {
    // The queue context for rewrites: rules on queues know their queue;
    // rules on slicings have no single queue (qs:queue() without an
    // argument is then an error caught at runtime).
    let queue_ctx: Option<&str> = if on_slicing {
        None
    } else {
        Some(rule.target.as_str())
    };

    let body = rewrite_body(rule.body.clone(), queue_ctx, spec);

    let mut reads = Vec::new();
    let mut writes = Vec::new();
    body.visit(&mut |e| match e {
        Expr::FunctionCall { name, args }
            if name.prefix.as_deref() == Some("qs") && name.local == "queue" =>
        {
            if let Some(Expr::StringLit(q)) = args.first() {
                reads.push(q.clone());
            }
        }
        Expr::Enqueue { queue, .. } => writes.push(queue.local.clone()),
        _ => {}
    });
    reads.sort();
    reads.dedup();
    writes.sort();
    writes.dedup();

    let trigger_elements = extract_trigger_elements(&body);
    let trigger_syms = trigger_elements
        .as_ref()
        .map(|names| names.iter().map(|n| sym::intern(n)).collect());
    let plan = Arc::new(lower(&body));

    Ok(CompiledRule {
        name: rule.name.clone(),
        target: rule.target.clone(),
        on_slicing,
        error_queue: rule.error_queue.clone(),
        body,
        plan,
        reads_queues: reads,
        writes_queues: writes,
        trigger_elements,
        trigger_syms,
    })
}

/// Apply the compiler rewrites to a rule body.
fn rewrite_body(body: Expr, queue_ctx: Option<&str>, spec: &AppSpec) -> Expr {
    body.rewrite(&|e| match e {
        // Rewrite 1: qs:queue() -> qs:queue("<current queue>").
        Expr::FunctionCall { name, args }
            if name.prefix.as_deref() == Some("qs") && name.local == "queue" && args.is_empty() =>
        {
            match queue_ctx {
                Some(q) => Expr::FunctionCall {
                    name,
                    args: vec![Expr::StringLit(q.to_string())],
                },
                None => Expr::FunctionCall { name, args },
            }
        }
        // Rewrite 2: qs:property("p") for a fixed property with a binding on
        // the current queue -> the binding's value expression evaluated
        // against qs:message() (view merging).
        Expr::FunctionCall { name, args }
            if name.prefix.as_deref() == Some("qs")
                && name.local == "property"
                && args.len() == 1 =>
        {
            if let (Some(queue), Some(Expr::StringLit(pname))) = (queue_ctx, args.first()) {
                if let Some(prop) = spec.property(pname) {
                    if prop.kind == PropKind::Fixed {
                        if let Some(binding) = prop
                            .bindings
                            .iter()
                            .find(|b| b.queues.iter().any(|q| q == queue))
                        {
                            return rebase_on_message(binding.value.clone());
                        }
                    }
                }
            }
            Expr::FunctionCall { name, args }
        }
        other => other,
    })
}

/// Wrap a property value expression so its paths are evaluated against the
/// triggering message regardless of the surrounding evaluation context:
/// `//orderID` becomes `qs:message()//orderID`.
fn rebase_on_message(value: Expr) -> Expr {
    match value {
        Expr::Path { root: true, steps } => {
            let msg = Expr::FunctionCall {
                name: QName::parse_lexical("qs:message").expect("static name"),
                args: vec![],
            };
            let mut new_steps = steps;
            new_steps.insert(
                0,
                Expr::Filter {
                    base: Box::new(msg),
                    predicates: vec![],
                },
            );
            // Re-rooting: evaluate the steps relative to the message node.
            Expr::Path {
                root: false,
                steps: new_steps,
            }
        }
        other => other,
    }
}

/// If the rule body is `if (cond) then …`, extract the element names that
/// `cond` requires to exist (`//name`, `/name`, possibly under `and`). A
/// message whose payload contains none of them can skip the rule without
/// full evaluation.
fn extract_trigger_elements(body: &Expr) -> Option<Vec<String>> {
    let Expr::If { cond, .. } = body else {
        return None;
    };
    let mut names = Vec::new();
    if collect_required_elements(cond, &mut names) && !names.is_empty() {
        Some(names)
    } else {
        None
    }
}

/// Returns true when `e`'s truth definitely requires one of the collected
/// elements. Conservative: bail out (false) on anything not understood.
fn collect_required_elements(e: &Expr, out: &mut Vec<String>) -> bool {
    match e {
        Expr::Path { root: true, steps } => {
            // Find the first named child/descendant step.
            for s in steps {
                if let Expr::Step { axis, test, .. } = s {
                    if matches!(
                        axis,
                        Axis::Child | Axis::Descendant | Axis::DescendantOrSelf
                    ) {
                        if let NodeTest::Name(q) = test {
                            out.push(q.local.clone());
                            return true;
                        }
                    }
                }
            }
            false
        }
        // `a and b`: either side's requirement suffices (we pick the left
        // if extractable, else the right).
        Expr::And(a, b) => collect_required_elements(a, out) || collect_required_elements(b, out),
        // `a or b`: both sides must be extractable (union of requirements).
        Expr::Or(a, b) => {
            let mut left = Vec::new();
            let mut right = Vec::new();
            if collect_required_elements(a, &mut left) && collect_required_elements(b, &mut right) {
                out.extend(left);
                out.extend(right);
                true
            } else {
                false
            }
        }
        _ => false,
    }
}

/// Merge several rule bodies into the canonical per-queue plan: a sequence
/// expression concatenating all pending actions (paper Sec. 4.4.1). The
/// engine evaluates this once per message instead of once per rule.
pub fn merge_rules(rules: &[CompiledRule]) -> Option<Expr> {
    if rules.is_empty() {
        return None;
    }
    // Rules with distinct error queues cannot be merged without losing
    // error routing; fall back to rule-at-a-time in that case.
    if rules.iter().any(|r| r.error_queue.is_some()) {
        return None;
    }
    Some(Expr::Sequence(
        rules.iter().map(|r| r.body.clone()).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use demaq_qdl::parse_program;

    fn compile_first(src: &str) -> CompiledRule {
        let spec = parse_program(src).unwrap();
        let rule = spec.rules[0].clone();
        let on_slicing = spec.slicing(&rule.target).is_some();
        compile_rule(&rule, &spec, on_slicing).unwrap()
    }

    #[test]
    fn qs_queue_default_argument_injected() {
        let r = compile_first(
            r#"
            create queue finance kind basic mode persistent
            create rule checkPayment for finance
              if (//timeoutNotification) then
                do enqueue <reminder>{ qs:queue()[/paymentConfirmation] }</reminder> into finance
            "#,
        );
        let mut saw = false;
        r.body.visit(&mut |e| {
            if let Expr::FunctionCall { name, args } = e {
                if name.local == "queue" {
                    assert_eq!(args.len(), 1, "default argument injected");
                    assert!(matches!(&args[0], Expr::StringLit(s) if s == "finance"));
                    saw = true;
                }
            }
        });
        assert!(saw);
        assert_eq!(r.reads_queues, ["finance"]);
        assert_eq!(r.writes_queues, ["finance"]);
    }

    #[test]
    fn fixed_property_inlined() {
        let r = compile_first(
            r#"
            create queue order kind basic mode persistent
            create property orderID as xs:string fixed
              queue order value //orderID
            create rule tag for order
              if (//order) then
                do enqueue <t>{ qs:property("orderID") }</t> into order
            "#,
        );
        // The property call is gone; the value expr (rooted at
        // qs:message()) took its place.
        let mut prop_calls = 0;
        let mut message_calls = 0;
        r.body.visit(&mut |e| {
            if let Expr::FunctionCall { name, .. } = e {
                match name.local.as_str() {
                    "property" => prop_calls += 1,
                    "message" => message_calls += 1,
                    _ => {}
                }
            }
        });
        assert_eq!(prop_calls, 0, "fixed property was inlined");
        assert!(
            message_calls >= 1,
            "inlined expression is rebased on qs:message()"
        );
    }

    #[test]
    fn non_fixed_property_not_inlined() {
        let r = compile_first(
            r#"
            create queue q kind basic mode persistent
            create property vip as xs:boolean inherited queue q value false
            create rule check for q
              if (qs:property("vip") = true()) then do enqueue <v/> into q
            "#,
        );
        let mut prop_calls = 0;
        r.body.visit(&mut |e| {
            if let Expr::FunctionCall { name, .. } = e {
                if name.local == "property" {
                    prop_calls += 1;
                }
            }
        });
        assert_eq!(prop_calls, 1, "inherited properties stay runtime lookups");
    }

    #[test]
    fn trigger_elements_extracted() {
        let r = compile_first(
            r#"
            create queue crm kind basic mode persistent
            create rule newOfferRequest for crm
              if (//offerRequest) then do enqueue <x/> into crm
            "#,
        );
        assert_eq!(r.trigger_elements, Some(vec!["offerRequest".into()]));
    }

    #[test]
    fn trigger_extraction_is_conservative() {
        let r = compile_first(
            r#"
            create queue crm kind basic mode persistent
            create rule complex for crm
              if (count(//a) > 3) then do enqueue <x/> into crm
            "#,
        );
        assert_eq!(
            r.trigger_elements, None,
            "function conditions are not pre-filtered"
        );
    }

    #[test]
    fn trigger_or_requires_both_sides() {
        let r = compile_first(
            r#"
            create queue crm kind basic mode persistent
            create rule either for crm
              if (//offer or //refusal) then do enqueue <x/> into crm
            "#,
        );
        let mut t = r.trigger_elements.unwrap();
        t.sort();
        assert_eq!(t, ["offer", "refusal"]);
    }

    #[test]
    fn merged_plan_concatenates_bodies() {
        let spec = parse_program(
            r#"
            create queue q kind basic mode persistent
            create rule a for q if (//x) then do enqueue <a/> into q
            create rule b for q if (//y) then do enqueue <b/> into q
            "#,
        )
        .unwrap();
        let rules: Vec<CompiledRule> = spec
            .rules
            .iter()
            .map(|r| compile_rule(r, &spec, false).unwrap())
            .collect();
        let merged = merge_rules(&rules).unwrap();
        assert!(matches!(merged, Expr::Sequence(ref v) if v.len() == 2));
        assert!(merge_rules(&[]).is_none());
    }

    #[test]
    fn rules_with_error_queues_not_merged() {
        let spec = parse_program(
            r#"
            create queue q kind basic mode persistent
            create queue eq kind basic mode persistent
            create rule a for q errorqueue eq if (//x) then do enqueue <a/> into q
            "#,
        )
        .unwrap();
        let rules: Vec<CompiledRule> = spec
            .rules
            .iter()
            .map(|r| compile_rule(r, &spec, false).unwrap())
            .collect();
        assert!(merge_rules(&rules).is_none());
    }
}
