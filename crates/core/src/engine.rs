//! The Demaq server: execution model, error routing, time, and gateways.
//!
//! Implements the paper's Sec. 3.1 execution model: an iterative cycle
//! with detached coupling. Each unprocessed message is processed exactly
//! once; processing evaluates all rules pertaining to its queue (including
//! slicing rules) into a pending action list that executes in the same
//! store transaction. Many processing transactions may run concurrently
//! ([`Server::process_all_parallel`]) under queue- or slice-granularity
//! locking (Sec. 4.3).

use crate::aggregates::{AggLookup, AggRegistry, AggScope};
use crate::app::CompiledApp;
use crate::cache::{CachedDoc, DocCache, SeqLookup, SliceSeqCache};
use crate::compiler::CompiledRule;
use crate::errors::{error_message, kind};
use crate::gateway::GatewayManager;
use crate::host::{atomic_to_prop, prop_to_atomic, QsHost, SliceCtx, SliceLoader};
use crate::properties::{compute_properties, system, PropError};
use crate::scheduler::Scheduler;
use demaq_net::{Clock, Envelope, Network, TimerWheel};
use demaq_obs::{
    Counter, Gauge, Histogram, Lineage, LineageRecord, Obs, ProvenanceIndex, TraceCtx, TraceEvent,
    TraceFilter,
};
use demaq_qdl::{parse_program, AppSpec, QueueKind};
use demaq_store::store::SyncPolicy;
use demaq_store::{
    LockGranularity, LockKey, LockMode, MessageMeta, MessageStore, MsgId, PropValue, QueueMode,
    StoreError, StoreOptions, StoredMessage, TxnId,
};
use demaq_xml::{parse as parse_xml, Document, NodeRef};
use demaq_xquery::{
    AggAcc, AggOp, AggSource, AggregateSpec, Atomic, DynamicContext, Error as XqError, Evaluator,
    Expr, Item, Plan, PlanEvaluator, Sequence, StaticContext, Update,
};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Engine error.
#[derive(Debug)]
pub enum EngineError {
    Compile(String),
    Store(StoreError),
    Xml(String),
    Query(XqError),
    Config(String),
    /// Deploy-time static analysis found deny-severity diagnostics and
    /// the builder runs with [`StrictAnalysis::Deny`].
    Analysis(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Compile(m) => write!(f, "compile error: {m}"),
            EngineError::Store(e) => write!(f, "store error: {e}"),
            EngineError::Xml(m) => write!(f, "XML error: {m}"),
            EngineError::Query(e) => write!(f, "query error: {e}"),
            EngineError::Config(m) => write!(f, "configuration error: {m}"),
            EngineError::Analysis(m) => write!(f, "analysis rejected the application: {m}"),
        }
    }
}
impl std::error::Error for EngineError {}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}
impl From<XqError> for EngineError {
    fn from(e: XqError) -> Self {
        EngineError::Query(e)
    }
}

use crate::Result;

/// How rule bodies are evaluated per message (benchmark E6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// Evaluate each rule separately (precise error routing, trigger
    /// pre-filtering).
    RuleAtATime,
    /// Evaluate the merged per-queue canonical plan where possible
    /// (paper Sec. 4.4.1).
    Merged,
}

/// Counters exposed for tests, examples, and benchmarks — a thin snapshot
/// view over the [`demaq_obs::Registry`] (see [`Server::metrics`] for the
/// full per-queue/labeled series and histograms).
#[derive(Debug, Default, Clone)]
pub struct ServerStats {
    pub processed: u64,
    pub enqueued: u64,
    pub errors_routed: u64,
    pub rules_evaluated: u64,
    pub rules_skipped_by_filter: u64,
    pub deadlock_retries: u64,
    pub timers_fired: u64,
    pub gc_purged: u64,
    /// Rule bodies lowered to pre-resolved plans (process-wide).
    pub plans_lowered: u64,
    /// Existence tests that stopped at the first matching node
    /// (process-wide).
    pub ebv_short_circuits: u64,
    /// Distinct names in the global symbol table (process-wide).
    pub interned_symbols: u64,
}

/// Registry handles for the hot engine counters, resolved once at build so
/// per-message paths are plain atomic adds. Per-queue series
/// (`demaq_engine_processed_total{queue=..}`) are looked up per event —
/// one read-locked map probe per processed message.
struct EngineMetrics {
    rules_evaluated: Counter,
    rules_skipped: Counter,
    deadlock_retries: Counter,
    requeues: Counter,
    timers_fired: Counter,
    errors_routed: Counter,
    error_route_cycles: Counter,
    gc_purged: Counter,
    /// Slice members folded into their base and released for purge by the
    /// retention-narrowing sweep.
    retention_released: Counter,
    rule_eval_ns: Histogram,
    txn_commit_ns: Histogram,
    scheduler_depth: Gauge,
    /// Per-queue throughput counters, resolved once at build time (the
    /// queue set is fixed by the compiled application) so the hot path
    /// never re-derives a labeled series key.
    per_queue: HashMap<String, QueueCounters>,
    /// Per-rule attribution handles, keyed by rule name.
    per_rule: HashMap<String, RuleMetrics>,
}

struct QueueCounters {
    processed: Counter,
    enqueued: Counter,
}

/// Per-rule attribution handles, resolved once at build (the rule set is
/// fixed by the compiled application): evaluation wall time, firings, and
/// messages produced. Exposed as
/// `demaq_engine_rule_time_ns{rule=…}` / `…_rule_fires_total{rule=…}` /
/// `…_rule_produced_total{rule=…}` and snapshotted by
/// [`Server::rule_profiles`].
struct RuleMetrics {
    time_ns: Histogram,
    fires: Counter,
    produced: Counter,
}

/// Snapshot of one rule's wall-time attribution (from
/// [`Server::rule_profiles`]). Quantiles come from the log2 histogram
/// backing `demaq_engine_rule_time_ns{rule=…}`.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleProfile {
    /// Rule name as declared.
    pub rule: String,
    /// Times the rule body was evaluated.
    pub fires: u64,
    /// Messages its `do enqueue` actions produced.
    pub messages_produced: u64,
    /// Median evaluation time (ns).
    pub eval_ns_p50: u64,
    /// 99th-percentile evaluation time (ns).
    pub eval_ns_p99: u64,
    /// Mean evaluation time (ns).
    pub eval_ns_mean: f64,
    /// Total evaluation time (ns).
    pub eval_ns_total: u64,
}

impl EngineMetrics {
    fn new<'q>(
        obs: &Obs,
        queues: impl Iterator<Item = &'q str>,
        rules: impl Iterator<Item = &'q str>,
    ) -> EngineMetrics {
        let r = &obs.registry;
        let per_queue = queues
            .map(|q| {
                (
                    q.to_string(),
                    QueueCounters {
                        processed: r.counter_with("demaq_engine_processed_total", &[("queue", q)]),
                        enqueued: r.counter_with("demaq_engine_enqueued_total", &[("queue", q)]),
                    },
                )
            })
            .collect();
        let per_rule = rules
            .map(|name| {
                (
                    name.to_string(),
                    RuleMetrics {
                        time_ns: r.histogram_with("demaq_engine_rule_time_ns", &[("rule", name)]),
                        fires: r.counter_with("demaq_engine_rule_fires_total", &[("rule", name)]),
                        produced: r
                            .counter_with("demaq_engine_rule_produced_total", &[("rule", name)]),
                    },
                )
            })
            .collect();
        EngineMetrics {
            rules_evaluated: r.counter("demaq_engine_rules_evaluated_total"),
            rules_skipped: r.counter("demaq_engine_rules_skipped_total"),
            deadlock_retries: r.counter("demaq_engine_deadlock_retries_total"),
            requeues: r.counter("demaq_engine_requeues_total"),
            timers_fired: r.counter("demaq_engine_timers_fired_total"),
            errors_routed: r.counter("demaq_engine_errors_routed_total"),
            error_route_cycles: r.counter("demaq_core_error_route_cycles_total"),
            gc_purged: r.counter("demaq_engine_gc_purged_total"),
            retention_released: r.counter("demaq_engine_retention_released_total"),
            rule_eval_ns: r.histogram("demaq_engine_rule_eval_ns"),
            txn_commit_ns: r.histogram("demaq_engine_txn_commit_ns"),
            scheduler_depth: r.gauge("demaq_engine_scheduler_depth"),
            per_queue,
            per_rule,
        }
    }

    /// Attribute one rule evaluation: wall time + firing count.
    fn record_rule_eval(&self, rule: &str, elapsed: std::time::Duration) {
        if let Some(rm) = self.per_rule.get(rule) {
            rm.time_ns.record(elapsed);
            rm.fires.inc();
        }
    }

    /// Attribute one produced message to the rule that enqueued it.
    fn record_rule_produced(&self, rule: &str) {
        if let Some(rm) = self.per_rule.get(rule) {
            rm.produced.inc();
        }
    }

    fn inc_processed(&self, obs: &Obs, queue: &str) {
        match self.per_queue.get(queue) {
            Some(c) => c.processed.inc(),
            None => obs
                .registry
                .counter_with("demaq_engine_processed_total", &[("queue", queue)])
                .inc(),
        }
    }

    fn inc_enqueued(&self, obs: &Obs, queue: &str) {
        match self.per_queue.get(queue) {
            Some(c) => c.enqueued.inc(),
            None => obs
                .registry
                .counter_with("demaq_engine_enqueued_total", &[("queue", queue)])
                .inc(),
        }
    }
}

/// What to do with deploy-time analysis diagnostics (the whole-application
/// pass of `demaq-analysis`, paper Sec. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrictAnalysis {
    /// Skip reporting entirely (the analysis still runs: the engine's
    /// lock-order derivation needs its flow graph).
    Off,
    /// Record diagnostics as trace events and
    /// `demaq_core_analysis_diagnostics_total{severity=…}` counters;
    /// deployment proceeds. The default.
    Warn,
    /// Additionally refuse to deploy when any diagnostic has deny
    /// severity.
    Deny,
}

/// Payload parked on an echo-queue timer.
#[derive(Debug, Clone, PartialEq)]
struct TimerJob {
    target: String,
    payload: String,
    props: Vec<(String, PropValue)>,
}
impl Eq for TimerJob {}

/// Builder for [`Server`].
#[derive(Clone)]
pub struct ServerBuilder {
    pub(crate) program: Option<String>,
    pub(crate) spec: Option<AppSpec>,
    pub(crate) dir: Option<PathBuf>,
    pub(crate) in_memory: bool,
    sync: SyncPolicy,
    group_commit: Option<(usize, std::time::Duration)>,
    batched_apply: bool,
    lock_granularity: LockGranularity,
    plan_mode: PlanMode,
    pub(crate) seed: u64,
    pub(crate) clock: Option<Clock>,
    pub(crate) network: Option<Arc<Network>>,
    wsdl_files: HashMap<String, String>,
    collections: HashMap<String, Vec<Arc<Document>>>,
    pub(crate) server_addr: String,
    pub(crate) start_time_ms: i64,
    pub(crate) obs: Option<Arc<Obs>>,
    doc_cache_shards: usize,
    doc_cache_budget: usize,
    slice_seq_cache: bool,
    incremental_aggregates: bool,
    lowered_plans: bool,
    static_retention: bool,
    strict_analysis: StrictAnalysis,
    analysis_lock_order: bool,
    pub(crate) provenance_capacity: usize,
    pub(crate) trace_capacity: Option<usize>,
    /// Base added to freshly allocated message ids (shard `i` of a
    /// [`crate::shard::ShardedServer`] gets `i << 48`, so ids are unique
    /// across shards without coordination).
    pub(crate) msg_id_base: u64,
    /// Link back to the shard router when this server is one shard of a
    /// [`crate::shard::ShardedServer`]. `None` for a standalone server.
    pub(crate) shard_link: Option<Arc<crate::shard::ShardLink>>,
    /// When `Some`, only the named incoming-gateway queues register network
    /// listeners (each gateway listens on exactly one shard).
    pub(crate) incoming_gateways: Option<HashSet<String>>,
    /// Share one causal provenance index across shards so lineage chains
    /// that hop shards stay queryable from any of them.
    pub(crate) shared_provenance: Option<Arc<ProvenanceIndex>>,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        ServerBuilder {
            program: None,
            spec: None,
            dir: None,
            in_memory: false,
            sync: SyncPolicy::Always,
            group_commit: None,
            batched_apply: true,
            lock_granularity: LockGranularity::Slice,
            plan_mode: PlanMode::RuleAtATime,
            seed: 7,
            clock: None,
            network: None,
            wsdl_files: HashMap::new(),
            collections: HashMap::new(),
            server_addr: "demaq://node".into(),
            start_time_ms: 0,
            obs: None,
            doc_cache_shards: 16,
            doc_cache_budget: 64 << 20,
            slice_seq_cache: true,
            incremental_aggregates: true,
            lowered_plans: true,
            static_retention: true,
            strict_analysis: StrictAnalysis::Warn,
            analysis_lock_order: true,
            provenance_capacity: 65_536,
            trace_capacity: None,
            msg_id_base: 0,
            shard_link: None,
            incoming_gateways: None,
            shared_provenance: None,
        }
    }
}

impl ServerBuilder {
    /// QDL/QML source of the application.
    pub fn program(mut self, src: &str) -> Self {
        self.program = Some(src.to_string());
        self
    }

    /// Pre-parsed application.
    pub fn spec(mut self, spec: AppSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Store directory (persistent across restarts).
    pub fn dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// Use a throwaway temp directory (examples, tests).
    pub fn in_memory(mut self) -> Self {
        self.in_memory = true;
        self
    }

    /// Commit durability policy.
    pub fn sync_policy(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// Group-commit tuning: how many commits one WAL fsync may cover and
    /// how long a sync leader waits for committers to join its batch.
    /// `max_batch <= 1` reverts to one fsync per commit (benchmark E9's
    /// baseline). Defaults to the store's group-commit defaults.
    pub fn group_commit(mut self, max_batch: usize, max_wait: std::time::Duration) -> Self {
        self.group_commit = Some((max_batch, max_wait));
        self
    }

    /// Batched logical apply: post-WAL commit effects are applied by a
    /// leader for a whole batch of committers under one state-lock
    /// acquisition (the logical-apply analogue of group commit). Disable
    /// for the apply-per-commit baseline (benchmark E12's comparison
    /// knob). Defaults to enabled.
    pub fn batched_apply(mut self, enabled: bool) -> Self {
        self.batched_apply = enabled;
        self
    }

    /// Lock granularity (paper Sec. 4.3; benchmark E3).
    pub fn lock_granularity(mut self, g: LockGranularity) -> Self {
        self.lock_granularity = g;
        self
    }

    /// Rule evaluation mode (benchmark E6).
    pub fn plan_mode(mut self, m: PlanMode) -> Self {
        self.plan_mode = m;
        self
    }

    /// RNG seed for the network failure injection.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Use an existing clock (sharing time with other servers).
    pub fn clock(mut self, clock: Clock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Use an existing network (multi-node scenarios).
    pub fn network(mut self, net: Arc<Network>) -> Self {
        self.network = Some(net);
        self
    }

    /// Provide the content of a WSDL file referenced by an `interface`
    /// clause.
    pub fn wsdl_file(mut self, name: &str, content: &str) -> Self {
        self.wsdl_files
            .insert(name.to_string(), content.to_string());
        self
    }

    /// Register master data reachable via `fn:collection(name)`.
    pub fn collection(mut self, name: &str, docs: Vec<Arc<Document>>) -> Self {
        self.collections.insert(name.to_string(), docs);
        self
    }

    /// This node's transport address.
    pub fn server_addr(mut self, addr: &str) -> Self {
        self.server_addr = addr.to_string();
        self
    }

    /// Virtual-clock start (epoch ms).
    pub fn start_time_ms(mut self, ms: i64) -> Self {
        self.start_time_ms = ms;
        self
    }

    /// Use an existing observability context (sharing one registry across
    /// several servers, or pre-sizing the trace ring). Defaults to a fresh
    /// [`Obs::new`].
    pub fn obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Byte budget of the sharded parsed-document cache. 0 disables it
    /// (every access re-parses — the benchmark E10 baseline). Defaults to
    /// 64 MiB.
    pub fn doc_cache_budget(mut self, bytes: usize) -> Self {
        self.doc_cache_budget = bytes;
        self
    }

    /// Shard count of the document cache (rounded up to a power of two).
    /// Defaults to 16.
    pub fn doc_cache_shards(mut self, shards: usize) -> Self {
        self.doc_cache_shards = shards;
        self
    }

    /// Enable or disable the materialized slice-sequence cache. Defaults
    /// to enabled.
    pub fn slice_seq_cache(mut self, enabled: bool) -> Self {
        self.slice_seq_cache = enabled;
        self
    }

    /// Enable or disable the incremental aggregate registry (materialized
    /// `count`/`sum`/`min`/`max`/`exists` cells over queues and slices,
    /// validated by the store's version clocks). Defaults to enabled;
    /// `false` keeps the reference rescan engine — the differential twin.
    pub fn incremental_aggregates(mut self, enabled: bool) -> Self {
        self.incremental_aggregates = enabled;
        self
    }

    /// Evaluate rule bodies through the lowered execution plans (interned
    /// name tests, slot-resolved variables, folded constants, streaming
    /// existence tests) instead of the reference AST interpreter. Defaults
    /// to enabled; disable for the benchmark E11 baseline.
    pub fn lowered_plans(mut self, enabled: bool) -> Self {
        self.lowered_plans = enabled;
        self
    }

    /// Act on the liveness analysis's retention plan: slices whose read
    /// shape provably never needs full member history get narrowed during
    /// GC — aggregate-only slices fold processed members into persisted
    /// base cells and drop the payloads, bounded-suffix slices keep only
    /// the proven horizon, unread slices drop processed members outright.
    /// Defaults to enabled; `false` keeps the reference retain-everything
    /// behavior — the differential twin. Only effective together with
    /// [`Self::incremental_aggregates`] and [`Self::lowered_plans`] (the
    /// reference rescan engine must see full history to stay a faithful
    /// oracle).
    pub fn static_retention(mut self, enabled: bool) -> Self {
        self.static_retention = enabled;
        self
    }

    /// What to do with deploy-time analysis diagnostics. Defaults to
    /// [`StrictAnalysis::Warn`].
    pub fn strict_analysis(mut self, mode: StrictAnalysis) -> Self {
        self.strict_analysis = mode;
        self
    }

    /// Acquire queue locks in the analysis-derived global flow order
    /// (deadlock avoidance). Disable to fall back to plain name order
    /// (the pre-analysis behavior; benchmark comparison knob). Defaults
    /// to enabled.
    pub fn analysis_lock_order(mut self, enabled: bool) -> Self {
        self.analysis_lock_order = enabled;
        self
    }

    /// Capacity of the in-memory causal provenance index (records, min
    /// 64). The index is a cache over the store's durable lineage;
    /// eviction never loses durable information. Defaults to 65 536.
    pub fn provenance_capacity(mut self, records: usize) -> Self {
        self.provenance_capacity = records;
        self
    }

    /// Capacity of the trace ring (events retained before overwrite).
    /// Defaults to the [`Obs::new`] default (4096). Ignored when an
    /// existing observability context is supplied via [`Self::obs`] —
    /// that context's ring is already sized.
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.trace_capacity = Some(events);
        self
    }

    /// Partition the application across `n` engine shards, each with its
    /// own store (private WAL, slice index, document cache) and worker
    /// pool. Queue placement is derived from the flow graph so hot rule
    /// chains stay shard-local; `shards(1)` degrades to a single server
    /// behaviorally identical to [`Self::build`].
    ///
    /// [`Self::in_memory`] has no sharded equivalent: the sharded builder
    /// downgrades it to on-disk stores under a process-temp directory
    /// that is removed when the `ShardedServer` drops.
    pub fn shards(self, n: usize) -> crate::shard::ShardedServerBuilder {
        crate::shard::ShardedServerBuilder::new(self, n)
    }

    /// Compile the application and open the store.
    pub fn build(self) -> Result<Server> {
        let spec = match (self.spec, self.program) {
            (Some(s), _) => s,
            (None, Some(p)) => {
                parse_program(&p).map_err(|e| EngineError::Compile(e.to_string()))?
            }
            (None, None) => return Err(EngineError::Config("no program provided".into())),
        };
        let app = CompiledApp::compile(spec, &self.wsdl_files)
            .map_err(|e| EngineError::Compile(e.to_string()))?;

        if self.strict_analysis == StrictAnalysis::Deny && app.analysis.has_deny() {
            let msgs: Vec<String> = app
                .analysis
                .diagnostics
                .iter()
                .filter(|d| d.severity == demaq_analysis::Severity::Deny)
                .map(|d| d.to_string())
                .collect();
            return Err(EngineError::Analysis(msgs.join("; ")));
        }

        let dir = match (self.dir, self.in_memory) {
            (Some(d), _) => d,
            (None, true) => std::env::temp_dir().join(format!(
                "demaq-{}-{}",
                std::process::id(),
                NEXT_TMP.fetch_add(1, Ordering::Relaxed)
            )),
            (None, false) => {
                return Err(EngineError::Config(
                    "choose a store directory with .dir(..) or .in_memory()".into(),
                ))
            }
        };
        let obs = self.obs.unwrap_or_else(|| match self.trace_capacity {
            Some(events) => Obs::with_trace_capacity(events),
            None => Obs::new(),
        });
        if self.strict_analysis != StrictAnalysis::Off {
            for d in &app.analysis.diagnostics {
                obs.registry
                    .counter_with(
                        "demaq_core_analysis_diagnostics_total",
                        &[("severity", d.severity.as_str())],
                    )
                    .inc();
                obs.tracer.event("analysis.diagnostic", None, &d.subject, &d.message);
            }
        }
        let mut opts = StoreOptions::new(dir);
        opts.sync = self.sync;
        if let Some((max_batch, max_wait)) = self.group_commit {
            opts.group_commit_max_batch = max_batch;
            opts.group_commit_max_wait = max_wait;
        }
        opts.batched_apply = self.batched_apply;
        opts.lock_granularity = self.lock_granularity;
        opts.msg_id_base = self.msg_id_base;
        opts.obs = Some(Arc::clone(&obs));
        let store = Arc::new(MessageStore::open(opts)?);

        // Declare queues (idempotent against recovered state).
        for (name, q) in &app.queues {
            let mode = if q.decl.persistent {
                QueueMode::Persistent
            } else {
                QueueMode::Transient
            };
            store.create_queue(name, mode, q.decl.priority)?;
        }

        // Clock resolution: explicit > the supplied network's clock (time
        // must be shared, or fast-forwarding would desynchronize delivery)
        // > a fresh virtual clock.
        let clock = match (&self.clock, &self.network) {
            (Some(c), _) => c.clone(),
            (None, Some(net)) => net.clock().clone(),
            (None, None) => Clock::virtual_at(self.start_time_ms),
        };
        let net = self
            .network
            .unwrap_or_else(|| Arc::new(Network::new(clock.clone(), self.seed)));
        net.attach_obs(&obs);
        let app = Arc::new(app);
        let gateways = GatewayManager::with_incoming_filter(
            &app,
            Arc::clone(&net),
            self.server_addr,
            Arc::clone(&obs),
            self.incoming_gateways.as_ref(),
        );
        let timers = TimerWheel::new();
        timers.attach_fire_counter(obs.registry.counter("demaq_net_timer_fired_total"));
        let metrics = EngineMetrics::new(
            &obs,
            app.queues.keys().map(String::as_str),
            app.queues
                .values()
                .flat_map(|q| q.rules.iter())
                .chain(app.slicings.values().flat_map(|s| s.rules.iter()))
                .map(|r| r.name.as_str()),
        );

        // Rebuild the causal index from the store's durable lineage (WAL
        // `Lineage` records replayed by recovery), then backfill root
        // records for causal-tree roots that are still retained — roots
        // have no durable edge of their own.
        let provenance = self
            .shared_provenance
            .unwrap_or_else(|| Arc::new(ProvenanceIndex::new(self.provenance_capacity)));
        let edges = store.lineage_edges();
        for e in &edges {
            provenance.record(LineageRecord {
                msg: e.msg.0,
                parent: Some(e.parent.0),
                root: e.root.0,
                rule: (!e.rule.is_empty()).then(|| e.rule.clone()),
                queue: e.queue.clone(),
                lsn: e.lsn.map(|l| l.0),
            });
        }
        let derived: HashSet<u64> = edges.iter().map(|e| e.msg.0).collect();
        for e in &edges {
            if !derived.contains(&e.root.0) {
                if let Ok(meta) = store.message_meta(e.root) {
                    provenance.record(LineageRecord {
                        msg: e.root.0,
                        parent: None,
                        root: e.root.0,
                        rule: None,
                        queue: meta.queue.clone(),
                        lsn: None,
                    });
                }
            }
        }

        // The narrowing sweep and the base-aware read path are one
        // mechanism: without the incremental registry + lowered plans,
        // reads rescan raw members and must see full history — so
        // narrowing only activates when all three switches are on.
        let narrow = if self.static_retention && self.incremental_aggregates && self.lowered_plans {
            let plans = narrow_plans(&app);
            (!plans.is_empty()).then_some(plans)
        } else {
            None
        };
        let server = Server {
            app,
            store,
            net,
            clock,
            timers,
            gateways,
            scheduler: Scheduler::new(),
            collections: Arc::new(self.collections),
            plan_mode: self.plan_mode,
            lowered_plans: self.lowered_plans,
            metrics,
            doc_cache: Arc::new(DocCache::new(
                self.doc_cache_shards,
                self.doc_cache_budget,
                &obs,
            )),
            slice_seq: Arc::new(SliceSeqCache::new(16, 4096, self.slice_seq_cache, &obs)),
            agg: if self.incremental_aggregates {
                Some(Arc::new(AggRegistry::new(16, 4096, &obs)))
            } else {
                None
            },
            narrow,
            obs,
            analysis_lock_order: self.analysis_lock_order,
            provenance,
            shard_link: self.shard_link,
            active_workers: AtomicUsize::new(0),
        };
        // Recovery: re-schedule surviving unprocessed messages.
        for (msg, queue, prio) in server.store.unprocessed() {
            server.sched_push(msg, &queue, prio);
        }
        Ok(server)
    }
}

static NEXT_TMP: AtomicU64 = AtomicU64::new(0);

/// How the GC sweep may narrow one slicing's retained history, lowered at
/// build time from the liveness analysis's [`demaq_analysis::SlicePlan`].
/// Only provably narrowable slicings get an entry; everything else keeps
/// the paper's full retain-until-reset behavior.
#[derive(Debug)]
enum NarrowMode {
    /// All reads are recognized aggregates: fold processed members into
    /// the slice's base cells (one per distinct aggregate signature), then
    /// release them.
    Aggregate(Vec<AggregateSpec>),
    /// All reads are `[last()]`-style suffixes: release processed members
    /// beyond the proven horizon of `k` newest.
    Suffix(usize),
}

/// Lower the analysis retention plan into per-slicing narrow modes. For
/// aggregate-only slicings the folded specs are re-recognized from the
/// slicing rule bodies — the same recognizer the lowered plans use, so the
/// base cells the sweep writes are exactly the cells reads will consult.
fn narrow_plans(app: &CompiledApp) -> HashMap<String, NarrowMode> {
    use demaq_analysis::ReadShape;
    let mut plans = HashMap::new();
    for (name, plan) in &app.analysis.retention.slicings {
        if !plan.narrowable {
            continue;
        }
        let mode = match plan.shape {
            // An unread slice may still be the application's *output* —
            // retained precisely so an external consumer can inspect it
            // (rules never reading it proves nothing about the outside).
            // Only read shapes that pin down what the contents are *for*
            // justify dropping them.
            ReadShape::Unread => continue,
            ReadShape::BoundedSuffix(k) => NarrowMode::Suffix(k),
            ReadShape::AggregateOnly => {
                let mut specs: Vec<AggregateSpec> = Vec::new();
                if let Some(slicing) = app.slicings.get(name) {
                    for rule in &slicing.rules {
                        rule.body.visit(&mut |e| {
                            if let Some(spec) = demaq_xquery::recognize_aggregate(e) {
                                if matches!(spec.source, AggSource::Slice)
                                    && !specs.iter().any(|s| s.stable_sig() == spec.stable_sig())
                                {
                                    specs.push(spec);
                                }
                            }
                        });
                    }
                }
                if specs.is_empty() {
                    // Analysis saw aggregate reads the recognizer cannot
                    // fold here — leave the slice fully retained.
                    continue;
                }
                NarrowMode::Aggregate(specs)
            }
            // Narrowable excludes FullScan by construction.
            ReadShape::FullScan => continue,
        };
        plans.insert(name.clone(), mode);
    }
    plans
}

/// A running Demaq node.
pub struct Server {
    app: Arc<CompiledApp>,
    store: Arc<MessageStore>,
    net: Arc<Network>,
    clock: Clock,
    timers: TimerWheel<TimerJob>,
    gateways: GatewayManager,
    scheduler: Scheduler,
    collections: Arc<HashMap<String, Vec<Arc<Document>>>>,
    plan_mode: PlanMode,
    /// Evaluate rule bodies through lowered plans (see [`demaq_xquery::plan`]).
    lowered_plans: bool,
    obs: Arc<Obs>,
    metrics: EngineMetrics,
    /// Sharded LRU over parsed message documents, shared with the
    /// `qs:queue()` reader closures (see [`crate::cache`]).
    doc_cache: Arc<DocCache>,
    /// Materialized slice member sequences, validated against the store's
    /// slice version counters.
    slice_seq: Arc<SliceSeqCache>,
    /// Materialized aggregate cells (ISSUE 9), validated against the same
    /// version clocks; `None` runs the reference rescan engine.
    agg: Option<Arc<AggRegistry>>,
    /// Per-slicing retention narrowing derived from the liveness
    /// analysis; `None` retains full history (analysis found nothing
    /// narrowable, or [`ServerBuilder::static_retention`] is off).
    narrow: Option<HashMap<String, NarrowMode>>,
    /// Order queue locks by the analysis-derived flow rank (deadlock
    /// avoidance) instead of plain name order.
    analysis_lock_order: bool,
    /// Bounded causal index over message lineage — a cache over the
    /// store's durable `Lineage` records, rebuilt at startup. Shared
    /// across shards of a [`crate::shard::ShardedServer`].
    provenance: Arc<ProvenanceIndex>,
    /// Routing directory link when this server is one shard of a
    /// [`crate::shard::ShardedServer`].
    shard_link: Option<Arc<crate::shard::ShardLink>>,
    active_workers: AtomicUsize,
}

impl Server {
    /// Start building a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// The compiled application.
    pub fn app(&self) -> &CompiledApp {
        &self.app
    }

    /// The underlying store (inspection, checkpoints).
    pub fn store(&self) -> &Arc<MessageStore> {
        &self.store
    }

    /// The simulated network.
    pub fn network(&self) -> &Arc<Network> {
        &self.net
    }

    /// The engine clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Statistics snapshot — a thin view over the metric registry
    /// (per-queue counters summed across their labels).
    pub fn stats(&self) -> ServerStats {
        self.sync_xquery_metrics();
        let r = &self.obs.registry;
        ServerStats {
            processed: r.counter_total("demaq_engine_processed_total"),
            enqueued: r.counter_total("demaq_engine_enqueued_total"),
            errors_routed: self.metrics.errors_routed.get(),
            rules_evaluated: self.metrics.rules_evaluated.get(),
            rules_skipped_by_filter: self.metrics.rules_skipped.get(),
            deadlock_retries: self.metrics.deadlock_retries.get(),
            timers_fired: self.metrics.timers_fired.get(),
            gc_purged: self.metrics.gc_purged.get(),
            plans_lowered: demaq_xquery::plan::plans_lowered_total(),
            ebv_short_circuits: demaq_xquery::plan::ebv_short_circuits_total(),
            interned_symbols: demaq_xml::sym::interned_count(),
        }
    }

    /// The observability context (registry + tracer) of this server.
    pub fn metrics(&self) -> Arc<Obs> {
        Arc::clone(&self.obs)
    }

    /// All registered metrics in Prometheus text exposition format.
    pub fn metrics_text(&self) -> String {
        self.sync_xquery_metrics();
        self.obs.registry.render_text()
    }

    /// Mirror the process-global lowered-plan counters into this server's
    /// registry so they appear in the text exposition. Counters only move
    /// forward, so the delta-add converges even when several servers share
    /// one registry.
    fn sync_xquery_metrics(&self) {
        let r = &self.obs.registry;
        for (name, global) in [
            (
                "demaq_xquery_plans_lowered_total",
                demaq_xquery::plan::plans_lowered_total(),
            ),
            (
                "demaq_xquery_ebv_short_circuits_total",
                demaq_xquery::plan::ebv_short_circuits_total(),
            ),
            (
                "demaq_core_prop_const_hits_total",
                crate::properties::prop_const_hits_total(),
            ),
        ] {
            let c = r.counter(name);
            let seen = c.get();
            if global > seen {
                c.add(global - seen);
            }
        }
        r.gauge("demaq_xquery_interned_symbols")
            .set(demaq_xml::sym::interned_count() as i64);
    }

    /// The most recent `n` trace events, oldest first.
    pub fn trace_tail(&self, n: usize) -> Vec<TraceEvent> {
        self.obs.tracer.tail(n)
    }

    /// The most recent `n` trace events matching `filter` (by queue,
    /// message id, or causal tree), oldest first.
    pub fn trace_tail_filtered(&self, n: usize, filter: &TraceFilter) -> Vec<TraceEvent> {
        self.obs.tracer.tail_filtered(n, filter)
    }

    /// Full causal chain of one message: its own lineage record, all
    /// ancestors up to the root, and all descendants breadth-first. Served
    /// from the bounded in-memory index, which mirrors the store's durable
    /// lineage — after a crash the chain is rebuilt from the WAL alone.
    pub fn lineage(&self, msg: MsgId) -> Lineage {
        self.provenance.lineage(msg.0)
    }

    /// The causal provenance index (bounded; see
    /// [`ServerBuilder::provenance_capacity`]).
    pub fn provenance(&self) -> &ProvenanceIndex {
        &self.provenance
    }

    /// Per-rule wall-time attribution: evaluation-time quantiles, firing
    /// counts, and messages produced, one entry per declared rule, sorted
    /// by total evaluation time descending.
    pub fn rule_profiles(&self) -> Vec<RuleProfile> {
        let mut out: Vec<RuleProfile> = self
            .metrics
            .per_rule
            .iter()
            .map(|(name, rm)| RuleProfile {
                rule: name.clone(),
                fires: rm.fires.get(),
                messages_produced: rm.produced.get(),
                eval_ns_p50: rm.time_ns.p50(),
                eval_ns_p99: rm.time_ns.p99(),
                eval_ns_mean: rm.time_ns.mean_ns(),
                eval_ns_total: rm.time_ns.sum_ns(),
            })
            .collect();
        out.sort_by(|a, b| b.eval_ns_total.cmp(&a.eval_ns_total).then(a.rule.cmp(&b.rule)));
        out
    }

    // ---- message ingestion ----------------------------------------------------

    /// Enqueue an external message (as if received out-of-band). Validates
    /// against the queue schema.
    pub fn enqueue_external(&self, queue: &str, xml: &str) -> Result<MsgId> {
        self.enqueue_with(queue, xml, &[], None, Vec::new(), false, "")?
            .ok_or_else(|| Self::remote_home_error(queue))
    }

    /// Enqueue with explicit property values.
    pub fn enqueue_external_with_props(
        &self,
        queue: &str,
        xml: &str,
        explicit: &[(String, Atomic)],
    ) -> Result<MsgId> {
        self.enqueue_with(queue, xml, explicit, None, Vec::new(), false, "")?
            .ok_or_else(|| Self::remote_home_error(queue))
    }

    fn remote_home_error(queue: &str) -> EngineError {
        EngineError::Config(format!(
            "queue `{queue}` is homed on another shard for this message's \
             slicing key; enqueue through the ShardedServer"
        ))
    }

    /// Shared non-rule enqueue path (external API, gateway ingest, timer
    /// echo, error routing). `via` labels the causal hop in the lineage
    /// record when `system_props` carry a `parentMsg` — e.g. `"<gateway>"`
    /// for an ingested reply that names its remote-side parent.
    ///
    /// Returns `Ok(None)` when the target queue is homed on another shard
    /// of a [`crate::shard::ShardedServer`] and `allow_forward` is set:
    /// the fully prepared message (payload + computed properties) is
    /// handed to that shard's mailbox and committed there. With
    /// `allow_forward` false a remote-homed target is an error — external
    /// enqueues must go through the sharded front door, which routes
    /// before picking a shard.
    #[allow(clippy::too_many_arguments)]
    fn enqueue_with(
        &self,
        queue: &str,
        xml: &str,
        explicit: &[(String, Atomic)],
        trigger_props: Option<&[(String, PropValue)]>,
        mut system_props: Vec<(String, PropValue)>,
        allow_forward: bool,
        via: &str,
    ) -> Result<Option<MsgId>> {
        let cq = self
            .app
            .queues
            .get(queue)
            .ok_or_else(|| EngineError::Config(format!("unknown queue `{queue}`")))?;
        let doc = parse_xml(xml).map_err(|e| EngineError::Xml(e.to_string()))?;
        if let Some(schema) = &cq.schema {
            let violations = schema.validate(&doc.root());
            if !violations.is_empty() {
                return Err(EngineError::Xml(format!(
                    "schema violation on `{queue}`: {}",
                    violations[0]
                )));
            }
        }
        let now = self.clock.now();
        if !system_props.iter().any(|(n, _)| n == system::CREATED_AT) {
            system_props.push((system::CREATED_AT.to_string(), PropValue::DateTime(now)));
        }
        let props = compute_properties(
            &self.app,
            queue,
            &doc.root(),
            explicit,
            trigger_props,
            system_props,
            now,
        )
        .map_err(|e| EngineError::Compile(e.to_string()))?;

        if let Some(link) = &self.shard_link {
            if let Some(dest) = link.remote_destination(queue, &props) {
                if !allow_forward {
                    return Err(Self::remote_home_error(queue));
                }
                link.forward(crate::shard::Forwarded {
                    dest,
                    queue: queue.to_string(),
                    xml: xml.to_string(),
                    props,
                    enqueued_at: now,
                    via: via.to_string(),
                });
                return Ok(None);
            }
        }
        self.enqueue_prepared(queue, xml, Some(doc), props, now, via)
            .map(Some)
    }

    /// Commit a message whose payload and properties are already fully
    /// prepared (properties computed, schema validated) into the local
    /// store, then run every post-commit effect. This is the landing half
    /// of [`Self::enqueue_with`] and of a cross-shard forward — properties
    /// are deterministic in the trigger and payload, so the destination
    /// shard commits exactly what local execution would have.
    pub(crate) fn enqueue_prepared(
        &self,
        queue: &str,
        xml: &str,
        doc: Option<Arc<Document>>,
        props: Vec<(String, PropValue)>,
        enqueued_at: i64,
        via: &str,
    ) -> Result<MsgId> {
        let cq = self
            .app
            .queues
            .get(queue)
            .ok_or_else(|| EngineError::Config(format!("unknown queue `{queue}`")))?;

        // Causal provenance threaded through system properties: a gateway
        // hop, timer echo, or cross-shard forward names its parent (and
        // causal root) here, and the edge goes through the WAL inside the
        // enqueue transaction.
        let parent = props.iter().find_map(|(n, v)| match v {
            PropValue::Int(p) if n == system::PARENT_MSG => Some(*p as u64),
            _ => None,
        });
        let root = props
            .iter()
            .find_map(|(n, v)| match v {
                PropValue::Int(r) if n == system::ROOT_MSG => Some(*r as u64),
                _ => None,
            })
            .or(parent);

        let txn = self.store.begin();
        let result = (|| -> Result<MsgId> {
            let id = self
                .store
                .enqueue(txn, queue, xml.into(), props.clone(), enqueued_at)?;
            self.add_slice_memberships(txn, id, &props)?;
            if let (Some(p), Some(r)) = (parent, root) {
                self.store
                    .record_lineage(txn, id, MsgId(p), MsgId(r), via, queue)?;
            }
            self.store.commit(txn)?;
            Ok(id)
        })();
        match result {
            Ok(id) => {
                self.metrics.inc_enqueued(&self.obs, queue);
                self.obs.tracer.event_ctx(
                    "msg.enqueue",
                    Some(id.0),
                    queue,
                    via,
                    TraceCtx::new(Some(root.unwrap_or(id.0)), parent),
                );
                self.record_provenance(id, queue);
                if let Some(doc) = doc {
                    self.doc_cache.insert(id, doc, xml.len());
                }
                self.sched_push(id, queue, cq.decl.priority);
                self.metrics
                    .scheduler_depth
                    .set(self.scheduler.len() as i64);
                self.post_commit_queue_effects(queue, id)?;
                Ok(id)
            }
            Err(e) => {
                self.store.abort(txn);
                Err(e)
            }
        }
    }

    /// Land a message forwarded from another shard: commit it into the
    /// local store with the properties computed on the trigger's shard.
    /// Borrows the forward so a failed ingest can be retried.
    pub(crate) fn ingest_forwarded(&self, f: &crate::shard::Forwarded) -> Result<MsgId> {
        self.enqueue_prepared(&f.queue, &f.xml, None, f.props.clone(), f.enqueued_at, &f.via)
    }

    /// Insert into the scheduler, keeping the shard router's conserved
    /// pending count (drain-termination proof, see
    /// [`crate::shard::ShardRouter`]) in step with every accepted
    /// insertion. All scheduling goes through here or
    /// [`Self::sched_requeue`].
    fn sched_push(&self, msg: MsgId, queue: &str, priority: i32) {
        if self.scheduler.push(msg, queue, priority) {
            if let Some(link) = &self.shard_link {
                link.router.note_scheduled();
            }
        }
    }

    /// [`Self::sched_push`] for deadlock-retry requeues.
    fn sched_requeue(&self, msg: MsgId, queue: &str, priority: i32) {
        if self.scheduler.requeue(msg, queue, priority) {
            if let Some(link) = &self.shard_link {
                link.router.note_scheduled();
            }
        }
    }

    /// Register slice memberships for a freshly enqueued message: for every
    /// slicing whose key property the message carries.
    fn add_slice_memberships(
        &self,
        txn: TxnId,
        msg: MsgId,
        props: &[(String, PropValue)],
    ) -> Result<()> {
        for (pname, value) in props {
            if let Some(slicings) = self.app.slicings_by_property.get(pname) {
                for s in slicings {
                    self.store.slice_add(txn, s, value.clone(), msg)?;
                }
            }
        }
        Ok(())
    }

    /// Mirror a freshly committed message's lineage into the in-memory
    /// causal index: the store's durable edge when one was recorded, a
    /// root record otherwise.
    fn record_provenance(&self, id: MsgId, queue: &str) {
        match self.store.lineage_of(id) {
            Some(e) => self.provenance.record(LineageRecord {
                msg: e.msg.0,
                parent: Some(e.parent.0),
                root: e.root.0,
                rule: (!e.rule.is_empty()).then(|| e.rule.clone()),
                queue: e.queue,
                lsn: e.lsn.map(|l| l.0),
            }),
            None => self.provenance.record(LineageRecord {
                msg: id.0,
                parent: None,
                root: id.0,
                rule: None,
                queue: queue.to_string(),
                lsn: None,
            }),
        }
    }

    // ---- processing loop -------------------------------------------------------

    /// Process a single scheduled message, if any. Returns whether work was
    /// done.
    pub fn step(&self) -> Result<bool> {
        match self.scheduler.pop() {
            Some((msg, queue)) => {
                self.metrics
                    .scheduler_depth
                    .set(self.scheduler.len() as i64);
                self.process_message(msg, &queue)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Drive everything to quiescence: process messages, pump the network,
    /// fire timers, retry reliable sends — fast-forwarding the virtual
    /// clock when idle. Returns the number of messages processed.
    pub fn run_until_idle(&self) -> Result<u64> {
        let mut processed = 0u64;
        loop {
            let mut progressed = false;
            while self.step()? {
                processed += 1;
                progressed = true;
            }
            if std::env::var("DEMAQ_DEBUG").is_ok() {
                eprintln!("loop: processed={processed} sched={} now={} net_inflight={} net_due={:?} timers={:?} retry={:?}",
                    self.scheduler.len(), self.clock.now(), self.net.in_flight(), self.net.next_due(), self.timers.next_due(), self.gateways.next_retry_at());
            }
            if self.pump_environment()? {
                progressed = true;
            }
            if progressed {
                continue;
            }
            // Idle: fast-forward a virtual clock to the next event.
            if self.clock.is_virtual() {
                let next = [
                    self.timers.next_due(),
                    self.net.next_due(),
                    self.gateways.next_retry_at(),
                ]
                .into_iter()
                .flatten()
                .min();
                match next {
                    Some(t) if t > self.clock.now() => {
                        self.clock.set(t);
                        continue;
                    }
                    Some(_) => continue,
                    None => break,
                }
            } else {
                break;
            }
        }
        Ok(processed)
    }

    /// Deliver due envelopes, drain gateway inboxes, fire due timers, tick
    /// reliable channels. Returns whether anything happened.
    fn pump_environment(&self) -> Result<bool> {
        let mut progressed = false;
        if self.net.pump() > 0 {
            progressed = true;
        }
        // Incoming gateway deliveries become messages.
        for (queue, env) in self.gateways.take_inbox() {
            progressed = true;
            self.ingest_envelope(&queue, env)?;
        }
        // Reliable retransmissions and exhausted sends.
        let failures = self.gateways.tick();
        for (queue, env, err) in failures {
            progressed = true;
            self.route_transport_error(&queue, &env.body, env.header("creatingRule"), &err)?;
        }
        // Echo-queue timers.
        let now = self.clock.now();
        for firing in self.timers.due(now) {
            progressed = true;
            self.metrics.timers_fired.inc();
            let job = firing.payload;
            self.obs
                .tracer
                .event("timer.fire", None, &job.target, "echo timeout");
            // The echoed message keeps the original's causal chain: the
            // provenance system properties ride on the parked job's props
            // and re-enter as engine-owned system properties here.
            let sys: Vec<(String, PropValue)> = job
                .props
                .iter()
                .filter(|(n, _)| n == system::PARENT_MSG || n == system::ROOT_MSG)
                .cloned()
                .collect();
            self.enqueue_with(
                &job.target,
                &job.payload,
                &[],
                Some(&job.props),
                sys,
                true,
                "<echo>",
            )?;
        }
        Ok(progressed)
    }

    fn ingest_envelope(&self, queue: &str, env: Envelope) -> Result<()> {
        let mut system_props = vec![
            (system::SENDER.to_string(), PropValue::Str(env.from.clone())),
            (
                system::CREATED_AT.to_string(),
                PropValue::DateTime(self.clock.now()),
            ),
        ];
        if let Some(conn) = env.conn {
            system_props.push((
                system::CONNECTION.to_string(),
                PropValue::Int(conn.0 as i64),
            ));
        }
        // Provenance survives the gateway hop: the sending node stamps the
        // envelope with its message's parent/root ids, and they re-enter
        // here as system properties (so the lineage edge is recorded and
        // WAL-durable on this side too).
        if let Some(p) = env
            .header(system::PARENT_MSG)
            .and_then(|s| s.parse::<i64>().ok())
        {
            system_props.push((system::PARENT_MSG.to_string(), PropValue::Int(p)));
            let root = env
                .header(system::ROOT_MSG)
                .and_then(|s| s.parse::<i64>().ok())
                .unwrap_or(p);
            system_props.push((system::ROOT_MSG.to_string(), PropValue::Int(root)));
        }
        match parse_xml(&env.body) {
            Ok(_) => match self.enqueue_with(
                queue,
                &env.body,
                &[],
                None,
                system_props,
                true,
                "<gateway>",
            ) {
                Ok(_) => Ok(()),
                Err(EngineError::Xml(detail)) => {
                    // Schema violations on a gateway: message-related error.
                    self.route_error(kind::SCHEMA, &detail, None, queue, None, Some(&env.body))
                }
                Err(other) => Err(other),
            },
            Err(e) => {
                // Not well-formed: a message-related error (paper Sec. 3.6).
                self.route_error(
                    kind::MALFORMED,
                    &e.to_string(),
                    None,
                    queue,
                    None,
                    Some(&env.body),
                )
            }
        }
    }

    // ---- the heart: processing one message ---------------------------------------

    fn process_message(&self, msg_id: MsgId, queue: &str) -> Result<()> {
        // Deadlock victims retry a few times before giving up to the error
        // path.
        for attempt in 0..4 {
            match self.try_process(msg_id, queue) {
                Ok(()) => return Ok(()),
                Err(EngineError::Store(StoreError::Deadlock))
                | Err(EngineError::Store(StoreError::LockTimeout))
                    if attempt < 3 =>
                {
                    self.metrics.deadlock_retries.inc();
                    self.obs
                        .tracer
                        .event("msg.retry", Some(msg_id.0), queue, "deadlock victim");
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop either returns Ok or the final error");
    }

    fn try_process(&self, msg_id: MsgId, queue: &str) -> Result<()> {
        // Metadata and document travel separately: a doc-cache hit means
        // the payload is never fetched (or cloned) from the store at all.
        let meta = self.store.message_meta(msg_id)?;
        let cached = self.doc_for(msg_id)?;
        let cq = self
            .app
            .queues
            .get(queue)
            .ok_or_else(|| EngineError::Config(format!("unknown queue `{queue}`")))?;

        // The applicable slicing contexts: slicings keyed by a property the
        // message carries.
        let mut slice_rules: Vec<(String, PropValue, &CompiledRule)> = Vec::new();
        let mut slice_keys: Vec<(String, PropValue)> = Vec::new();
        for (pname, value) in &meta.props {
            if let Some(slicings) = self.app.slicings_by_property.get(pname) {
                for sname in slicings {
                    slice_keys.push((sname.clone(), value.clone()));
                    let cs = &self.app.slicings[sname];
                    for rule in &cs.rules {
                        slice_rules.push((sname.clone(), value.clone(), rule));
                    }
                }
            }
        }

        let txn = self.store.begin();
        let eval_started = Instant::now();
        let result = self.evaluate_and_execute(txn, &meta, &cached, cq, &slice_rules, &slice_keys);
        self.metrics.rule_eval_ns.record(eval_started.elapsed());
        match result {
            Ok((new_messages, forwards)) => {
                self.store.mark_processed(txn, msg_id)?;
                let commit_started = Instant::now();
                self.store.commit(txn)?;
                self.metrics.txn_commit_ns.record(commit_started.elapsed());
                self.metrics.inc_processed(&self.obs, queue);
                let ctx = TraceCtx::new(
                    Some(match meta.prop(system::ROOT_MSG) {
                        Some(PropValue::Int(r)) => *r as u64,
                        _ => msg_id.0,
                    }),
                    match meta.prop(system::PARENT_MSG) {
                        Some(PropValue::Int(p)) => Some(*p as u64),
                        _ => None,
                    },
                );
                self.obs
                    .tracer
                    .event_ctx("msg.processed", Some(msg_id.0), queue, "", ctx);
                // Post-commit: cache the new documents (deferring this past
                // commit keeps aborted messages out of the cache), mirror
                // their now-durable lineage into the causal index, schedule
                // new work, gateway/echo side effects.
                for nm in new_messages {
                    self.record_provenance(nm.id, &nm.queue);
                    self.doc_cache.insert(nm.id, nm.doc, nm.payload_len);
                    let prio = self
                        .app
                        .queues
                        .get(&nm.queue)
                        .map(|q| q.decl.priority)
                        .unwrap_or(0);
                    self.sched_push(nm.id, &nm.queue, prio);
                    self.post_commit_queue_effects(&nm.queue, nm.id)?;
                }
                // Cross-shard enqueues publish only now, after the trigger's
                // transaction committed — a deadlock retry re-runs the rules
                // and would otherwise forward twice. Per-rule production is
                // attributed here, on the shard where the rule fired.
                if let Some(link) = &self.shard_link {
                    for f in forwards {
                        if !f.via.is_empty() {
                            self.metrics.record_rule_produced(&f.via);
                        }
                        link.forward(f);
                    }
                }
                Ok(())
            }
            Err(ProcessingError::Store(StoreError::Deadlock)) => {
                self.store.abort(txn);
                // Put the message back for retry.
                self.metrics.requeues.inc();
                self.sched_requeue(msg_id, queue, cq.decl.priority);
                Err(EngineError::Store(StoreError::Deadlock))
            }
            Err(ProcessingError::Store(StoreError::LockTimeout)) => {
                self.store.abort(txn);
                self.metrics.requeues.inc();
                self.sched_requeue(msg_id, queue, cq.decl.priority);
                Err(EngineError::Store(StoreError::LockTimeout))
            }
            Err(ProcessingError::Store(e)) => {
                self.store.abort(txn);
                Err(EngineError::Store(e))
            }
            Err(ProcessingError::Rule {
                rule,
                error_kind,
                detail,
            }) => {
                // Application-level failure: abort, then route an error
                // message and mark the original processed (Sec. 3.6).
                self.store.abort(txn);
                // Resolve the failing rule against the rules that actually
                // ran — this queue's, then the fired slicing rules. A global
                // name scan would pick nondeterministically among duplicate
                // rule names on other queues and divert the error.
                let rule_ref = cq
                    .rules
                    .iter()
                    .find(|r| r.name == rule)
                    .or_else(|| slice_rules.iter().map(|(_, _, r)| *r).find(|r| r.name == rule));
                self.mark_processed_standalone(msg_id)?;
                let payload = self.store.payload(msg_id).ok();
                self.route_error_resolved(
                    &error_kind,
                    &detail,
                    Some(&rule),
                    rule_ref,
                    queue,
                    Some(msg_id),
                    payload.as_deref(),
                )?;
                Ok(())
            }
        }
    }

    /// Evaluate all rules and execute the pending updates inside `txn`.
    /// Returns the new (msg, queue) pairs enqueued.
    fn evaluate_and_execute(
        &self,
        txn: TxnId,
        meta: &MessageMeta,
        cached: &CachedDoc,
        cq: &crate::app::CompiledQueue,
        slice_rules: &[(String, PropValue, &CompiledRule)],
        slice_keys: &[(String, PropValue)],
    ) -> std::result::Result<(Vec<NewMessage>, Vec<crate::shard::Forwarded>), ProcessingError>
    {
        // ---- locking (paper Sec. 4.3) -------------------------------------
        self.acquire_locks(txn, meta, cq, slice_rules, slice_keys)?;

        // ---- rule evaluation (snapshot) ------------------------------------
        let msg_root = cached.doc.root();
        let mut updates: Vec<(Option<String>, Update)> = Vec::new(); // (rule name, update)

        // Queue rules: the precomputed per-queue canonical plan (paper
        // Sec. 4.4.1, lowered at deploy time) or rule-at-a-time.
        match (self.plan_mode, &cq.merged) {
            (PlanMode::Merged, Some(merged)) => {
                self.metrics.rules_evaluated.add(cq.rules.len() as u64);
                let ups = if self.lowered_plans {
                    let plan = cq.merged_plan.as_ref().expect("lowered with merged");
                    self.eval_rule_plan(plan, meta, &msg_root, None)
                } else {
                    self.eval_rule_body(merged, meta, &msg_root, None)
                }
                .map_err(|e| ProcessingError::rule("<merged-plan>", e))?;
                updates.extend(ups.into_iter().map(|u| (None, u)));
            }
            _ => {
                for rule in &cq.rules {
                    // Trigger pre-filter: with lowered plans the test is a
                    // symbol-set probe (integer hashing, no strings).
                    let triggered = if self.lowered_plans {
                        rule.trigger_syms.as_ref().is_none_or(|syms| {
                            let doc_syms = cached.element_syms();
                            syms.iter().any(|s| doc_syms.contains(s))
                        })
                    } else {
                        rule.trigger_elements.as_ref().is_none_or(|trigger| {
                            let names = cached.element_names();
                            trigger.iter().any(|t| names.contains(t.as_str()))
                        })
                    };
                    if !triggered {
                        self.metrics.rules_skipped.inc();
                        continue;
                    }
                    self.metrics.rules_evaluated.inc();
                    let started = Instant::now();
                    let evaluated = if self.lowered_plans {
                        self.eval_rule_plan(&rule.plan, meta, &msg_root, None)
                    } else {
                        self.eval_rule_body(&rule.body, meta, &msg_root, None)
                    };
                    self.metrics.record_rule_eval(&rule.name, started.elapsed());
                    let ups = evaluated.map_err(|e| ProcessingError::rule(&rule.name, e))?;
                    updates.extend(ups.into_iter().map(|u| (Some(rule.name.clone()), u)));
                }
            }
        }

        // Slicing rules, each with its slice context. Member documents
        // load lazily on first `qs:slice()` touch — a body whose aggregate
        // reads are answered by the registry never materializes them.
        for (slicing, key, rule) in slice_rules {
            self.metrics.rules_evaluated.inc();
            let loader: SliceLoader = {
                let handle = self.read_handle();
                let (s, k) = (slicing.clone(), key.clone());
                Arc::new(move || handle.slice_member_docs(&s, &k))
            };
            let full_ctx = SliceCtx::lazy(slicing.clone(), key.clone(), loader);
            let started = Instant::now();
            let evaluated = if self.lowered_plans {
                self.eval_rule_plan(&rule.plan, meta, &msg_root, Some(full_ctx))
            } else {
                self.eval_rule_body(&rule.body, meta, &msg_root, Some(full_ctx))
            };
            self.metrics.record_rule_eval(&rule.name, started.elapsed());
            let ups = evaluated.map_err(|e| ProcessingError::rule(&rule.name, e))?;
            // Bare `do reset` in a slicing rule targets this slice.
            for u in ups {
                let u = match u {
                    Update::Reset {
                        slicing: None,
                        key: None,
                    } => Update::Reset {
                        slicing: Some(slicing.as_str().into()),
                        key: Some(prop_to_atomic(key)),
                    },
                    other => other,
                };
                updates.push((Some(rule.name.clone()), u));
            }
        }

        // ---- action execution ------------------------------------------------
        let mut new_messages = Vec::new();
        let mut forwards = Vec::new();
        for (rule_name, update) in updates {
            match update {
                Update::Enqueue {
                    queue: target,
                    message,
                    props,
                } => {
                    let target_name = target.local.clone();
                    let outcome = self
                        .execute_enqueue(
                            txn,
                            meta,
                            rule_name.as_deref(),
                            &target_name,
                            message,
                            props,
                        )
                        .map_err(|e| match e {
                            ExecError::Store(s) => ProcessingError::Store(s),
                            ExecError::App { kind: k, detail } => ProcessingError::Rule {
                                rule: rule_name.clone().unwrap_or_else(|| "<unknown>".into()),
                                error_kind: k,
                                detail,
                            },
                        })?;
                    match outcome {
                        EnqueueOutcome::Local(nm) => new_messages.push(nm),
                        EnqueueOutcome::Remote(f) => forwards.push(f),
                    }
                }
                Update::Reset { slicing, key } => {
                    let Some(slicing) = slicing else {
                        return Err(ProcessingError::Rule {
                            rule: rule_name.unwrap_or_else(|| "<unknown>".into()),
                            error_kind: kind::APPLICATION.into(),
                            detail:
                                "do reset without parameters is only valid in rules on slicings"
                                    .into(),
                        });
                    };
                    let Some(key) = key else {
                        return Err(ProcessingError::Rule {
                            rule: rule_name.unwrap_or_else(|| "<unknown>".into()),
                            error_kind: kind::APPLICATION.into(),
                            detail: "do reset needs a key".into(),
                        });
                    };
                    self.store
                        .slice_reset(txn, &slicing.local, atomic_to_prop(&key))
                        .map_err(ProcessingError::Store)?;
                }
                other => {
                    // XQUF tree updates cannot touch the append-only store.
                    return Err(ProcessingError::Rule {
                        rule: rule_name.unwrap_or_else(|| "<unknown>".into()),
                        error_kind: kind::APPLICATION.into(),
                        detail: format!(
                            "tree update {other:?} is not applicable: stored messages are immutable"
                        ),
                    });
                }
            }
        }
        Ok((new_messages, forwards))
    }

    fn acquire_locks(
        &self,
        txn: TxnId,
        meta: &MessageMeta,
        cq: &crate::app::CompiledQueue,
        slice_rules: &[(String, PropValue, &CompiledRule)],
        slice_keys: &[(String, PropValue)],
    ) -> std::result::Result<(), ProcessingError> {
        let mut plan: Vec<(LockKey, LockMode)> = Vec::new();
        let all_rules = cq
            .rules
            .iter()
            .chain(slice_rules.iter().map(|(_, _, r)| *r));
        match self.store.lock_granularity() {
            LockGranularity::Queue => {
                plan.push((LockKey::Queue(meta.queue.clone()), LockMode::Exclusive));
                for rule in all_rules {
                    for w in &rule.writes_queues {
                        plan.push((LockKey::Queue(w.clone()), LockMode::Exclusive));
                    }
                    for r in &rule.reads_queues {
                        plan.push((LockKey::Queue(r.clone()), LockMode::Shared));
                    }
                }
            }
            LockGranularity::Slice => {
                plan.push((LockKey::Message(meta.id), LockMode::Exclusive));
                for (s, k) in slice_keys {
                    plan.push((LockKey::Slice(s.clone(), k.clone()), LockMode::Exclusive));
                }
                for rule in all_rules {
                    for r in &rule.reads_queues {
                        plan.push((LockKey::Queue(r.clone()), LockMode::Shared));
                    }
                }
            }
        }
        // Deterministic global order, exclusive-before-shared on equal
        // keys, dedup. With `analysis_lock_order` the queue dimension
        // follows the analysis-derived flow rank (sources first), so every
        // transaction acquires queue locks in one global order and
        // cross-enqueueing rules cannot deadlock; name order is the
        // comparison baseline. Comparison is allocation-free either way.
        if self.analysis_lock_order {
            let ranks = &self.app.lock_ranks;
            plan.sort_by(|(a, am), (b, bm)| {
                cmp_lock_keys_ranked(a, b, ranks)
                    .then_with(|| (*am == LockMode::Shared).cmp(&(*bm == LockMode::Shared)))
            });
        } else {
            plan.sort_by(|(a, am), (b, bm)| {
                cmp_lock_keys_by_name(a, b)
                    .then_with(|| (*am == LockMode::Shared).cmp(&(*bm == LockMode::Shared)))
            });
        }
        let mut seen: HashSet<LockKey> = HashSet::new();
        for (key, mode) in plan {
            if seen.insert(key.clone()) {
                self.store
                    .locks
                    .acquire(txn, key, mode)
                    .map_err(ProcessingError::Store)?;
            }
        }
        Ok(())
    }

    /// Dynamic context for one rule evaluation over `msg_root`.
    fn rule_dctx(
        &self,
        meta: &MessageMeta,
        msg_root: &NodeRef,
        slice: Option<SliceCtx>,
    ) -> DynamicContext {
        // The reader clones the store and cache handles (closures in the
        // host must be 'static); committed state at evaluation time is read
        // through the shared document cache, so repeated `qs:queue()` calls
        // over a stable queue parse each message at most once.
        let handle = self.read_handle();
        let queue_reader: crate::host::QueueReader = {
            let handle = handle.clone();
            Arc::new(move |qname: &str| handle.queue_docs(qname))
        };
        let agg_reader: Option<crate::host::AggregateReader> = handle.agg.is_some().then(|| {
            let handle = handle.clone();
            let rd: crate::host::AggregateReader =
                Arc::new(move |spec, slice_ctx| handle.aggregate_read(spec, slice_ctx));
            rd
        });
        let host = QsHost {
            message: msg_root.clone(),
            properties: meta.props.clone(),
            queue_name: meta.queue.clone(),
            queue_reader,
            slice,
            agg_reader,
            collections: Arc::clone(&self.collections),
            now_ms: self.clock.now(),
        };
        DynamicContext::new(Arc::new(host))
    }

    /// Evaluate one rule body (reference AST interpreter), returning its
    /// pending updates.
    fn eval_rule_body(
        &self,
        body: &Expr,
        meta: &MessageMeta,
        msg_root: &NodeRef,
        slice: Option<SliceCtx>,
    ) -> std::result::Result<Vec<Update>, XqError> {
        let dctx = self.rule_dctx(meta, msg_root, slice);
        let sctx = StaticContext::default();
        let mut ev = Evaluator::new(&sctx, &dctx);
        ev.eval_with_context(body, msg_root.clone())?;
        Ok(std::mem::take(&mut ev.updates))
    }

    /// Evaluate one lowered rule plan, returning its pending updates.
    fn eval_rule_plan(
        &self,
        plan: &Plan,
        meta: &MessageMeta,
        msg_root: &NodeRef,
        slice: Option<SliceCtx>,
    ) -> std::result::Result<Vec<Update>, XqError> {
        let dctx = self.rule_dctx(meta, msg_root, slice);
        let mut ev = PlanEvaluator::new(&dctx);
        ev.eval_with_context(plan, msg_root.clone())?;
        Ok(std::mem::take(&mut ev.updates))
    }

    /// Committed-state reader closing over the shared caches — what the
    /// host closures (queue reader, slice loader, aggregate reader) own.
    fn read_handle(&self) -> ReadHandle {
        ReadHandle {
            store: Arc::clone(&self.store),
            cache: Arc::clone(&self.doc_cache),
            slice_seq: Arc::clone(&self.slice_seq),
            agg: self.agg.clone(),
        }
    }

    /// Execute a single `do enqueue` action inside `txn`.
    fn execute_enqueue(
        &self,
        txn: TxnId,
        trigger: &MessageMeta,
        rule_name: Option<&str>,
        target: &str,
        message: Arc<Document>,
        explicit_props: Vec<(String, Atomic)>,
    ) -> std::result::Result<EnqueueOutcome, ExecError> {
        let cq = self.app.queues.get(target).ok_or_else(|| ExecError::App {
            kind: kind::APPLICATION.into(),
            detail: format!("enqueue into undeclared queue `{target}`"),
        })?;
        // Schema check (message-related error class).
        if let Some(schema) = &cq.schema {
            let violations = schema.validate(&message.root());
            if !violations.is_empty() {
                return Err(ExecError::App {
                    kind: kind::SCHEMA.into(),
                    detail: format!("target `{target}`: {}", violations[0]),
                });
            }
        }
        // WSDL interface check for outgoing gateways.
        if let Some(iface) = &cq.interface {
            if let Some(root) = message.document_element() {
                if let Err(e) = iface.validate_outgoing(&root) {
                    return Err(ExecError::App {
                        kind: e.kind_element().into(),
                        detail: e.to_string(),
                    });
                }
            }
        }
        let now = self.clock.now();
        let mut system_props = vec![(system::CREATED_AT.to_string(), PropValue::DateTime(now))];
        if let Some(r) = rule_name {
            system_props.push((
                system::CREATING_RULE.to_string(),
                PropValue::Str(r.to_string()),
            ));
        }
        // Causal provenance: the trigger is the parent; the root is the
        // trigger's root (or the trigger itself when it started the
        // cascade). Riding on system properties keeps the chain intact
        // across gateway hops and timer echoes.
        let root = match trigger.prop(system::ROOT_MSG) {
            Some(PropValue::Int(r)) => *r as u64,
            _ => trigger.id.0,
        };
        system_props.push((
            system::PARENT_MSG.to_string(),
            PropValue::Int(trigger.id.0 as i64),
        ));
        system_props.push((system::ROOT_MSG.to_string(), PropValue::Int(root as i64)));
        let props = compute_properties(
            &self.app,
            target,
            &message.root(),
            &explicit_props,
            Some(&trigger.props),
            system_props,
            now,
        )
        .map_err(|e: PropError| ExecError::App {
            kind: kind::PROPERTY.into(),
            detail: e.0,
        })?;
        // Cross-shard target: hand the fully prepared message (payload +
        // properties, including the provenance system props above) to the
        // owning shard instead of the local store. The caller publishes the
        // forward only after its own transaction commits, so an aborted or
        // retried trigger never double-delivers.
        if let Some(link) = &self.shard_link {
            if let Some(dest) = link.remote_destination(target, &props) {
                return Ok(EnqueueOutcome::Remote(crate::shard::Forwarded {
                    dest,
                    queue: target.to_string(),
                    xml: message.root().to_xml(),
                    props,
                    enqueued_at: now,
                    via: rule_name.unwrap_or("").to_string(),
                }));
            }
        }
        let payload = message.root().to_xml();
        let payload_len = payload.len();
        let id = self
            .store
            .enqueue(txn, target, payload.into(), props.clone(), now)
            .map_err(ExecError::Store)?;
        self.add_slice_memberships(txn, id, &props)
            .map_err(|e| match e {
                EngineError::Store(s) => ExecError::Store(s),
                other => ExecError::App {
                    kind: kind::APPLICATION.into(),
                    detail: other.to_string(),
                },
            })?;
        // The lineage edge commits (and hits the WAL) with the enqueue
        // itself, so the causal chain is exactly as durable as the message.
        self.store
            .record_lineage(
                txn,
                id,
                trigger.id,
                MsgId(root),
                rule_name.unwrap_or(""),
                target,
            )
            .map_err(ExecError::Store)?;
        self.metrics.inc_enqueued(&self.obs, target);
        if let Some(r) = rule_name {
            self.metrics.record_rule_produced(r);
        }
        self.obs.tracer.event_ctx(
            "msg.enqueue",
            Some(id.0),
            target,
            rule_name.unwrap_or(""),
            TraceCtx::new(Some(root), Some(trigger.id.0)),
        );
        // The parsed document rides along so try_process can cache it once
        // the transaction commits — caching here would leak documents of
        // aborted transactions into the cache.
        Ok(EnqueueOutcome::Local(NewMessage {
            id,
            queue: target.to_string(),
            doc: message,
            payload_len,
        }))
    }

    /// Post-commit side effects of a message landing in `queue`: outgoing
    /// gateway sends and echo-queue timer registration.
    fn post_commit_queue_effects(&self, queue: &str, msg_id: MsgId) -> Result<()> {
        let Some(cq) = self.app.queues.get(queue) else {
            return Ok(());
        };
        match cq.decl.kind {
            QueueKind::OutgoingGateway => {
                let stored = self.store.message(msg_id)?;
                let doc = self.doc_for(msg_id)?;
                if let Err(e) = self.gateways.send(queue, &stored, &doc.doc.root()) {
                    let creating_rule = match stored.prop(system::CREATING_RULE) {
                        Some(PropValue::Str(r)) => Some(r.clone()),
                        _ => None,
                    };
                    self.route_transport_error(
                        queue,
                        &stored.payload,
                        creating_rule.as_deref(),
                        &e,
                    )?;
                }
            }
            QueueKind::Echo => {
                let stored = self.store.message(msg_id)?;
                let delay_ms = match stored.prop("delay") {
                    Some(PropValue::Duration(ms)) => Some(*ms),
                    Some(PropValue::Int(ms)) => Some(*ms),
                    Some(PropValue::Str(s)) => {
                        demaq_xquery::value::parse_duration(s).or_else(|| s.parse().ok())
                    }
                    _ => None,
                };
                let target = match stored.prop("target") {
                    Some(PropValue::Str(t)) => Some(t.clone()),
                    _ => None,
                };
                match (delay_ms, target) {
                    (Some(d), Some(t)) if self.app.queues.contains_key(&t) => {
                        // The echoed message inherits the original's
                        // properties minus the timer controls.
                        let props: Vec<(String, PropValue)> = stored
                            .props
                            .iter()
                            .filter(|(n, _)| n != "delay" && n != "target")
                            .cloned()
                            .collect();
                        self.timers.schedule(
                            self.clock.now() + d.max(0),
                            TimerJob {
                                target: t,
                                payload: stored.payload.to_string(),
                                props,
                            },
                        );
                    }
                    (d, t) => {
                        let detail = format!(
                            "echo queue `{queue}` needs `delay` and a valid `target` property \
                             (got delay={d:?}, target={t:?})"
                        );
                        self.route_error(
                            kind::TIMER,
                            &detail,
                            None,
                            queue,
                            Some(msg_id),
                            Some(&stored.payload),
                        )?;
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }

    // ---- error routing -----------------------------------------------------------

    /// Transport failures route through the error queue of the *rule that
    /// created the message* (the paper's Fig. 10: network errors from the
    /// confirmation sent by `confirmOrder` land in `crmErrors`), falling
    /// back to the gateway queue's and the system error queue.
    fn route_transport_error(
        &self,
        gateway_queue: &str,
        payload: &str,
        creating_rule: Option<&str>,
        err: &demaq_net::TransportError,
    ) -> Result<()> {
        self.route_error(
            err.kind_element(),
            &err.to_string(),
            creating_rule,
            gateway_queue,
            None,
            Some(payload),
        )
    }

    /// Build an `<error>` message and enqueue it into the resolved error
    /// queue (rule > queue > system levels, Sec. 3.6). Errors without a
    /// reachable error queue are counted and dropped.
    fn route_error(
        &self,
        error_kind: &str,
        detail: &str,
        rule: Option<&str>,
        queue: &str,
        msg_id: Option<MsgId>,
        payload: Option<&str>,
    ) -> Result<()> {
        // Fallback resolution by global name scan, for paths where only the
        // creating rule's *name* survives (transport failures, timers).
        let rule_ref = rule.and_then(|r| {
            self.app
                .queues
                .values()
                .flat_map(|cq| cq.rules.iter())
                .chain(self.app.slicings.values().flat_map(|s| s.rules.iter()))
                .find(|cr| cr.name == r)
        });
        self.route_error_resolved(error_kind, detail, rule, rule_ref, queue, msg_id, payload)
    }

    /// Like [`Server::route_error`] but with the failing rule already
    /// resolved by the caller — `try_process` resolves against the rules
    /// that actually ran for the message, so a duplicate rule name on
    /// another queue cannot divert the error from its declared
    /// `errorqueue` (rule > queue > system precedence, Sec. 3.6).
    #[allow(clippy::too_many_arguments)]
    fn route_error_resolved(
        &self,
        error_kind: &str,
        detail: &str,
        rule: Option<&str>,
        rule_ref: Option<&CompiledRule>,
        queue: &str,
        msg_id: Option<MsgId>,
        payload: Option<&str>,
    ) -> Result<()> {
        // Queues this error's routing has already visited (threaded
        // through the `errorPath` system property of error messages).
        // Routing back into one of them would ping-pong forever — the
        // runtime backstop for what the analyzer reports as DQ007.
        let failed_meta = msg_id.and_then(|id| self.store.message_meta(id).ok());
        let mut path: Vec<String> = failed_meta
            .as_ref()
            .and_then(|meta| match meta.prop(system::ERROR_PATH) {
                Some(PropValue::Str(s)) => {
                    Some(s.split(',').map(str::to_string).collect())
                }
                _ => None,
            })
            .unwrap_or_default();
        if !path.iter().any(|q| q == queue) {
            path.push(queue.to_string());
        }

        let resolved = self.app.error_queue_for(rule_ref, queue).map(str::to_string);
        let eq = match resolved {
            Some(eq) if path.contains(&eq) => {
                // Cycle: drop to the system error queue unless that is
                // itself on the path already.
                self.metrics.error_route_cycles.inc();
                self.obs
                    .tracer
                    .event("error.route_cycle", msg_id.map(|m| m.0), &eq, detail);
                self.app
                    .spec
                    .system_error_queue
                    .clone()
                    .filter(|sys| !path.iter().any(|p| p == sys))
            }
            other => other,
        };
        let Some(eq) = eq else {
            self.metrics.errors_routed.inc();
            self.obs
                .tracer
                .event("error.drop", msg_id.map(|m| m.0), queue, detail);
            return Ok(());
        };
        let doc = error_message(error_kind, detail, rule, queue, msg_id, payload);
        let xml = doc.root().to_xml();
        self.metrics.errors_routed.inc();
        self.obs
            .tracer
            .event("error.route", msg_id.map(|m| m.0), &eq, detail);
        // Error enqueue runs its own transaction; failures here are fatal
        // (the paper's "masking higher level failures" resort would be a
        // persistent error queue, which this is). When the failing message
        // is known, the error message joins its causal tree.
        let mut sys = vec![(system::ERROR_PATH.to_string(), PropValue::Str(path.join(",")))];
        if let Some(id) = msg_id {
            sys.push((system::PARENT_MSG.to_string(), PropValue::Int(id.0 as i64)));
            let root = failed_meta
                .as_ref()
                .and_then(|m| match m.prop(system::ROOT_MSG) {
                    Some(PropValue::Int(r)) => Some(*r),
                    _ => None,
                })
                .unwrap_or(id.0 as i64);
            sys.push((system::ROOT_MSG.to_string(), PropValue::Int(root)));
        }
        self.enqueue_with(&eq, &xml, &[], None, sys, true, rule.unwrap_or("<error>"))?;
        Ok(())
    }

    fn mark_processed_standalone(&self, msg: MsgId) -> Result<()> {
        let txn = self.store.begin();
        match self
            .store
            .mark_processed(txn, msg)
            .and_then(|_| self.store.commit(txn))
        {
            Ok(()) => Ok(()),
            Err(e) => {
                self.store.abort(txn);
                Err(e.into())
            }
        }
    }

    // ---- parallel processing (benchmark E3) ----------------------------------------

    /// Process everything currently schedulable using `threads` workers.
    /// Network/timer pumping is not performed inside; call
    /// [`Server::run_until_idle`] afterwards for gateway scenarios.
    pub fn process_all_parallel(&self, threads: usize) -> Result<u64> {
        let processed = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.max(1) {
                scope.spawn(|| loop {
                    // Claim *before* popping: a peer must never observe an
                    // empty scheduler + zero active workers while a popped
                    // message is still about to be processed.
                    self.active_workers.fetch_add(1, Ordering::SeqCst);
                    match self.scheduler.pop() {
                        Some((msg, queue)) => {
                            let r = self.process_message(msg, &queue);
                            let remaining =
                                self.active_workers.fetch_sub(1, Ordering::SeqCst) - 1;
                            if r.is_ok() {
                                processed.fetch_add(1, Ordering::Relaxed);
                            }
                            if remaining == 0 && self.scheduler.is_empty() {
                                // Likely drained: wake parked peers so they
                                // observe termination promptly.
                                self.scheduler.wake_all();
                            }
                        }
                        None => {
                            // Exit only when no one is mid-flight (they may
                            // still enqueue more work).
                            if self.active_workers.fetch_sub(1, Ordering::SeqCst) - 1 == 0
                                && self.scheduler.is_empty()
                            {
                                self.scheduler.wake_all();
                                break;
                            }
                            // Park until a push/requeue signals new work;
                            // the timeout is a backstop so the termination
                            // condition above is always re-checked.
                            self.scheduler.park(std::time::Duration::from_millis(2));
                        }
                    }
                });
            }
        });
        Ok(processed.load(Ordering::Relaxed))
    }

    // ---- inspection & maintenance -----------------------------------------------------

    /// Payload strings of all retained messages of a queue (tests/examples).
    pub fn queue_bodies(&self, queue: &str) -> Result<Vec<String>> {
        Ok(self
            .store
            .queue_messages(queue)?
            .into_iter()
            .map(|m| m.payload.to_string())
            .collect())
    }

    /// All retained messages of a queue.
    pub fn queue_messages(&self, queue: &str) -> Result<Vec<StoredMessage>> {
        Ok(self.store.queue_messages(queue)?)
    }

    /// Run the retention GC (paper Sec. 2.3.3) — also invoked by
    /// [`Server::maintenance`]. When the liveness analysis proved some
    /// slicings narrowable, a narrowing sweep runs first: it folds
    /// processed members into their slices' base cells and releases their
    /// membership, so the collection pass right after can purge them.
    pub fn gc(&self) -> Result<usize> {
        self.narrow_retention();
        let purged = self.store.gc_collect()?;
        self.metrics.gc_purged.add(purged.len() as u64);
        if !purged.is_empty() {
            // Drop the purged documents and any cached member sequences
            // pinning them (the slice version bump already makes those
            // entries unreturnable; this releases the memory).
            self.doc_cache.remove_many(&purged);
            self.slice_seq.invalidate_msgs(&purged);
            if let Some(agg) = &self.agg {
                agg.invalidate_msgs(&purged);
            }
        }
        Ok(purged.len())
    }

    /// The retention-narrowing sweep (ISSUE 10). Per narrowable slicing
    /// and key: read one consistent `(members, version, base)` view, pick
    /// the processed members the proven read shape no longer needs, fold
    /// them into the base cells (aggregate-only mode), and release them
    /// under a version CAS — a concurrent arrival or reset between read
    /// and release aborts that slice's release harmlessly; the next sweep
    /// retries. Releases are memory-only (Sec. 4.1: purge decisions are
    /// re-derived after a crash, never logged); checkpoints carry the
    /// base, so released history survives restarts once a cut captured
    /// it. Any fold, decode, or encode error skips the slice — it stays
    /// fully retained, which is always safe.
    fn narrow_retention(&self) -> usize {
        let Some(plans) = &self.narrow else { return 0 };
        let mut released = 0;
        for (slicing, mode) in plans {
            for key in self.store.slice_keys(slicing) {
                released += self.narrow_slice(slicing, &key, mode).unwrap_or(0);
            }
        }
        if released > 0 {
            self.metrics.retention_released.add(released as u64);
        }
        released
    }

    /// Narrow one slice; `None` means an error made this slice skip the
    /// sweep (nothing released, nothing changed).
    fn narrow_slice(&self, slicing: &str, key: &PropValue, mode: &NarrowMode) -> Option<usize> {
        let (members, version, _base_members, base) = self.store.slice_narrow_view(slicing, key);
        if version == 0 {
            return Some(0);
        }
        let victims: Vec<MsgId> = match mode {
            NarrowMode::Aggregate(_) => {
                members.iter().filter(|(_, p)| *p).map(|(m, _)| *m).collect()
            }
            NarrowMode::Suffix(k) => {
                // The newest `k` members stay regardless of processed
                // state — they are the proven read horizon.
                let cut = members.len().saturating_sub(*k);
                members[..cut].iter().filter(|(_, p)| *p).map(|(m, _)| *m).collect()
            }
        };
        if victims.is_empty() {
            return Some(0);
        }
        let cells: Vec<(String, Vec<u8>)> = match mode {
            // No aggregate reads exist over a suffix shape; carry the base
            // unchanged (empty unless a past mode change left cells).
            NarrowMode::Suffix(_) => base,
            NarrowMode::Aggregate(specs) => {
                let mut cells = Vec::with_capacity(specs.len());
                for spec in specs {
                    let sig = spec.stable_sig();
                    let mut acc = match base.iter().find(|(s, _)| *s == sig) {
                        Some((_, bytes)) => AggAcc::decode(bytes)?,
                        None => AggAcc::new(spec.op),
                    };
                    // Fold before purge: the payloads are still readable.
                    for id in &victims {
                        let doc = self.doc_for(*id).ok()?;
                        acc.absorb_member(spec, &doc.doc.root()).ok()?;
                    }
                    cells.push((sig, acc.encode()?));
                }
                cells
            }
        };
        if self.store.retention_release(slicing, key, version, &victims, cells) {
            Some(victims.len())
        } else {
            Some(0)
        }
    }

    /// Background maintenance: GC + checkpoint ("physical cleanup is
    /// decoupled from message processing … for example in times of low
    /// system load", Sec. 2.3.3).
    pub fn maintenance(&self) -> Result<usize> {
        let purged = self.gc()?;
        self.store.checkpoint()?;
        Ok(purged)
    }

    /// Advance the virtual clock manually (tests).
    pub fn advance_time(&self, ms: i64) {
        self.clock.advance(ms);
    }

    /// Parsed document of a message, through the sharded cache. A hit
    /// never touches the store; a miss reads only the payload (no props
    /// clone) and fills the cache.
    fn doc_for(&self, id: MsgId) -> Result<Arc<CachedDoc>> {
        if let Some(hit) = self.doc_cache.get(id) {
            return Ok(hit);
        }
        let payload = self.store.payload(id)?;
        let doc = parse_xml(&payload).map_err(|e| EngineError::Xml(e.to_string()))?;
        self.doc_cache.note_parse();
        Ok(self.doc_cache.insert(id, doc, payload.len()))
    }

    // ---- shard-runtime hooks (crate-internal) ---------------------------------

    /// Pump network/gateway/timer machinery once (shard driver loop).
    pub(crate) fn pump_env(&self) -> Result<bool> {
        self.pump_environment()
    }

    /// Earliest pending environment event (virtual-clock fast-forward
    /// target across shards).
    pub(crate) fn next_event_at(&self) -> Option<i64> {
        [
            self.timers.next_due(),
            self.net.next_due(),
            self.gateways.next_retry_at(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    pub(crate) fn sched(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Pop one scheduled message, keeping the depth gauge honest.
    pub(crate) fn pop_scheduled(&self) -> Option<(MsgId, String)> {
        let popped = self.scheduler.pop();
        if popped.is_some() {
            self.metrics
                .scheduler_depth
                .set(self.scheduler.len() as i64);
        }
        popped
    }

    /// Process one message with the standard retry-on-conflict policy.
    pub(crate) fn process_one(&self, msg: MsgId, queue: &str) -> Result<()> {
        self.process_message(msg, queue)
    }
}

/// A message created by `do enqueue` inside a processing transaction. Its
/// parsed document is carried to the post-commit hook, which inserts it
/// into the document cache only once the transaction is durable.
struct NewMessage {
    id: MsgId,
    queue: String,
    doc: Arc<Document>,
    payload_len: usize,
}

/// Where a rule-produced enqueue landed: the local store (the common,
/// fast path) or another shard's mailbox (published after commit).
enum EnqueueOutcome {
    Local(NewMessage),
    Remote(crate::shard::Forwarded),
}

/// Committed-state reader: owns what the host closures need without
/// borrowing the server. Payloads resolve through the shared document
/// cache, member sequences through the slice-sequence cache, and
/// recognized aggregate reads through the materialized cell registry —
/// so `qs:queue()` over a stable queue parses each message at most once,
/// and a registry hit touches no member document at all.
#[derive(Clone)]
struct ReadHandle {
    store: Arc<MessageStore>,
    cache: Arc<DocCache>,
    slice_seq: Arc<SliceSeqCache>,
    agg: Option<Arc<AggRegistry>>,
}

impl ReadHandle {
    fn queue_docs(&self, qname: &str) -> std::result::Result<Sequence, XqError> {
        let ids = self
            .store
            .queue_message_ids(qname)
            .map_err(|e| XqError::dynamic(format!("qs:queue(\"{qname}\"): {e}")))?;
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            match self.doc_root(id)? {
                Some(root) => out.push(Item::Node(root)),
                None => continue,
            }
        }
        Ok(Sequence(out))
    }

    /// Root of one stored message through the document cache. `Ok(None)`
    /// means the message was GC'd between the id scan and this read: it
    /// drops out, equivalent to having taken the snapshot later.
    fn doc_root(&self, id: MsgId) -> std::result::Result<Option<NodeRef>, XqError> {
        if let Some(hit) = self.cache.get(id) {
            return Ok(Some(hit.doc.root()));
        }
        let payload = match self.store.payload(id) {
            Ok(p) => p,
            Err(StoreError::NotFound(_)) => return Ok(None),
            Err(e) => return Err(XqError::dynamic(format!("stored message {id}: {e}"))),
        };
        let doc = parse_xml(&payload)
            .map_err(|e| XqError::dynamic(format!("stored message {id}: {e}")))?;
        self.cache.note_parse();
        let entry = self.cache.insert(id, doc, payload.len());
        Ok(Some(entry.doc.root()))
    }

    /// Parsed document roots of a slice's current members, through the
    /// materialized-sequence cache. The `(members, version)` pair is read
    /// atomically from the store under one lock; a version match reuses the
    /// cached sequence outright, and append-only growth parses only the new
    /// suffix — the N-arrivals join goes from O(N²) to O(N) parse work.
    fn slice_member_docs(
        &self,
        slicing: &str,
        key: &PropValue,
    ) -> std::result::Result<Sequence, XqError> {
        let (ids, version) = self.store.slice_members_versioned(slicing, key);
        let (mut items, from, extended) =
            match self.slice_seq.lookup(slicing, key, version, &ids) {
                SeqLookup::Hit(seq) => return Ok(seq),
                SeqLookup::Extend { seq, from } => (seq.0, from, true),
                SeqLookup::Miss => (Vec::with_capacity(ids.len()), 0, false),
            };
        for id in &ids[from..] {
            if let Some(root) = self.doc_root(*id)? {
                items.push(Item::Node(root));
            }
        }
        let seq = Sequence(items);
        self.slice_seq
            .store(slicing, key, version, ids, seq.clone(), extended);
        Ok(seq)
    }

    /// Answer a recognized aggregate read from the cell registry;
    /// `slice_ctx` carries the firing rule's `(slicing, key)` for
    /// `qs:slice()` sources. `None` declines: the plan's embedded fallback
    /// then runs the reference rescan — which also reproduces the exact
    /// reference error for unknown queues, missing slice context, or a
    /// fold that errored (errored folds are never cached).
    fn aggregate_read(
        &self,
        spec: &AggregateSpec,
        slice_ctx: Option<(&str, &PropValue)>,
    ) -> Option<std::result::Result<Sequence, XqError>> {
        let agg = self.agg.as_ref()?;
        let (scope, ids, version, base_members, base) = match (&spec.source, slice_ctx) {
            (AggSource::Queue(q), _) => {
                let (ids, version) = self.store.queue_message_ids_versioned(q).ok()?;
                (AggScope::Queue(q.clone()), ids, version, 0, Vec::new())
            }
            (AggSource::Slice, Some((sl, k))) => {
                // Slices carry a base: aggregate state the narrowing sweep
                // folded out of members that have since been purged. Reads
                // must seed from it — the raw members alone are no longer
                // the full history.
                let (ids, version, base_members, base) = self.store.slice_members_with_base(sl, k);
                (AggScope::Slice(sl.to_string(), k.clone()), ids, version, base_members, base)
            }
            (AggSource::Slice, None) => return None,
        };
        // Membership-only fast path: step-free `count`/`exists` are pure
        // functions of the id list (plus released membership) — no cell,
        // no document access.
        if spec.steps.is_empty() {
            match spec.op {
                AggOp::Count => {
                    agg.note_fast_hit();
                    return Some(Ok(Sequence::int(base_members as i64 + ids.len() as i64)));
                }
                AggOp::Exists => {
                    agg.note_fast_hit();
                    return Some(Ok(Sequence::bool(base_members > 0 || !ids.is_empty())));
                }
                _ => {}
            }
        }
        // With a base in play, declining to the fallback rescan is no
        // longer sound: the rescan only sees surviving members, not the
        // folded-out history. Errors must surface instead.
        let has_base = !base.is_empty();
        let key = spec.cache_key();
        let (mut acc, from, extended) = match agg.lookup(&key, &scope, version, &ids) {
            AggLookup::Hit(seq) => return Some(Ok(seq)),
            AggLookup::Extend { acc, from } => (acc, from, true),
            AggLookup::Miss => {
                let acc = match base.iter().find(|(s, _)| *s == spec.stable_sig()) {
                    Some((_, bytes)) => match AggAcc::decode(bytes) {
                        Some(acc) => acc,
                        None => {
                            return Some(Err(XqError::dynamic(format!(
                                "aggregate base cell of slice is unreadable ({key})"
                            ))))
                        }
                    },
                    None if base_members > 0 => {
                        // Released history exists but no cell matches this
                        // read — the rescan would silently ignore it.
                        return Some(Err(XqError::dynamic(format!(
                            "aggregate base cell missing for released slice history ({key})"
                        ))));
                    }
                    None => AggAcc::new(spec.op),
                };
                (acc, 0, false)
            }
        };
        for id in &ids[from..] {
            // Without a base, a load or fold error declines the read
            // (never cached) and the fallback rescan reproduces the
            // identical outcome; with one, the error must propagate.
            let root = match self.doc_root(*id) {
                Ok(Some(root)) => root,
                Ok(None) => continue,
                Err(e) if has_base => return Some(Err(e)),
                Err(_) => return None,
            };
            if let Err(e) = acc.absorb_member(spec, &root) {
                return if has_base { Some(Err(e)) } else { None };
            }
        }
        let result = acc.result();
        agg.store(&key, &scope, version, ids, acc, extended);
        Some(Ok(result))
    }
}

/// Lock-key category: queues first, then slices, then messages (matches
/// the historical string-tuple order).
fn lock_key_category(k: &LockKey) -> u8 {
    match k {
        LockKey::Queue(_) => 0,
        LockKey::Slice(..) => 1,
        LockKey::Message(_) => 2,
    }
}

/// Total order over property values for the slice-lock dimension: by type
/// tag, then by value (doubles via IEEE total order — only the *totality*
/// matters for lock ranking, not the numeric semantics).
fn cmp_prop_values(a: &PropValue, b: &PropValue) -> std::cmp::Ordering {
    match (a, b) {
        (PropValue::Str(x), PropValue::Str(y)) => x.cmp(y),
        (PropValue::Int(x), PropValue::Int(y)) => x.cmp(y),
        (PropValue::Bool(x), PropValue::Bool(y)) => x.cmp(y),
        (PropValue::Double(x), PropValue::Double(y)) => x.total_cmp(y),
        (PropValue::DateTime(x), PropValue::DateTime(y)) => x.cmp(y),
        (PropValue::Duration(x), PropValue::Duration(y)) => x.cmp(y),
        _ => a.tag().cmp(&b.tag()),
    }
}

fn cmp_lock_keys_with(
    a: &LockKey,
    b: &LockKey,
    queue_cmp: impl Fn(&str, &str) -> std::cmp::Ordering,
) -> std::cmp::Ordering {
    lock_key_category(a)
        .cmp(&lock_key_category(b))
        .then_with(|| match (a, b) {
            (LockKey::Queue(x), LockKey::Queue(y)) => queue_cmp(x, y),
            (LockKey::Slice(xs, xv), LockKey::Slice(ys, yv)) => {
                xs.cmp(ys).then_with(|| cmp_prop_values(xv, yv))
            }
            (LockKey::Message(x), LockKey::Message(y)) => x.0.cmp(&y.0),
            _ => std::cmp::Ordering::Equal,
        })
}

/// Queue locks in the analysis-derived flow rank (ties and unranked
/// queues by name).
fn cmp_lock_keys_ranked(
    a: &LockKey,
    b: &LockKey,
    ranks: &HashMap<String, u32>,
) -> std::cmp::Ordering {
    cmp_lock_keys_with(a, b, |x, y| {
        let rx = ranks.get(x).copied().unwrap_or(u32::MAX);
        let ry = ranks.get(y).copied().unwrap_or(u32::MAX);
        rx.cmp(&ry).then_with(|| x.cmp(y))
    })
}

/// The pre-analysis baseline: queue locks in name order.
fn cmp_lock_keys_by_name(a: &LockKey, b: &LockKey) -> std::cmp::Ordering {
    cmp_lock_keys_with(a, b, str::cmp)
}

/// Internal error classification during processing.
enum ProcessingError {
    Store(StoreError),
    Rule {
        rule: String,
        error_kind: String,
        detail: String,
    },
}

impl ProcessingError {
    fn rule(name: &str, e: XqError) -> ProcessingError {
        ProcessingError::Rule {
            rule: name.to_string(),
            error_kind: kind::APPLICATION.to_string(),
            detail: e.to_string(),
        }
    }
}

enum ExecError {
    Store(StoreError),
    App { kind: String, detail: String },
}
