//! Error messages as XML (paper Sec. 3.6).
//!
//! "Errors are represented by XML messages sent to error queues. … The
//! error message not only contains an error specification according to a
//! predefined schema, but may also contain (a reference to) the data which
//! caused the error, such as message IDs or corrupt incoming message
//! bodies."
//!
//! Schema produced here (matched by Fig. 10's `/error/disconnectedTransport`
//! pattern):
//!
//! ```xml
//! <error>
//!   <disconnectedTransport/>          <!-- error-kind element -->
//!   <detail>human readable text</detail>
//!   <rule>confirmOrder</rule>         <!-- when a rule was involved -->
//!   <queue>crm</queue>
//!   <messageID>m42</messageID>
//!   <initialMessage>…copy of the triggering message…</initialMessage>
//! </error>
//! ```

use demaq_store::MsgId;
use demaq_xml::{parse, DocBuilder, Document};
use std::sync::Arc;

/// Error-kind tokens for non-transport failures (transport kinds come from
/// [`demaq_net::TransportError::kind_element`]).
pub mod kind {
    /// XQuery evaluation failure inside a rule (dynamic/type errors).
    pub const APPLICATION: &str = "applicationError";
    /// Message rejected by a queue schema.
    pub const SCHEMA: &str = "schemaViolation";
    /// Property computation failed.
    pub const PROPERTY: &str = "propertyError";
    /// Incoming gateway payload was not well-formed XML.
    pub const MALFORMED: &str = "malformedMessage";
    /// Echo-queue message lacked timer properties.
    pub const TIMER: &str = "timerError";
}

/// Build an `<error>` document.
pub fn error_message(
    kind_element: &str,
    detail: &str,
    rule: Option<&str>,
    queue: &str,
    msg_id: Option<MsgId>,
    initial_payload: Option<&str>,
) -> Arc<Document> {
    let mut b = DocBuilder::new();
    b.start("error");
    b.start(kind_element).end();
    b.start("detail").text(detail).end();
    if let Some(r) = rule {
        b.start("rule").text(r).end();
    }
    b.start("queue").text(queue).end();
    if let Some(id) = msg_id {
        b.start("messageID").text(id.to_string()).end();
    }
    if let Some(payload) = initial_payload {
        b.start("initialMessage");
        match parse(payload) {
            Ok(doc) => {
                for c in doc.root().children() {
                    b.copy_node(&c);
                }
            }
            // Corrupt bodies are embedded as text, per the paper ("corrupt
            // incoming message bodies").
            Err(_) => {
                b.text(payload);
            }
        }
        b.end();
    }
    b.end();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_document_shape() {
        let doc = error_message(
            "disconnectedTransport",
            "endpoint `customer` is disconnected",
            Some("confirmOrder"),
            "crm",
            Some(MsgId(42)),
            Some("<customerOrder><orderID>7</orderID></customerOrder>"),
        );
        let xml = doc.root().to_xml();
        assert!(xml.starts_with("<error><disconnectedTransport/>"));
        assert!(xml.contains("<rule>confirmOrder</rule>"));
        assert!(xml.contains("<queue>crm</queue>"));
        assert!(xml.contains("<messageID>m42</messageID>"));
        assert!(xml.contains(
            "<initialMessage><customerOrder><orderID>7</orderID></customerOrder></initialMessage>"
        ));
        // The Fig. 10 patterns evaluate against it.
        let hit = demaq_xquery::eval_query("/error/disconnectedTransport", &doc.root()).unwrap();
        assert_eq!(hit.len(), 1);
        let oid = demaq_xquery::eval_query("string(/error/initialMessage//orderID)", &doc.root())
            .unwrap();
        assert_eq!(oid.to_string(), "7");
    }

    #[test]
    fn corrupt_payload_embedded_as_text() {
        let doc = error_message(
            kind::MALFORMED,
            "parse error",
            None,
            "gw",
            None,
            Some("<broken"),
        );
        let txt = demaq_xquery::eval_query("string(/error/initialMessage)", &doc.root()).unwrap();
        assert_eq!(txt.to_string(), "<broken");
    }
}
