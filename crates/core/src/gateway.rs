//! Gateway queues ↔ transport glue (paper Sec. 2.1.2 / 4.2).
//!
//! "By introducing gateway queues, all network-related operations can be
//! implemented by a communication subsystem providing a queue-based
//! interface." Outgoing gateway messages are handed to the simulated
//! transport (optionally through the reliable-messaging layer); incoming
//! gateway endpoints buffer deliveries for the server loop to enqueue.

use crate::app::CompiledApp;
use crate::properties::system;
use demaq_net::reliable::{reliable_receiver, ReliableSender};
use demaq_net::{Envelope, Network, TransportError};
use demaq_obs::Obs;
use demaq_qdl::QueueKind;
use demaq_store::{PropValue, StoredMessage};
use demaq_xml::NodeRef;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One outgoing gateway binding.
struct Outgoing {
    endpoint: String,
    reliable: Option<Arc<ReliableSender>>,
}

/// Gateway subsystem of one server.
pub struct GatewayManager {
    net: Arc<Network>,
    /// This server's own transport address (the `from` of outgoing mail).
    pub server_addr: String,
    outgoing: HashMap<String, Outgoing>,
    /// Buffered incoming deliveries: (queue, envelope).
    inbox: Arc<Mutex<Vec<(String, Envelope)>>>,
    reliable_senders: Vec<(String, Arc<ReliableSender>)>,
    obs: Arc<Obs>,
}

impl GatewayManager {
    /// Wire up every gateway queue of the application.
    pub fn new(
        app: &CompiledApp,
        net: Arc<Network>,
        server_addr: String,
        obs: Arc<Obs>,
    ) -> GatewayManager {
        Self::with_incoming_filter(app, net, server_addr, obs, None)
    }

    /// Like [`Self::new`], but when `incoming` is `Some`, only the named
    /// incoming-gateway queues register network listeners. A sharded
    /// server homes each incoming gateway on exactly one shard — two
    /// shards listening on the same address would both claim deliveries.
    pub fn with_incoming_filter(
        app: &CompiledApp,
        net: Arc<Network>,
        server_addr: String,
        obs: Arc<Obs>,
        incoming: Option<&std::collections::HashSet<String>>,
    ) -> GatewayManager {
        let inbox: Arc<Mutex<Vec<(String, Envelope)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut outgoing = HashMap::new();
        let mut reliable_senders = Vec::new();

        for (name, q) in &app.queues {
            match q.decl.kind {
                QueueKind::OutgoingGateway => {
                    // Destination: explicit `endpoint`, else derived from the
                    // WSDL service name, else the queue name itself.
                    let endpoint = q
                        .decl
                        .endpoint
                        .clone()
                        .or_else(|| {
                            q.interface
                                .as_ref()
                                .map(|i| format!("service:{}", i.service))
                        })
                        .unwrap_or_else(|| name.clone());
                    let reliable = if q
                        .decl
                        .extensions
                        .iter()
                        .any(|(e, _)| e == "WS-ReliableMessaging")
                    {
                        let sender = ReliableSender::new(
                            Arc::clone(&net),
                            format!("{server_addr}/acks/{name}"),
                            50,
                            25,
                        );
                        reliable_senders.push((name.clone(), Arc::clone(&sender)));
                        Some(sender)
                    } else {
                        None
                    };
                    outgoing.insert(name.clone(), Outgoing { endpoint, reliable });
                }
                QueueKind::IncomingGateway => {
                    if incoming.is_some_and(|set| !set.contains(name)) {
                        continue; // homed on another shard
                    }
                    // Listen address: explicit `endpoint` or the queue name.
                    let addr = q.decl.endpoint.clone().unwrap_or_else(|| name.clone());
                    let inbox2 = Arc::clone(&inbox);
                    let qname = name.clone();
                    let received = obs
                        .registry
                        .counter_with("demaq_gateway_received_total", &[("queue", name)]);
                    let tracer_obs = Arc::clone(&obs);
                    let handler: demaq_net::DeliveryHandler = Arc::new(move |env: Envelope| {
                        received.inc();
                        tracer_obs
                            .tracer
                            .event("gateway.recv", None, &qname, &env.from);
                        inbox2.lock().push((qname.clone(), env));
                    });
                    // Incoming gateways always understand the reliable
                    // protocol (acks + dedup are harmless for plain sends).
                    net.register(&addr, reliable_receiver(Arc::clone(&net), handler));
                }
                _ => {}
            }
        }
        GatewayManager {
            net,
            server_addr,
            outgoing,
            inbox,
            reliable_senders,
            obs,
        }
    }

    /// Send one outgoing-gateway message. `body_root` is the parsed payload
    /// (used for WSDL validation by the caller); properties feed envelope
    /// metadata:
    /// * `Sender` — correlation header for the remote service (Example 3.1),
    /// * `Recipient` — overrides the gateway's destination address,
    /// * `connection` — synchronous exchange correlation handle.
    pub fn send(
        &self,
        queue: &str,
        msg: &StoredMessage,
        _body_root: &NodeRef,
    ) -> Result<(), TransportError> {
        let out = self
            .outgoing
            .get(queue)
            .ok_or_else(|| TransportError::NoRoute(format!("queue `{queue}` is not a gateway")))?;
        let to = match msg.prop("Recipient") {
            Some(PropValue::Str(addr)) => addr.clone(),
            _ => out.endpoint.clone(),
        };
        let to_addr = to.clone();
        let mut env = Envelope::new(to, self.server_addr.clone(), msg.payload.to_string());
        if let Some(PropValue::Str(s)) = msg.prop("Sender") {
            env = env.with_header("Sender", s.clone());
        }
        if let Some(PropValue::Str(r)) = msg.prop("creatingRule") {
            // Carried so that reliability-layer failures can still route to
            // the creating rule's error queue.
            env = env.with_header("creatingRule", r.clone());
        }
        // Causal provenance across the hop: whatever the receiver enqueues
        // from this envelope is a child of *this* message, in the tree this
        // message belongs to (its own root, or itself if it is the root).
        env = env.with_header(system::PARENT_MSG, msg.id.0.to_string());
        let root = match msg.prop(system::ROOT_MSG) {
            Some(PropValue::Int(r)) => *r as u64,
            _ => msg.id.0,
        };
        env = env.with_header(system::ROOT_MSG, root.to_string());
        if let Some(PropValue::Int(c)) = msg.prop("connection") {
            env = env.with_conn(demaq_net::ConnectionHandle(*c as u64));
        }
        let result = match &out.reliable {
            Some(sender) => sender.send(env),
            None => self.net.send(env),
        };
        match &result {
            Ok(()) => {
                self.obs
                    .registry
                    .counter_with("demaq_gateway_sent_total", &[("queue", queue)])
                    .inc();
                self.obs
                    .tracer
                    .event("gateway.send", Some(msg.id.0), queue, &to_addr);
            }
            Err(e) => {
                self.obs
                    .registry
                    .counter_with("demaq_gateway_send_failures_total", &[("queue", queue)])
                    .inc();
                self.obs
                    .tracer
                    .event("gateway.send_fail", Some(msg.id.0), queue, &e.to_string());
            }
        }
        result
    }

    /// Drain buffered incoming deliveries.
    pub fn take_inbox(&self) -> Vec<(String, Envelope)> {
        std::mem::take(&mut self.inbox.lock())
    }

    /// Retransmit timers for reliable channels; collect exhausted sends as
    /// (gateway queue, envelope, error) for error-queue routing.
    pub fn tick(&self) -> Vec<(String, Envelope, TransportError)> {
        let mut failures = Vec::new();
        for (queue, sender) in &self.reliable_senders {
            sender.tick();
            for (env, err) in sender.take_failed() {
                self.obs
                    .registry
                    .counter_with("demaq_gateway_send_failures_total", &[("queue", queue)])
                    .inc();
                self.obs
                    .tracer
                    .event("gateway.send_fail", None, queue, &err.to_string());
                failures.push((queue.clone(), env, err));
            }
        }
        failures
    }

    /// Earliest upcoming reliable retransmission, for clock fast-forward.
    pub fn next_retry_at(&self) -> Option<i64> {
        self.reliable_senders
            .iter()
            .filter_map(|(_, s)| s.next_retry_at())
            .min()
    }

    /// Total retransmissions across channels (stats).
    pub fn retransmissions(&self) -> u64 {
        self.reliable_senders
            .iter()
            .map(|(_, s)| s.retransmissions())
            .sum()
    }
}
