//! The `qs:` function library (paper Sec. 3.4/3.5.2), exposed to rule
//! bodies through the XQuery engine's host-function hook.
//!
//! A fresh [`QsHost`] is built for each message-processing evaluation,
//! closing over the triggering message, its properties, the queue reader,
//! and — for rules on slicings — the current slice.

use demaq_store::PropValue;
use demaq_xml::{Document, NodeRef, QName};
use demaq_xquery::value::{parse_date_time, parse_duration};
use demaq_xquery::{Atomic, Error as XqError, HostFunctions, Item, Sequence};
use std::collections::HashMap;
use std::sync::Arc;

/// Convert a stored property value to an XQuery atomic.
pub fn prop_to_atomic(v: &PropValue) -> Atomic {
    match v {
        PropValue::Str(s) => Atomic::Str(s.clone()),
        PropValue::Int(i) => Atomic::Int(*i),
        PropValue::Bool(b) => Atomic::Bool(*b),
        PropValue::Double(d) => Atomic::Double(*d),
        PropValue::DateTime(ms) => Atomic::DateTime(*ms),
        PropValue::Duration(ms) => Atomic::Duration(*ms),
    }
}

/// Convert an XQuery atomic to a stored property value.
pub fn atomic_to_prop(a: &Atomic) -> PropValue {
    match a {
        Atomic::Str(s) | Atomic::Untyped(s) => PropValue::Str(s.clone()),
        Atomic::Int(i) => PropValue::Int(*i),
        Atomic::Bool(b) => PropValue::Bool(*b),
        Atomic::Decimal(d) | Atomic::Double(d) => PropValue::Double(*d),
        Atomic::DateTime(ms) => PropValue::DateTime(*ms),
        Atomic::Duration(ms) => PropValue::Duration(*ms),
        Atomic::QName(q) => PropValue::Str(q.lexical()),
    }
}

/// Cast a property value to the `xs:` type a QDL declaration names.
pub fn cast_prop(v: &PropValue, ty: &str) -> Result<PropValue, String> {
    let err = |m: String| m;
    match ty {
        "xs:string" => Ok(PropValue::Str(v.render())),
        "xs:integer" | "xs:int" | "xs:long" => match v {
            PropValue::Int(i) => Ok(PropValue::Int(*i)),
            PropValue::Double(d) if d.is_finite() => Ok(PropValue::Int(*d as i64)),
            PropValue::Bool(b) => Ok(PropValue::Int(*b as i64)),
            PropValue::Str(s) => s
                .trim()
                .parse()
                .map(PropValue::Int)
                .map_err(|_| err(format!("cannot cast `{s}` to {ty}"))),
            other => Err(err(format!("cannot cast {other:?} to {ty}"))),
        },
        "xs:boolean" => match v {
            PropValue::Bool(b) => Ok(PropValue::Bool(*b)),
            PropValue::Int(i) => Ok(PropValue::Bool(*i != 0)),
            PropValue::Str(s) => match s.trim() {
                "true" | "1" => Ok(PropValue::Bool(true)),
                "false" | "0" => Ok(PropValue::Bool(false)),
                other => Err(err(format!("cannot cast `{other}` to xs:boolean"))),
            },
            other => Err(err(format!("cannot cast {other:?} to xs:boolean"))),
        },
        "xs:double" | "xs:decimal" => match v {
            PropValue::Double(d) => Ok(PropValue::Double(*d)),
            PropValue::Int(i) => Ok(PropValue::Double(*i as f64)),
            PropValue::Str(s) => s
                .trim()
                .parse()
                .map(PropValue::Double)
                .map_err(|_| err(format!("cannot cast `{s}` to {ty}"))),
            other => Err(err(format!("cannot cast {other:?} to {ty}"))),
        },
        "xs:dateTime" => match v {
            PropValue::DateTime(ms) => Ok(PropValue::DateTime(*ms)),
            PropValue::Int(ms) => Ok(PropValue::DateTime(*ms)),
            PropValue::Str(s) => parse_date_time(s)
                .map(PropValue::DateTime)
                .ok_or_else(|| err(format!("cannot cast `{s}` to xs:dateTime"))),
            other => Err(err(format!("cannot cast {other:?} to xs:dateTime"))),
        },
        "xs:dayTimeDuration" | "xs:duration" => match v {
            PropValue::Duration(ms) => Ok(PropValue::Duration(*ms)),
            PropValue::Int(ms) => Ok(PropValue::Duration(*ms)),
            PropValue::Str(s) => parse_duration(s)
                .map(PropValue::Duration)
                .ok_or_else(|| err(format!("cannot cast `{s}` to xs:dayTimeDuration"))),
            other => Err(err(format!("cannot cast {other:?} to {ty}"))),
        },
        other => Err(err(format!("unsupported property type `{other}`"))),
    }
}

/// Reader giving rule evaluation access to queue contents: returns the
/// document roots of all retained messages of a queue.
pub type QueueReader = Arc<dyn Fn(&str) -> Result<Sequence, XqError> + Send + Sync>;

/// Deferred loader for a slice's member documents.
pub type SliceLoader = Arc<dyn Fn() -> Result<Sequence, XqError> + Send + Sync>;

/// Answer a recognized aggregate read from a materialized cell. The second
/// argument carries the firing rule's `(slicing, key)` when the read is
/// over `qs:slice()`. `None` declines — the evaluator falls back to the
/// reference rescan.
pub type AggregateReader = Arc<
    dyn Fn(&demaq_xquery::AggregateSpec, Option<(&str, &PropValue)>) -> Option<Result<Sequence, XqError>>
        + Send
        + Sync,
>;

/// The slice context for rules attached to slicings.
///
/// Member documents are materialized *lazily*: a rule body that never
/// touches `qs:slice()` — or whose aggregate reads are answered by the
/// incremental registry — never pays the O(N) member load.
pub struct SliceCtx {
    pub slicing: String,
    pub key: PropValue,
    members: SliceMembers,
}

enum SliceMembers {
    Ready(Sequence),
    Lazy {
        cell: std::sync::OnceLock<Result<Sequence, XqError>>,
        load: SliceLoader,
    },
}

impl SliceCtx {
    /// A slice context with its member documents already in hand.
    pub fn with_members(slicing: String, key: PropValue, members: Sequence) -> SliceCtx {
        SliceCtx {
            slicing,
            key,
            members: SliceMembers::Ready(members),
        }
    }

    /// A slice context that loads member documents on first use.
    pub fn lazy(slicing: String, key: PropValue, load: SliceLoader) -> SliceCtx {
        SliceCtx {
            slicing,
            key,
            members: SliceMembers::Lazy {
                cell: std::sync::OnceLock::new(),
                load,
            },
        }
    }

    /// Document roots of the slice's current members (loaded at most once).
    pub fn members(&self) -> Result<Sequence, XqError> {
        match &self.members {
            SliceMembers::Ready(s) => Ok(s.clone()),
            SliceMembers::Lazy { cell, load } => cell.get_or_init(|| load()).clone(),
        }
    }
}

/// Host functions for one rule-evaluation pass.
pub struct QsHost {
    /// Document root of the triggering message.
    pub message: NodeRef,
    /// Properties of the triggering message (system + declared).
    pub properties: Vec<(String, PropValue)>,
    /// Name of the queue containing the triggering message.
    pub queue_name: String,
    pub queue_reader: QueueReader,
    pub slice: Option<SliceCtx>,
    /// Incremental aggregate registry hook; `None` when the feature is
    /// disabled (the rescan twin) or the host has no engine behind it.
    pub agg_reader: Option<AggregateReader>,
    /// Master data collections (paper Sec. 3.5.2's `collection("crm")`).
    pub collections: Arc<HashMap<String, Vec<Arc<Document>>>>,
    /// Engine clock reading for `fn:current-dateTime()`.
    pub now_ms: i64,
}

impl HostFunctions for QsHost {
    fn call(&self, name: &QName, args: &[Sequence]) -> Option<Result<Sequence, XqError>> {
        if name.prefix.as_deref() != Some("qs") {
            return None;
        }
        let arity = args.len();
        Some(match (name.local.as_str(), arity) {
            ("message", 0) => Ok(Sequence::one(self.message.clone())),
            ("queue", 1) => {
                let qname = match args[0].string_value() {
                    Ok(s) => s,
                    Err(e) => return Some(Err(e)),
                };
                (self.queue_reader)(&qname)
            }
            ("queue", 0) => Err(XqError::dynamic(
                "qs:queue() without arguments is only valid in rules on queues \
                 (the compiler injects the queue name)",
            )),
            ("property", 1) => {
                let pname = match args[0].string_value() {
                    Ok(s) => s,
                    Err(e) => return Some(Err(e)),
                };
                match self.properties.iter().find(|(n, _)| *n == pname) {
                    Some((_, v)) => Ok(Sequence::one(prop_to_atomic(v))),
                    None => Ok(Sequence::empty()),
                }
            }
            ("queuename", 0) => Ok(Sequence::str(self.queue_name.clone())),
            ("slice", 0) => match &self.slice {
                Some(ctx) => ctx.members(),
                None => Err(XqError::dynamic(
                    "qs:slice() is only available in rules on slicings (paper Sec. 3.5.2)",
                )),
            },
            ("slicekey", 0) => match &self.slice {
                Some(ctx) => Ok(Sequence::one(prop_to_atomic(&ctx.key))),
                None => Err(XqError::dynamic(
                    "qs:slicekey() is only available in rules on slicings (paper Sec. 3.5.2)",
                )),
            },
            (other, n) => Err(XqError::unknown_function(format!(
                "unknown function qs:{other}#{n}"
            ))),
        })
    }

    fn aggregate(
        &self,
        spec: &demaq_xquery::AggregateSpec,
    ) -> Option<Result<Sequence, XqError>> {
        let rd = self.agg_reader.as_ref()?;
        match &spec.source {
            demaq_xquery::AggSource::Queue(_) => rd(spec, None),
            // Outside a slice context, decline: the fallback reproduces the
            // reference "qs:slice() is only available…" error.
            demaq_xquery::AggSource::Slice => {
                let ctx = self.slice.as_ref()?;
                rd(spec, Some((&ctx.slicing, &ctx.key)))
            }
        }
    }

    fn collection(&self, name: &str) -> Result<Sequence, XqError> {
        match self.collections.get(name) {
            Some(docs) => Ok(docs.iter().map(|d| Item::Node(d.root())).collect()),
            None => Err(XqError::dynamic(format!(
                "no collection `{name}` registered"
            ))),
        }
    }

    fn current_date_time_ms(&self) -> i64 {
        self.now_ms
    }
}

/// Minimal host used when evaluating property value expressions (they may
/// call `current-dateTime()` but have no queue context).
pub struct ClockHost {
    pub now_ms: i64,
}

impl HostFunctions for ClockHost {
    fn call(&self, _name: &QName, _args: &[Sequence]) -> Option<Result<Sequence, XqError>> {
        None
    }

    fn current_date_time_ms(&self) -> i64 {
        self.now_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop_atomic_roundtrip() {
        let values = vec![
            PropValue::Str("x".into()),
            PropValue::Int(-7),
            PropValue::Bool(true),
            PropValue::Double(2.5),
            PropValue::DateTime(1000),
            PropValue::Duration(500),
        ];
        for v in values {
            assert_eq!(atomic_to_prop(&prop_to_atomic(&v)), v);
        }
    }

    #[test]
    fn cast_prop_types() {
        assert_eq!(
            cast_prop(&PropValue::Str("42".into()), "xs:integer"),
            Ok(PropValue::Int(42))
        );
        assert_eq!(
            cast_prop(&PropValue::Int(1), "xs:boolean"),
            Ok(PropValue::Bool(true))
        );
        assert_eq!(
            cast_prop(&PropValue::Str("false".into()), "xs:boolean"),
            Ok(PropValue::Bool(false))
        );
        assert_eq!(
            cast_prop(&PropValue::Int(3), "xs:string"),
            Ok(PropValue::Str("3".into()))
        );
        assert_eq!(
            cast_prop(&PropValue::Str("PT5S".into()), "xs:dayTimeDuration"),
            Ok(PropValue::Duration(5000))
        );
        assert!(cast_prop(&PropValue::Str("zap".into()), "xs:integer").is_err());
        assert!(cast_prop(&PropValue::Str("x".into()), "xs:nosuch").is_err());
    }

    #[test]
    fn qs_functions_through_host() {
        use demaq_xquery::{parse_expr, DynamicContext, Evaluator, StaticContext};
        let msg = demaq_xml::parse("<order><id>9</id></order>").unwrap();
        let inv = demaq_xml::parse("<invoice>55</invoice>").unwrap();
        let inv2 = inv.clone();
        let host = QsHost {
            message: msg.root(),
            properties: vec![("orderID".into(), PropValue::Str("o9".into()))],
            queue_name: "crm".into(),
            queue_reader: Arc::new(move |q| {
                if q == "invoices" {
                    Ok(Sequence::one(inv2.root()))
                } else {
                    Ok(Sequence::empty())
                }
            }),
            slice: Some(SliceCtx::with_members(
                "orders".into(),
                PropValue::Str("o9".into()),
                Sequence::one(msg.root()),
            )),
            agg_reader: None,
            collections: Arc::new(HashMap::new()),
            now_ms: 86_400_000,
        };
        let sctx = StaticContext::default();
        let dctx = DynamicContext::new(Arc::new(host));
        let eval = |q: &str| {
            let expr = parse_expr(q).unwrap();
            let mut ev = Evaluator::new(&sctx, &dctx);
            ev.eval_with_context(&expr, msg.root()).unwrap().to_string()
        };
        assert_eq!(eval("qs:message()//id"), "9");
        assert_eq!(eval("string(qs:queue('invoices'))"), "55");
        assert_eq!(eval("qs:property('orderID')"), "o9");
        assert_eq!(eval("qs:property('nope')"), "");
        assert_eq!(eval("qs:queuename()"), "crm");
        assert_eq!(eval("qs:slicekey()"), "o9");
        assert_eq!(eval("count(qs:slice())"), "1");
        assert_eq!(eval("string(current-dateTime())"), "1970-01-02T00:00:00Z");
    }

    #[test]
    fn slice_functions_error_without_slice_context() {
        use demaq_xquery::{parse_expr, DynamicContext, Evaluator, StaticContext};
        let msg = demaq_xml::parse("<m/>").unwrap();
        let host = QsHost {
            message: msg.root(),
            properties: vec![],
            queue_name: "q".into(),
            queue_reader: Arc::new(|_| Ok(Sequence::empty())),
            slice: None,
            agg_reader: None,
            collections: Arc::new(HashMap::new()),
            now_ms: 0,
        };
        let sctx = StaticContext::default();
        let dctx = DynamicContext::new(Arc::new(host));
        let mut ev = Evaluator::new(&sctx, &dctx);
        let expr = parse_expr("qs:slice()").unwrap();
        assert!(ev.eval_with_context(&expr, msg.root()).is_err());
    }
}
