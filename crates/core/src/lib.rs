//! # demaq — declarative XML message processing
//!
//! Reproduction of *"Demaq: A Foundation for Declarative XML Message
//! Processing"* (Böhm, Kanne, Moerkotte — CIDR 2007).
//!
//! A Demaq application is a set of XML message queues plus declarative
//! rules for message flow between them. This crate is the engine: it
//! compiles a QDL/QML program (parsed by `demaq-qdl`), hosts the queues on
//! the transactional append-only message store (`demaq-store`), evaluates
//! rules with the XQuery engine (`demaq-xquery`), and connects gateway
//! queues to the simulated transport (`demaq-net`).
//!
//! ```no_run
//! use demaq::Server;
//!
//! let program = r#"
//!     create queue inbox kind basic mode persistent
//!     create queue outbox kind basic mode persistent
//!     create rule fwd for inbox
//!       if (//order) then do enqueue <ack>{//order/id}</ack> into outbox
//! "#;
//! let mut server = Server::builder().program(program).in_memory().build().unwrap();
//! server.enqueue_external("inbox", "<order><id>7</id></order>").unwrap();
//! server.run_until_idle().unwrap();
//! assert_eq!(server.queue_bodies("outbox").unwrap(), ["<ack><id>7</id></ack>"]);
//! ```
//!
//! ## Execution model (paper Sec. 3.1)
//!
//! Each unprocessed message is processed exactly once, in an order chosen
//! by the [`scheduler`] (queue priority, then arrival). Processing one
//! message evaluates *all* rules pertaining to its queue — including rules
//! attached to slicings whose property is defined on that queue — and
//! yields a pending action list that is executed in the same store
//! transaction, giving snapshot semantics. Errors route to error queues as
//! XML messages (Sec. 3.6).

pub mod aggregates;
pub mod app;
pub mod cache;
pub mod compiler;
pub mod engine;
pub mod errors;
pub mod gateway;
pub mod host;
pub mod properties;
pub mod scheduler;
pub mod shard;

pub use app::CompiledApp;
pub use demaq_analysis as analysis;
pub use demaq_obs::{Lineage, LineageRecord, ProvenanceIndex, TraceFilter};
pub use engine::{EngineError, RuleProfile, Server, ServerBuilder, ServerStats, StrictAnalysis};
pub use shard::{ShardedServer, ShardedServerBuilder};

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
