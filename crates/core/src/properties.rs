//! Property computation at message creation (paper Sec. 2.2).
//!
//! "Properties are key/value pairs, with unique names and a typed, atomic
//! value. They are determined during message creation and remain fixed
//! over the message's lifetime." Sources, in the paper's order:
//!
//! * **Explicit** — `with p value e` on `do enqueue` (rejected for `fixed`
//!   properties),
//! * **System** — set by the engine (creating rule, creation timestamp,
//!   sender of incoming gateway messages, connection handle),
//! * **Inherited** — copied from the triggering message,
//! * **Computed** — the declaration's `queue … value Expr` binding
//!   evaluated against the new message body.

use crate::app::CompiledApp;
use crate::host::{atomic_to_prop, cast_prop, ClockHost};
use demaq_qdl::PropKind;
use demaq_store::PropValue;
use demaq_xml::NodeRef;
use demaq_xquery::{Atomic, DynamicContext, Evaluator, StaticContext};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-global count of property bindings answered from the deploy-time
/// constant fold instead of re-evaluation (mirrored into each server's
/// registry as `demaq_core_prop_const_hits_total`).
static PROP_CONST_HITS: AtomicU64 = AtomicU64::new(0);

/// Current reading of the constant-binding hit counter.
pub fn prop_const_hits_total() -> u64 {
    PROP_CONST_HITS.load(Ordering::Relaxed)
}

/// Property computation failure (routed to error queues as an
/// application-program-related error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropError(pub String);

impl std::fmt::Display for PropError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "property error: {}", self.0)
    }
}
impl std::error::Error for PropError {}

/// Names reserved for system properties.
pub mod system {
    /// Rule that created the message.
    pub const CREATING_RULE: &str = "creatingRule";
    /// Creation timestamp (xs:dateTime, engine clock).
    pub const CREATED_AT: &str = "createdAt";
    /// Sender address (incoming gateway messages).
    pub const SENDER: &str = "Sender";
    /// Connection handle for synchronous exchanges.
    pub const CONNECTION: &str = "connection";
    /// Comma-joined queues an error message's routing has already
    /// visited; the engine uses it to break error-queue cycles at
    /// runtime (Sec. 3.6 backstop).
    pub const ERROR_PATH: &str = "errorPath";
    /// Id of the message whose processing caused this enqueue (causal
    /// provenance; absent on root messages).
    pub const PARENT_MSG: &str = "parentMsg";
    /// Id of the root message of this causal tree (provenance; a root
    /// message carries its own id).
    pub const ROOT_MSG: &str = "rootMsg";
}

/// Compute the full property list for a message entering `queue`.
///
/// * `explicit` — values from `with … value …` clauses,
/// * `trigger_props` — the triggering message's properties (inheritance
///   source; `None` for external messages),
/// * `system_props` — engine-provided system properties.
pub fn compute_properties(
    app: &CompiledApp,
    queue: &str,
    msg_root: &NodeRef,
    explicit: &[(String, Atomic)],
    trigger_props: Option<&[(String, PropValue)]>,
    system_props: Vec<(String, PropValue)>,
    now_ms: i64,
) -> Result<Vec<(String, PropValue)>, PropError> {
    let mut out: Vec<(String, PropValue)> = Vec::new();
    let set = |out: &mut Vec<(String, PropValue)>, name: &str, v: PropValue| {
        if let Some(slot) = out.iter_mut().find(|(n, _)| n == name) {
            slot.1 = v;
        } else {
            out.push((name.to_string(), v));
        }
    };

    // System properties first; explicit values may not override them.
    for (n, v) in system_props {
        set(&mut out, &n, v);
    }

    let sctx = StaticContext::default();
    let dctx = DynamicContext::new(Arc::new(ClockHost { now_ms }));

    // Declared properties relevant to this queue, in declaration order.
    for prop in &app.spec.properties {
        let binding = prop
            .bindings
            .iter()
            .find(|b| b.queues.iter().any(|q| q == queue));
        // Deploy-time constant fold: reuse the precomputed value instead
        // of re-running the evaluator for `value <const>` bindings.
        let eval_bound = |b: &demaq_qdl::PropBinding| -> Result<Option<PropValue>, PropError> {
            if let Some(v) = app
                .const_prop_bindings
                .get(&prop.name)
                .and_then(|per_queue| per_queue.get(queue))
            {
                PROP_CONST_HITS.fetch_add(1, Ordering::Relaxed);
                return Ok(v.clone());
            }
            eval_binding(&sctx, &dctx, &b.value, msg_root)
        };
        let relevant = binding.is_some() || prop.kind == PropKind::Inherited;
        if !relevant {
            continue;
        }
        let explicit_value = explicit
            .iter()
            .find(|(n, _)| *n == prop.name)
            .map(|(_, a)| a);
        if explicit_value.is_some() && prop.kind == PropKind::Fixed {
            return Err(PropError(format!(
                "property `{}` is fixed and may not be set explicitly",
                prop.name
            )));
        }
        let raw: Option<PropValue> = if let Some(a) = explicit_value {
            Some(atomic_to_prop(a))
        } else if prop.kind == PropKind::Fixed {
            // Always computed.
            match binding {
                Some(b) => eval_bound(b)?,
                None => None,
            }
        } else if prop.kind == PropKind::Inherited {
            // Inherit from the trigger; fall back to the binding default.
            let inherited = trigger_props
                .and_then(|tp| tp.iter().find(|(n, _)| *n == prop.name))
                .map(|(_, v)| v.clone());
            match inherited {
                Some(v) => Some(v),
                None => match binding {
                    Some(b) => eval_bound(b)?,
                    None => None,
                },
            }
        } else {
            // Explicit-kind property without an explicit value: the binding
            // is its default/computed value.
            match binding {
                Some(b) => eval_bound(b)?,
                None => None,
            }
        };
        if let Some(v) = raw {
            let typed = cast_prop(&v, &prop.ty)
                .map_err(|e| PropError(format!("property `{}`: {e}", prop.name)))?;
            set(&mut out, &prop.name, typed);
        }
    }

    // Undeclared explicit properties are allowed as ad-hoc values (the
    // paper's Example 3.1 sets `Sender` without a declaration).
    for (name, a) in explicit {
        let declared = app.properties.contains_key(name);
        if !declared && !out.iter().any(|(n, _)| n == name) {
            out.push((name.clone(), atomic_to_prop(a)));
        } else if !declared {
            // Explicit wins over a same-named system default, except the
            // engine-owned ones (forging provenance would corrupt the
            // causal index).
            let engine_owned = name == system::CREATING_RULE
                || name == system::CREATED_AT
                || name == system::PARENT_MSG
                || name == system::ROOT_MSG;
            if !engine_owned {
                set(&mut out, name, atomic_to_prop(a));
            }
        }
    }

    Ok(out)
}

fn eval_binding(
    sctx: &StaticContext,
    dctx: &DynamicContext,
    value: &demaq_xquery::Expr,
    msg_root: &NodeRef,
) -> Result<Option<PropValue>, PropError> {
    let mut ev = Evaluator::new(sctx, dctx);
    let seq = ev
        .eval_with_context(value, msg_root.clone())
        .map_err(|e| PropError(format!("value expression failed: {e}")))?;
    Ok(seq.0.first().map(|item| atomic_to_prop(&item.atomize())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::CompiledApp;
    use demaq_qdl::parse_program;
    use std::collections::HashMap;

    fn app(src: &str) -> CompiledApp {
        CompiledApp::compile(parse_program(src).unwrap(), &HashMap::new()).unwrap()
    }

    const PROGRAM: &str = r#"
        create queue order kind basic mode persistent
        create queue confirmation kind basic mode persistent
        create property orderID as xs:string fixed
            queue order value //orderID
            queue confirmation value /confirmedOrder/ID
        create property isVIPorder as xs:boolean inherited
            queue order, confirmation value false
        create property amount as xs:integer
            queue order value //total
    "#;

    fn root(xml: &str) -> NodeRef {
        demaq_xml::parse(xml).unwrap().root()
    }

    #[test]
    fn computed_fixed_property() {
        let app = app(PROGRAM);
        let msg = root("<order><orderID>o-1</orderID><total>5</total></order>");
        let props = compute_properties(&app, "order", &msg, &[], None, vec![], 0).unwrap();
        assert!(props.contains(&("orderID".into(), PropValue::Str("o-1".into()))));
        assert!(props.contains(&("amount".into(), PropValue::Int(5))));
        assert!(props.contains(&("isVIPorder".into(), PropValue::Bool(false))));
    }

    #[test]
    fn per_queue_computed_values_differ() {
        let app = app(PROGRAM);
        let msg = root("<confirmedOrder><ID>c-9</ID></confirmedOrder>");
        let props = compute_properties(&app, "confirmation", &msg, &[], None, vec![], 0).unwrap();
        assert!(props.contains(&("orderID".into(), PropValue::Str("c-9".into()))));
    }

    #[test]
    fn fixed_rejects_explicit() {
        let app = app(PROGRAM);
        let msg = root("<order><orderID>o</orderID></order>");
        let explicit = vec![("orderID".to_string(), Atomic::Str("forged".into()))];
        let err = compute_properties(&app, "order", &msg, &explicit, None, vec![], 0).unwrap_err();
        assert!(err.0.contains("fixed"));
    }

    #[test]
    fn inherited_property_propagates() {
        let app = app(PROGRAM);
        let msg = root("<order><orderID>o</orderID></order>");
        let trigger = vec![("isVIPorder".to_string(), PropValue::Bool(true))];
        let props =
            compute_properties(&app, "order", &msg, &[], Some(&trigger), vec![], 0).unwrap();
        assert!(props.contains(&("isVIPorder".into(), PropValue::Bool(true))));
    }

    #[test]
    fn explicit_overrides_inheritance() {
        // Paper: "automatically propagated … if not explicitly set to a
        // different value".
        let app = app(PROGRAM);
        let msg = root("<order/>");
        let trigger = vec![("isVIPorder".to_string(), PropValue::Bool(true))];
        let explicit = vec![("isVIPorder".to_string(), Atomic::Bool(false))];
        let props =
            compute_properties(&app, "order", &msg, &explicit, Some(&trigger), vec![], 0).unwrap();
        assert!(props.contains(&("isVIPorder".into(), PropValue::Bool(false))));
    }

    #[test]
    fn missing_path_value_leaves_property_absent() {
        let app = app(PROGRAM);
        let msg = root("<order><nothing/></order>");
        let props = compute_properties(&app, "order", &msg, &[], None, vec![], 0).unwrap();
        assert!(!props.iter().any(|(n, _)| n == "orderID"));
    }

    #[test]
    fn type_cast_failure_is_an_error() {
        let app = app(PROGRAM);
        let msg = root("<order><total>not-a-number</total></order>");
        let err = compute_properties(&app, "order", &msg, &[], None, vec![], 0).unwrap_err();
        assert!(err.0.contains("amount"));
    }

    #[test]
    fn undeclared_explicit_properties_allowed() {
        let app = app(PROGRAM);
        let msg = root("<order/>");
        let explicit = vec![("Sender".to_string(), Atomic::Str("http://x/".into()))];
        let props = compute_properties(&app, "order", &msg, &explicit, None, vec![], 0).unwrap();
        assert!(props.contains(&("Sender".into(), PropValue::Str("http://x/".into()))));
    }

    #[test]
    fn constant_bindings_fold_at_deploy_time() {
        let app = app(PROGRAM);
        // `isVIPorder … value false` is a constant binding: folded once at
        // compile, reused per enqueue.
        assert_eq!(
            app.const_prop_bindings["isVIPorder"]["order"],
            Some(PropValue::Bool(false))
        );
        // Path-valued bindings are not constants.
        assert!(!app.const_prop_bindings.contains_key("orderID"));
        assert!(!app.const_prop_bindings.contains_key("amount"));
        let before = prop_const_hits_total();
        let msg = root("<order><orderID>o</orderID></order>");
        let props = compute_properties(&app, "order", &msg, &[], None, vec![], 0).unwrap();
        assert!(props.contains(&("isVIPorder".into(), PropValue::Bool(false))));
        assert!(
            prop_const_hits_total() > before,
            "constant binding must be served from the fold"
        );
    }

    #[test]
    fn system_properties_present() {
        let app = app(PROGRAM);
        let msg = root("<order/>");
        let sys = vec![
            (
                system::CREATING_RULE.to_string(),
                PropValue::Str("r1".into()),
            ),
            (system::CREATED_AT.to_string(), PropValue::DateTime(123)),
        ];
        let props = compute_properties(&app, "order", &msg, &[], None, sys, 0).unwrap();
        assert!(props.contains(&("creatingRule".into(), PropValue::Str("r1".into()))));
        assert!(props.contains(&("createdAt".into(), PropValue::DateTime(123))));
    }
}
