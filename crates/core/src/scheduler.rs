//! The message scheduler (paper Sec. 3.1 / 4.4.2).
//!
//! "The scheduler maintains a list of all unprocessed messages and chooses
//! the next message to be handled, considering both their temporal
//! ordering and the priority of the containing queues. Thus, a message in
//! a high priority queue may be processed before another one stored in a
//! queue with a lower priority, even if it has been created more recently."

use demaq_store::MsgId;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// One schedulable unit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WorkItem {
    priority: i32,
    /// Arrival order: lower MsgId first within a priority class.
    msg: Reverse<MsgId>,
    queue: String,
}

impl PartialOrd for WorkItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorkItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: highest priority first, then earliest message.
        (self.priority, &self.msg).cmp(&(other.priority, &other.msg))
    }
}

/// Priority/arrival-order scheduler over unprocessed messages.
#[derive(Default)]
pub struct Scheduler {
    inner: Mutex<SchedState>,
}

#[derive(Default)]
struct SchedState {
    heap: BinaryHeap<WorkItem>,
    /// Guards against double-scheduling (e.g. recovery + runtime).
    queued: HashSet<MsgId>,
}

impl Scheduler {
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Add an unprocessed message.
    pub fn push(&self, msg: MsgId, queue: &str, priority: i32) {
        let mut st = self.inner.lock();
        if st.queued.insert(msg) {
            st.heap.push(WorkItem {
                priority,
                msg: Reverse(msg),
                queue: queue.to_string(),
            });
        }
    }

    /// Claim the next message to process.
    pub fn pop(&self) -> Option<(MsgId, String)> {
        let mut st = self.inner.lock();
        let item = st.heap.pop()?;
        st.queued.remove(&item.msg.0);
        Some((item.msg.0, item.queue))
    }

    /// Put a message back (lock conflict / deadlock retry) — it keeps its
    /// position by id.
    pub fn requeue(&self, msg: MsgId, queue: &str, priority: i32) {
        self.push(msg, queue, priority);
    }

    /// Pending count.
    pub fn len(&self) -> usize {
        self.inner.lock().heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_then_arrival() {
        let s = Scheduler::new();
        s.push(MsgId(1), "lo", 0);
        s.push(MsgId(2), "hi", 10);
        s.push(MsgId(3), "lo", 0);
        s.push(MsgId(4), "hi", 10);
        let order: Vec<MsgId> = std::iter::from_fn(|| s.pop().map(|(m, _)| m)).collect();
        // High-priority first (in arrival order), then low-priority.
        assert_eq!(order, [MsgId(2), MsgId(4), MsgId(1), MsgId(3)]);
    }

    #[test]
    fn fifo_within_queue() {
        let s = Scheduler::new();
        for i in 1..=5 {
            s.push(MsgId(i), "q", 0);
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.pop().map(|(m, _)| m.0)).collect();
        assert_eq!(order, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn no_double_scheduling() {
        let s = Scheduler::new();
        s.push(MsgId(1), "q", 0);
        s.push(MsgId(1), "q", 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop().unwrap().0, MsgId(1));
        assert!(s.pop().is_none());
        // After popping it may be requeued (retry).
        s.requeue(MsgId(1), "q", 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn negative_priorities_sort_last() {
        let s = Scheduler::new();
        s.push(MsgId(1), "bg", -5);
        s.push(MsgId(2), "fg", 0);
        assert_eq!(s.pop().unwrap().0, MsgId(2));
        assert_eq!(s.pop().unwrap().0, MsgId(1));
    }
}
