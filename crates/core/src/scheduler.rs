//! The message scheduler (paper Sec. 3.1 / 4.4.2).
//!
//! "The scheduler maintains a list of all unprocessed messages and chooses
//! the next message to be handled, considering both their temporal
//! ordering and the priority of the containing queues. Thus, a message in
//! a high priority queue may be processed before another one stored in a
//! queue with a lower priority, even if it has been created more recently."

use demaq_store::MsgId;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::time::Duration;

/// One schedulable unit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WorkItem {
    priority: i32,
    /// Arrival order: lower sequence number first within a priority class.
    /// Assigned by the scheduler at push time — message ids are *not* a
    /// reliable arrival proxy (concurrent transactions commit out of id
    /// order, and requeued retries must be able to rejoin the front).
    seq: Reverse<i64>,
    msg: MsgId,
    queue: String,
}

impl PartialOrd for WorkItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorkItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: highest priority first, then earliest arrival; message
        // id as the final tiebreak for a total order.
        (self.priority, &self.seq, Reverse(self.msg)).cmp(&(
            other.priority,
            &other.seq,
            Reverse(other.msg),
        ))
    }
}

/// Priority/arrival-order scheduler over unprocessed messages.
#[derive(Default)]
pub struct Scheduler {
    inner: Mutex<SchedState>,
    /// Signaled on push/requeue so idle workers can park instead of
    /// busy-spinning (see [`Scheduler::park`]).
    work_available: Condvar,
}

struct SchedState {
    heap: BinaryHeap<WorkItem>,
    /// Guards against double-scheduling (e.g. recovery + runtime).
    queued: HashSet<MsgId>,
    /// Next arrival sequence (increments per push).
    next_back: i64,
    /// Next front-of-class sequence (decrements per requeue, so retries
    /// run before messages that arrived after them).
    next_front: i64,
}

impl Default for SchedState {
    fn default() -> Self {
        SchedState {
            heap: BinaryHeap::new(),
            queued: HashSet::new(),
            next_back: 0,
            next_front: -1,
        }
    }
}

impl Scheduler {
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Add an unprocessed message at the back of its priority class.
    /// Returns whether it was inserted (`false` = already scheduled).
    pub fn push(&self, msg: MsgId, queue: &str, priority: i32) -> bool {
        let mut st = self.inner.lock();
        if st.queued.insert(msg) {
            let seq = st.next_back;
            st.next_back += 1;
            st.heap.push(WorkItem {
                priority,
                seq: Reverse(seq),
                msg,
                queue: queue.to_string(),
            });
            self.work_available.notify_one();
            true
        } else {
            false
        }
    }

    /// Claim the next message to process.
    pub fn pop(&self) -> Option<(MsgId, String)> {
        let mut st = self.inner.lock();
        let item = st.heap.pop()?;
        st.queued.remove(&item.msg);
        Some((item.msg, item.queue))
    }

    /// Put a message back (lock conflict / deadlock retry) — it rejoins
    /// the *front* of its priority class, keeping its place ahead of work
    /// that arrived later. Returns whether it was inserted.
    pub fn requeue(&self, msg: MsgId, queue: &str, priority: i32) -> bool {
        let mut st = self.inner.lock();
        if st.queued.insert(msg) {
            let seq = st.next_front;
            st.next_front -= 1;
            st.heap.push(WorkItem {
                priority,
                seq: Reverse(seq),
                msg,
                queue: queue.to_string(),
            });
            self.work_available.notify_one();
            true
        } else {
            false
        }
    }

    /// Park the calling worker until a push/requeue signals new work or
    /// `timeout` elapses — the idle path of parallel processing, replacing
    /// a `yield_now` busy-spin. Returns immediately if work is already
    /// pending. The timeout is the caller's backstop for re-checking its
    /// own termination condition (all workers idle, nothing queued).
    pub fn park(&self, timeout: Duration) {
        let mut st = self.inner.lock();
        if !st.heap.is_empty() {
            return;
        }
        self.work_available.wait_for(&mut st, timeout);
    }

    /// Wake every parked worker (used when processing may have drained, so
    /// parked workers observe termination without waiting out the timeout).
    pub fn wake_all(&self) {
        self.work_available.notify_all();
    }

    /// Pending count.
    pub fn len(&self) -> usize {
        self.inner.lock().heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_then_arrival() {
        let s = Scheduler::new();
        s.push(MsgId(1), "lo", 0);
        s.push(MsgId(2), "hi", 10);
        s.push(MsgId(3), "lo", 0);
        s.push(MsgId(4), "hi", 10);
        let order: Vec<MsgId> = std::iter::from_fn(|| s.pop().map(|(m, _)| m)).collect();
        // High-priority first (in arrival order), then low-priority.
        assert_eq!(order, [MsgId(2), MsgId(4), MsgId(1), MsgId(3)]);
    }

    #[test]
    fn fifo_within_queue() {
        let s = Scheduler::new();
        for i in 1..=5 {
            s.push(MsgId(i), "q", 0);
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.pop().map(|(m, _)| m.0)).collect();
        assert_eq!(order, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn no_double_scheduling() {
        let s = Scheduler::new();
        s.push(MsgId(1), "q", 0);
        s.push(MsgId(1), "q", 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop().unwrap().0, MsgId(1));
        assert!(s.pop().is_none());
        // After popping it may be requeued (retry).
        s.requeue(MsgId(1), "q", 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn arrival_order_beats_id_order() {
        // Regression: ids are assigned at store.enqueue, but concurrent
        // transactions commit (and schedule) out of id order. FIFO within
        // a priority class must follow *push* order, not id order.
        let s = Scheduler::new();
        s.push(MsgId(10), "q", 0);
        s.push(MsgId(5), "q", 0);
        s.push(MsgId(7), "q", 0);
        let order: Vec<u64> = std::iter::from_fn(|| s.pop().map(|(m, _)| m.0)).collect();
        assert_eq!(order, [10, 5, 7]);
    }

    #[test]
    fn requeue_rejoins_front_of_priority_class() {
        let s = Scheduler::new();
        s.push(MsgId(1), "q", 0);
        s.push(MsgId(2), "q", 0);
        let (victim, _) = s.pop().unwrap();
        assert_eq!(victim, MsgId(1));
        s.push(MsgId(3), "q", 0);
        // The deadlock victim retries before 2 and 3, which arrived later.
        s.requeue(victim, "q", 0);
        let order: Vec<u64> = std::iter::from_fn(|| s.pop().map(|(m, _)| m.0)).collect();
        assert_eq!(order, [1, 2, 3]);
        // But requeueing never overrides priority.
        s.push(MsgId(4), "lo", 0);
        s.requeue(MsgId(5), "lo", 0);
        s.push(MsgId(6), "hi", 9);
        let order: Vec<u64> = std::iter::from_fn(|| s.pop().map(|(m, _)| m.0)).collect();
        assert_eq!(order, [6, 5, 4]);
    }

    #[test]
    fn repeated_requeues_preserve_retry_order() {
        let s = Scheduler::new();
        // Two victims requeued in sequence: the later requeue runs first
        // (most recently preempted work resumes first), and both beat a
        // fresh arrival.
        s.requeue(MsgId(1), "q", 0);
        s.requeue(MsgId(2), "q", 0);
        s.push(MsgId(3), "q", 0);
        let order: Vec<u64> = std::iter::from_fn(|| s.pop().map(|(m, _)| m.0)).collect();
        assert_eq!(order, [2, 1, 3]);
    }

    #[test]
    fn park_wakes_on_push() {
        use std::sync::Arc;
        use std::time::Instant;
        let s = Arc::new(Scheduler::new());
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            s2.push(MsgId(1), "q", 0);
        });
        let started = Instant::now();
        // Generous timeout: the push must wake us long before it.
        s.park(Duration::from_secs(10));
        assert!(started.elapsed() < Duration::from_secs(5));
        t.join().unwrap();
        assert_eq!(s.pop().unwrap().0, MsgId(1));
    }

    #[test]
    fn park_returns_immediately_when_work_pending() {
        let s = Scheduler::new();
        s.push(MsgId(1), "q", 0);
        let started = std::time::Instant::now();
        s.park(Duration::from_secs(10));
        assert!(started.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn park_times_out_without_work() {
        let s = Scheduler::new();
        let started = std::time::Instant::now();
        s.park(Duration::from_millis(10));
        assert!(started.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn negative_priorities_sort_last() {
        let s = Scheduler::new();
        s.push(MsgId(1), "bg", -5);
        s.push(MsgId(2), "fg", 0);
        assert_eq!(s.pop().unwrap().0, MsgId(2));
        assert_eq!(s.pop().unwrap().0, MsgId(1));
    }
}
