//! Sharded engine runtime: N independent engine shards behind one routing
//! directory (ROADMAP item 2; benchmark E13).
//!
//! The paper's slice-granularity locking (Sec. 5) already treats slices as
//! independent units of work, and Gray's "Queues Are Databases" argues the
//! queue *is* the database — so the store scales out the way a partitioned
//! database does. Each shard is a full [`Server`] with a private store
//! (own WAL, commit pipeline, slice index, document cache) and worker
//! pool; a [`Placement`] computed from the application's flow graph maps
//! `(queue, slicing-key-hash)` to a shard at enqueue time, so hot rule
//! chains stay shard-local and independent WAL pipelines overlap their
//! fsync waits.
//!
//! Cross-shard enqueues produced by rule firings are published to the
//! destination shard's mailbox only after the producing transaction
//! commits (a deadlock retry re-runs the rules and must not deliver
//! twice); the message travels with its computed properties, which carry
//! the causal `parentMsg`/`rootMsg` system properties, so lineage chains
//! survive the hop exactly as they do across gateway hops.
//!
//! A 1-shard [`ShardedServer`] degrades to today's single server: the
//! placement maps every queue to shard 0, the routing check never fires,
//! and message ids start at the same base.

use crate::engine::{EngineError, Server, ServerBuilder, ServerStats};
use crate::host::{atomic_to_prop, cast_prop};
use crate::properties::compute_properties;
use crate::Result;
use demaq_analysis::{compute_placement, stable_hash, FlowGraph, Placement, RuleFacts};
use demaq_net::{Clock, Network};
use demaq_obs::{Counter, Lineage, Obs, ProvenanceIndex, TraceEvent};
use demaq_qdl::{parse_program, QueueKind};
use demaq_store::{MsgId, PropValue, StoreError, StoredMessage};
use demaq_xml::parse as parse_xml;
use demaq_xquery::Atomic;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

static NEXT_SHARD_TMP: AtomicU64 = AtomicU64::new(0);

/// Process-stable hash of a slicing-key value: FNV-1a over the value's
/// canonical serialized bytes (type tag + payload), so every shard — and
/// every process of a future distributed deployment — agrees on
/// `hash % shards`.
pub(crate) fn key_hash(v: &PropValue) -> u64 {
    let mut buf = Vec::with_capacity(16);
    v.encode(&mut buf);
    stable_hash(&buf)
}

/// A fully prepared message in flight between shards: payload plus the
/// properties computed on the producing shard (property computation is
/// deterministic in the trigger and payload, so the destination commits
/// exactly what local execution would have).
pub(crate) struct Forwarded {
    pub(crate) dest: usize,
    pub(crate) queue: String,
    pub(crate) xml: String,
    pub(crate) props: Vec<(String, PropValue)>,
    pub(crate) enqueued_at: i64,
    /// Rule name (or `"<echo>"`-style marker) for the lineage edge.
    pub(crate) via: String,
}

/// Shared state of one sharded deployment: the routing directory and the
/// cross-shard mailboxes.
///
/// ## Drain-termination accounting
///
/// Parallel draining terminates on a *single* conserved counter,
/// `pending`: the number of undrained messages anywhere in the fleet —
/// queued in a scheduler, claimed by a worker, or published in a mailbox.
/// Scanning separate per-state counters (schedulers, active workers,
/// in-flight forwards) is unsound no matter the read order: a message can
/// migrate from a state a drainer already read as zero into one it read
/// earlier, so every per-state snapshot can be zero while work survives.
/// One counter has no such window. Every handoff counts the destination
/// before releasing the source: a product is registered at scheduler
/// insertion / forward publication *before* its producer's decrement, an
/// ingested forward at scheduler insertion before [`Self::settle`], so
/// `pending` never dips to zero while work exists — and a single atomic
/// read of zero is a sound termination proof.
pub(crate) struct ShardRouter {
    placement: Placement,
    mailboxes: Vec<Mutex<VecDeque<Forwarded>>>,
    /// Undrained messages fleet-wide (see struct docs). Snapshot-reset at
    /// the start of each parallel drain; scheduler insertions elsewhere
    /// (recovery, external enqueues, single-threaded runs) may leave it
    /// stale in between, which the reset makes harmless.
    pending: AtomicUsize,
    forwards_total: Counter,
    ingest_errors: Counter,
}

impl ShardRouter {
    fn new(placement: Placement, obs: &Obs) -> ShardRouter {
        let shards = placement.shards;
        ShardRouter {
            placement,
            mailboxes: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            forwards_total: obs.registry.counter("demaq_engine_shard_forwards_total"),
            ingest_errors: obs
                .registry
                .counter("demaq_engine_shard_ingest_errors_total"),
        }
    }

    fn forward(&self, f: Forwarded) {
        // Count before publishing: a drainer must never observe
        // `pending == 0` while a forward is mid-publish. The producing
        // worker's own decrement comes later still, so the count also
        // never drops while the message is only in the mailbox.
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.forwards_total.inc();
        self.mailboxes[f.dest].lock().push_back(f);
    }

    /// A message was inserted into some shard's scheduler (called from the
    /// engine on every accepted push/requeue).
    pub(crate) fn note_scheduled(&self) {
        self.pending.fetch_add(1, Ordering::SeqCst);
    }

    /// A claimed message is fully dealt with (processed, errored out, or
    /// abandoned); its products were already counted. Returns the
    /// remaining pending count.
    fn note_done(&self) -> usize {
        self.pending.fetch_sub(1, Ordering::SeqCst) - 1
    }

    fn take(&self, shard: usize) -> Option<Forwarded> {
        self.mailboxes[shard].lock().pop_front()
    }

    /// Mark one taken forward as fully ingested (scheduled on the
    /// destination, which counted it again) or abandoned. Called only
    /// after the ingest committed (or permanently failed), so successful
    /// work is visible in the destination's scheduler count before this
    /// decrement.
    fn settle(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }

    fn mailbox_empty(&self, shard: usize) -> bool {
        self.mailboxes[shard].lock().is_empty()
    }

    fn mailbox_len(&self, shard: usize) -> usize {
        self.mailboxes[shard].lock().len()
    }
}

/// One shard's handle to the router (stored in its [`Server`]).
pub(crate) struct ShardLink {
    pub(crate) shard: usize,
    pub(crate) router: Arc<ShardRouter>,
}

impl ShardLink {
    /// `Some(dest)` when a message with these properties entering `queue`
    /// is homed on a *different* shard than this one.
    pub(crate) fn remote_destination(
        &self,
        queue: &str,
        props: &[(String, PropValue)],
    ) -> Option<usize> {
        let p = &self.router.placement;
        if p.shards <= 1 {
            return None;
        }
        let key = p
            .key_property(queue)
            .and_then(|kp| props.iter().find(|(n, _)| n == kp))
            .map(|(_, v)| key_hash(v));
        let dest = p.route(queue, key);
        (dest != self.shard).then_some(dest)
    }

    pub(crate) fn forward(&self, f: Forwarded) {
        self.router.forward(f);
    }
}

/// Builder for [`ShardedServer`] — obtained from
/// [`ServerBuilder::shards`]; every other knob is inherited from the base
/// builder and applied uniformly to each shard.
pub struct ShardedServerBuilder {
    base: ServerBuilder,
    shards: usize,
    overrides: BTreeMap<String, usize>,
}

impl ShardedServerBuilder {
    pub(crate) fn new(base: ServerBuilder, shards: usize) -> ShardedServerBuilder {
        ShardedServerBuilder {
            base,
            shards: shards.max(1),
            overrides: BTreeMap::new(),
        }
    }

    /// Pin a queue to a shard, overriding the computed placement
    /// (shard index taken modulo the shard count).
    pub fn place_queue(mut self, queue: &str, shard: usize) -> Self {
        self.overrides.insert(queue.to_string(), shard);
        self
    }

    /// Compile the application, derive the placement from its flow graph,
    /// and open one store per shard (subdirectories `shard-0` …
    /// `shard-N-1` of the configured directory).
    ///
    /// Note that `.in_memory()` is downgraded here: sharded stores are
    /// always on-disk, under a temp directory that lives exactly as long
    /// as the returned [`ShardedServer`].
    pub fn build(self) -> Result<ShardedServer> {
        let shards = self.shards;
        let mut base = self.base;

        // Resolve the application once; every shard compiles the same spec.
        let spec = match (&base.spec, &base.program) {
            (Some(s), _) => s.clone(),
            (None, Some(p)) => {
                parse_program(p).map_err(|e| EngineError::Compile(e.to_string()))?
            }
            (None, None) => return Err(EngineError::Config("no program provided".into())),
        };
        base.spec = Some(spec.clone());
        base.program = None;

        let facts: Vec<RuleFacts> = spec
            .rules
            .iter()
            .map(|r| RuleFacts::from_rule(r, &spec))
            .collect();
        let graph = FlowGraph::build(&spec, &facts);
        let placement = compute_placement(&spec, &facts, &graph, shards, &self.overrides);

        // Shared infrastructure: one metric registry + trace ring, one
        // clock, one simulated network, one causal index — so a sharded
        // deployment reads exactly like a single server from the outside.
        let obs = base.obs.clone().unwrap_or_else(|| match base.trace_capacity {
            Some(events) => Obs::with_trace_capacity(events),
            None => Obs::new(),
        });
        base.obs = Some(Arc::clone(&obs));
        let clock = match (&base.clock, &base.network) {
            (Some(c), _) => c.clone(),
            (None, Some(net)) => net.clock().clone(),
            (None, None) => Clock::virtual_at(base.start_time_ms),
        };
        base.clock = Some(clock.clone());
        if base.network.is_none() {
            base.network = Some(Arc::new(Network::new(clock.clone(), base.seed)));
        }
        base.shared_provenance = Some(Arc::new(ProvenanceIndex::new(base.provenance_capacity)));

        // `.in_memory()` has no sharded equivalent (each shard needs its
        // own WAL + heap files), so it downgrades to real on-disk stores
        // under a process-temp root. The root is removed again when the
        // `ShardedServer` is dropped.
        let mut temp_root = None;
        let root = match (&base.dir, base.in_memory) {
            (Some(d), _) => d.clone(),
            (None, true) => {
                let root = std::env::temp_dir().join(format!(
                    "demaq-sharded-{}-{}",
                    std::process::id(),
                    NEXT_SHARD_TMP.fetch_add(1, Ordering::Relaxed)
                ));
                temp_root = Some(root.clone());
                root
            }
            (None, false) => {
                return Err(EngineError::Config(
                    "choose a store directory with .dir(..) or .in_memory()".into(),
                ))
            }
        };
        base.in_memory = false;

        // Home every incoming gateway on exactly one shard: two shards
        // listening on the same transport address would both claim
        // deliveries.
        let mut incoming_homes: Vec<HashSet<String>> = vec![HashSet::new(); shards];
        for q in &spec.queues {
            if q.kind == QueueKind::IncomingGateway {
                incoming_homes[placement.route(&q.name, None)].insert(q.name.clone());
            }
        }

        let router = Arc::new(ShardRouter::new(placement.clone(), &obs));
        let server_addr = base.server_addr.clone();
        let mut servers = Vec::with_capacity(shards);
        for (i, homes) in incoming_homes.into_iter().enumerate() {
            let mut b = base.clone();
            b.dir = Some(root.join(format!("shard-{i}")));
            // Shard-unique id spaces without coordination; shard 0 keeps
            // base 0 so a 1-shard deployment allocates the same ids as a
            // plain server.
            b.msg_id_base = (i as u64) << 48;
            b.shard_link = Some(Arc::new(ShardLink {
                shard: i,
                router: Arc::clone(&router),
            }));
            b.incoming_gateways = Some(homes);
            if i > 0 {
                // Reliable-messaging ack receivers register under the
                // server address; secondary shards need distinct ones.
                b.server_addr = format!("{server_addr}/shard{i}");
            }
            servers.push(b.build()?);
        }
        Ok(ShardedServer {
            shards: servers,
            router,
            clock,
            obs,
            placement,
            temp_root,
        })
    }
}

/// N engine shards behind one routing directory. The public surface
/// mirrors [`Server`]: external enqueues route to the owning shard,
/// inspection merges across shards, metrics/traces/lineage come from the
/// shared observability context.
pub struct ShardedServer {
    shards: Vec<Server>,
    router: Arc<ShardRouter>,
    clock: Clock,
    obs: Arc<Obs>,
    placement: Placement,
    /// Set when `.in_memory()` was downgraded to on-disk stores under a
    /// process-temp root (see [`ShardedServerBuilder::build`]); removed on
    /// drop.
    temp_root: Option<std::path::PathBuf>,
}

impl Drop for ShardedServer {
    fn drop(&mut self) {
        if let Some(root) = self.temp_root.take() {
            // Close the per-shard stores first so no WAL/heap file is
            // still being written while the tree goes away.
            self.shards.clear();
            let _ = std::fs::remove_dir_all(&root);
        }
    }
}

impl ShardedServer {
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to one shard (tests, inspection).
    pub fn shard(&self, i: usize) -> &Server {
        &self.shards[i]
    }

    /// The computed routing directory.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Enqueue an external message on its owning shard.
    pub fn enqueue_external(&self, queue: &str, xml: &str) -> Result<MsgId> {
        let dest = self.external_destination(queue, xml, &[])?;
        self.shards[dest].enqueue_external(queue, xml)
    }

    /// Enqueue with explicit property values on the owning shard. When the
    /// slicing key arrives as an explicit property this routes without
    /// parsing the payload.
    pub fn enqueue_external_with_props(
        &self,
        queue: &str,
        xml: &str,
        explicit: &[(String, Atomic)],
    ) -> Result<MsgId> {
        let dest = self.external_destination(queue, xml, explicit)?;
        self.shards[dest].enqueue_external_with_props(queue, xml, explicit)
    }

    /// The shard a fresh external message is homed on. Must agree with the
    /// engine-side routing check, so explicit key values go through the
    /// same `xs:` cast that property computation applies.
    fn external_destination(
        &self,
        queue: &str,
        xml: &str,
        explicit: &[(String, Atomic)],
    ) -> Result<usize> {
        if self.placement.shards <= 1 {
            return Ok(0);
        }
        let Some(kp) = self.placement.key_property(queue) else {
            return Ok(self.placement.route(queue, None));
        };
        let app = self.shards[0].app();
        if let Some((_, a)) = explicit.iter().find(|(n, _)| n == kp) {
            let raw = atomic_to_prop(a);
            let v = match app.spec.properties.iter().find(|p| p.name == kp) {
                Some(pd) => cast_prop(&raw, &pd.ty).map_err(EngineError::Compile)?,
                None => raw,
            };
            return Ok(self.placement.route(queue, Some(key_hash(&v))));
        }
        // Key not explicit: compute the full property set on a throwaway
        // parse (the destination shard recomputes it on the real enqueue;
        // properties are deterministic in payload + explicit values).
        let doc = parse_xml(xml).map_err(|e| EngineError::Xml(e.to_string()))?;
        let props = compute_properties(
            app,
            queue,
            &doc.root(),
            explicit,
            None,
            Vec::new(),
            self.clock.now(),
        )
        .map_err(|e| EngineError::Compile(e.to_string()))?;
        let key = props.iter().find(|(n, _)| n == kp).map(|(_, v)| key_hash(v));
        Ok(self.placement.route(queue, key))
    }

    /// Drive everything to quiescence single-threaded: drain mailboxes,
    /// process messages, pump each shard's network machinery —
    /// fast-forwarding the shared virtual clock when idle. Returns the
    /// number of messages processed.
    pub fn run_until_idle(&self) -> Result<u64> {
        let mut processed = 0u64;
        loop {
            let mut progressed = false;
            for (i, s) in self.shards.iter().enumerate() {
                while let Some(f) = self.router.take(i) {
                    let r = s.ingest_forwarded(&f);
                    self.router.settle();
                    r?;
                    progressed = true;
                }
                while s.step()? {
                    processed += 1;
                    progressed = true;
                }
                if s.pump_env()? {
                    progressed = true;
                }
            }
            if progressed {
                continue;
            }
            if self.clock.is_virtual() {
                let next = self.shards.iter().filter_map(|s| s.next_event_at()).min();
                match next {
                    Some(t) if t > self.clock.now() => self.clock.set(t),
                    Some(_) => {}
                    None => break,
                }
            } else {
                break;
            }
        }
        Ok(processed)
    }

    /// Process everything currently schedulable with `threads_per_shard`
    /// workers pinned to each shard. Workers drain their own shard's
    /// scheduler and mailbox; the fleet terminates when the router's
    /// conserved pending count (see [`ShardRouter`]) reaches zero — a
    /// message may hop shards arbitrarily often before that.
    /// Network/timer pumping is not performed inside; call
    /// [`Self::run_until_idle`] afterwards for gateway scenarios.
    ///
    /// A forward whose ingest fails permanently on its destination shard
    /// is abandoned *loudly*: the fleet still drains everything else, and
    /// the first such error is returned.
    pub fn process_all_parallel(&self, threads_per_shard: usize) -> Result<u64> {
        let processed = AtomicU64::new(0);
        let failure: Mutex<Option<EngineError>> = Mutex::new(None);
        let tps = threads_per_shard.max(1);
        // Exact snapshot of outstanding work before any worker starts:
        // everything scheduled plus any leftover mailbox items. External
        // enqueues concurrent with the drain are not supported (as
        // before), so this is the whole initial population.
        let initial: usize = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.sched().len() + self.router.mailbox_len(i))
            .sum();
        self.router.pending.store(initial, Ordering::SeqCst);
        std::thread::scope(|scope| {
            for i in 0..self.shards.len() {
                for _ in 0..tps {
                    let shards = &self.shards;
                    let router = &self.router;
                    let processed = &processed;
                    let failure = &failure;
                    scope.spawn(move || drain_worker(shards, i, router, processed, failure));
                }
            }
        });
        if let Some(e) = failure.into_inner() {
            return Err(e);
        }
        Ok(processed.load(Ordering::Relaxed))
    }

    /// Payload strings of all retained messages of a queue, merged across
    /// shards (shard order, arrival order within a shard).
    pub fn queue_bodies(&self, queue: &str) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.queue_bodies(queue)?);
        }
        Ok(out)
    }

    /// All retained messages of a queue, merged across shards.
    pub fn queue_messages(&self, queue: &str) -> Result<Vec<StoredMessage>> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.queue_messages(queue)?);
        }
        Ok(out)
    }

    /// Causal lineage of a message — the index is shared across shards,
    /// so chains that hop shards resolve from anywhere.
    pub fn lineage(&self, msg: MsgId) -> Lineage {
        self.shards[0].lineage(msg)
    }

    /// The shared causal provenance index.
    pub fn provenance(&self) -> &ProvenanceIndex {
        self.shards[0].provenance()
    }

    /// Statistics over the shared metric registry (covers all shards).
    pub fn stats(&self) -> ServerStats {
        self.shards[0].stats()
    }

    /// Prometheus-style rendering of the shared registry.
    pub fn metrics_text(&self) -> String {
        self.shards[0].metrics_text()
    }

    /// The shared observability context.
    pub fn metrics(&self) -> Arc<Obs> {
        Arc::clone(&self.obs)
    }

    /// Tail of the shared trace ring.
    pub fn trace_tail(&self, n: usize) -> Vec<TraceEvent> {
        self.shards[0].trace_tail(n)
    }

    /// Run retention GC on every shard; returns total messages purged.
    pub fn gc(&self) -> Result<usize> {
        let mut purged = 0;
        for s in &self.shards {
            purged += s.gc()?;
        }
        Ok(purged)
    }

    /// GC + checkpoint on every shard.
    pub fn maintenance(&self) -> Result<usize> {
        let mut purged = 0;
        for s in &self.shards {
            purged += s.maintenance()?;
        }
        Ok(purged)
    }

    /// Advance the shared virtual clock.
    pub fn advance_time(&self, ms: i64) {
        self.clock.advance(ms);
    }
}

/// One pinned drain worker: land forwards, process own scheduler, park
/// when idle until the whole fleet has drained (`pending == 0`).
fn drain_worker(
    shards: &[Server],
    me: usize,
    router: &ShardRouter,
    processed: &AtomicU64,
    failure: &Mutex<Option<EngineError>>,
) {
    let s = &shards[me];
    loop {
        // Land forwarded messages first so cross-shard work is scheduled
        // before the idle check below can observe a drained fleet.
        while let Some(f) = router.take(me) {
            land_forward(s, router, &f, failure);
        }
        match s.pop_scheduled() {
            Some((msg, queue)) => {
                // A claimed message stays counted in `pending` until after
                // processing: its products (scheduler insertions, forward
                // publications) are counted inside `process_one`, so the
                // decrement below can never expose a transient zero.
                let r = s.process_one(msg, &queue);
                if r.is_ok() {
                    processed.fetch_add(1, Ordering::Relaxed);
                }
                if router.note_done() == 0 {
                    // Fleet drained: wake parked peers on every shard so
                    // they observe termination without waiting out the
                    // park timeout.
                    for t in shards {
                        t.sched().wake_all();
                    }
                }
            }
            None => {
                if !router.mailbox_empty(me) {
                    continue;
                }
                if router.pending.load(Ordering::SeqCst) == 0 {
                    for t in shards {
                        t.sched().wake_all();
                    }
                    break;
                }
                // Park until a push/requeue signals new work; the timeout
                // is a backstop re-checking mailboxes and termination.
                s.sched().park(std::time::Duration::from_millis(2));
            }
        }
    }
}

/// Ingest one forwarded message on its destination shard. The producing
/// transaction already committed on the source shard, so this must not
/// silently drop: lock conflicts (the only failures that are both
/// transient and safely retryable — they abort before anything commits)
/// are retried with backoff; any other error is recorded for
/// [`ShardedServer::process_all_parallel`] to return, and the forward is
/// abandoned with its pending count released so the fleet still drains.
fn land_forward(
    s: &Server,
    router: &ShardRouter,
    f: &Forwarded,
    failure: &Mutex<Option<EngineError>>,
) {
    let mut result = s.ingest_forwarded(f);
    for attempt in 0..3u32 {
        match &result {
            Err(EngineError::Store(StoreError::Deadlock))
            | Err(EngineError::Store(StoreError::LockTimeout)) => {
                std::thread::sleep(std::time::Duration::from_micros(100 << attempt));
                result = s.ingest_forwarded(f);
            }
            _ => break,
        }
    }
    if let Err(e) = result {
        router.ingest_errors.inc();
        let mut slot = failure.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }
    router.settle();
}
