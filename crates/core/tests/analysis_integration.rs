//! Deploy-time strict analysis and its runtime backstops.
//!
//! Covers the three integration layers of the analyzer: the
//! [`StrictAnalysis`] builder knob (Deny refuses a defective app, Warn
//! reports it through the metric registry, Off stays silent), the
//! deploy-time validation of enqueue targets plus its runtime backstop,
//! and the error-routing cycle guard that breaks static DQ007 cycles at
//! runtime by falling back to the system error queue.

use demaq::engine::{EngineError, StrictAnalysis};
use demaq::Server;
use demaq_store::store::SyncPolicy;

/// An app whose error routing is cyclic (DQ007): `work` and `handler`
/// name each other as error queues and both carry rules, so a failure
/// can ping-pong between them.
const CYCLIC_ERROR_APP: &str = r#"
    set errorqueue syserr
    create queue work kind basic mode persistent errorqueue handler
    create queue handler kind basic mode persistent errorqueue work
    create queue syserr kind basic mode persistent
    create queue sink kind basic mode persistent
    create rule w for work
      if (//m) then do enqueue <out>{1 idiv 0}</out> into sink
    create rule h for handler
      if (//initialMessage) then do enqueue <out>{1 idiv 0}</out> into sink
"#;

fn builder(program: &str) -> demaq::engine::ServerBuilder {
    Server::builder()
        .program(program)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
}

#[test]
fn strict_deny_refuses_an_app_with_deny_diagnostics() {
    let Err(err) = builder(CYCLIC_ERROR_APP)
        .strict_analysis(StrictAnalysis::Deny)
        .build()
    else {
        panic!("DQ007 is deny by default; build must fail")
    };
    match err {
        EngineError::Analysis(msg) => {
            assert!(msg.contains("DQ007"), "diagnostic code in message: {msg}");
            assert!(msg.contains("error-queue-cycle"), "{msg}");
        }
        other => panic!("expected EngineError::Analysis, got: {other}"),
    }
}

#[test]
fn warn_mode_builds_and_counts_diagnostics() {
    let s = builder(CYCLIC_ERROR_APP)
        .strict_analysis(StrictAnalysis::Warn)
        .build()
        .expect("warn mode reports but deploys");
    let text = s.metrics_text();
    assert!(
        text.contains("demaq_core_analysis_diagnostics_total{severity=\"deny\"}"),
        "diagnostic counter in exposition:\n{text}"
    );
}

#[test]
fn off_mode_builds_without_diagnostic_counters() {
    let s = builder(CYCLIC_ERROR_APP)
        .strict_analysis(StrictAnalysis::Off)
        .build()
        .expect("off mode deploys silently");
    assert_eq!(
        s.metrics()
            .registry
            .counter_total("demaq_core_analysis_diagnostics_total"),
        0
    );
}

#[test]
fn strict_deny_admits_a_clean_app() {
    builder(
        r#"
        create queue inbox kind basic mode persistent
        create queue outbox kind basic mode persistent
        create rule fwd for inbox
          if (//order) then do enqueue <fwd/> into outbox
        "#,
    )
    .strict_analysis(StrictAnalysis::Deny)
    .build()
    .expect("clean app deploys under Deny");
}

// ---- enqueue-target checking: deploy-time and runtime layers -----------

#[test]
fn deploy_rejects_unknown_enqueue_target() {
    // The QDL validator catches this before the analyzer even runs, in
    // every strictness mode — DQ001 exists for programs assembled from
    // facts that bypass validation.
    let Err(err) = builder(
        r#"
        create queue inbox kind basic mode persistent
        create rule fwd for inbox
          if (//order) then do enqueue <fwd/> into nowhere
        "#,
    )
    .strict_analysis(StrictAnalysis::Off)
    .build() else {
        panic!("validation must reject the unknown target")
    };
    assert!(
        err.to_string().contains("undeclared queue `nowhere`"),
        "got: {err}"
    );
}

#[test]
fn runtime_backstop_rejects_enqueue_into_unknown_queue() {
    let s = builder(
        r#"
        create queue inbox kind basic mode persistent
        "#,
    )
    .build()
    .unwrap();
    let err = s
        .enqueue_external("nowhere", "<m/>")
        .expect_err("runtime rejects unknown queues too");
    assert!(err.to_string().contains("nowhere"), "got: {err}");
}

// ---- runtime guard for error-routing cycles ----------------------------

#[test]
fn error_route_cycle_breaks_to_system_error_queue() {
    // Deploy the statically-cyclic app (Warn mode), then force the cycle
    // at runtime: `w` fails on the original message, routing an error
    // into `handler`; `h` fails on that error message, whose resolved
    // error queue (`work`) is already on its error path. The guard must
    // break the cycle, count it, and land the message in `syserr`.
    let s = builder(CYCLIC_ERROR_APP)
        .strict_analysis(StrictAnalysis::Warn)
        .build()
        .unwrap();
    s.enqueue_external("work", "<m/>").unwrap();
    s.run_until_idle().unwrap();

    let cycles = s
        .metrics()
        .registry
        .counter_total("demaq_core_error_route_cycles_total");
    assert!(cycles >= 1, "cycle guard fired: {cycles}");
    let sys = s.queue_bodies("syserr").unwrap();
    assert_eq!(sys.len(), 1, "broken cycle lands in the system error queue");
    assert!(
        sys[0].contains("<initialMessage>"),
        "the error chain is preserved: {}",
        sys[0]
    );
    assert!(s.queue_bodies("sink").unwrap().is_empty());
}

#[test]
fn acyclic_error_routing_does_not_trip_the_guard() {
    let s = builder(
        r#"
        create queue q kind basic mode persistent errorqueue qErrors
        create queue qErrors kind basic mode persistent
        create rule failing for q
          if (//m) then do enqueue <out>{1 idiv 0}</out> into q
        "#,
    )
    .build()
    .unwrap();
    s.enqueue_external("q", "<m/>").unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(s.queue_bodies("qErrors").unwrap().len(), 1);
    assert_eq!(
        s.metrics()
            .registry
            .counter_total("demaq_core_error_route_cycles_total"),
        0
    );
}
