//! Cache coherence tests: the document cache and the materialized
//! slice-sequence cache must never surface stale state to a rule
//! evaluation — across GC purges, slice resets (epoch bumps), aborted
//! transactions, and concurrent writers (ISSUE 3 tentpole correctness
//! constraint: invalidation is a side effect of commit, never of
//! evaluation-time heuristics).

use demaq::Server;
use demaq_store::PropValue;

fn server(program: &str) -> Server {
    Server::builder()
        .program(program)
        .in_memory()
        .build()
        .unwrap()
}

/// Join program used by several tests: members accumulate in one slice,
/// and every processing materializes the member sequence.
const JOIN: &str = r#"
    create queue parts kind basic mode persistent
    create queue joined kind basic mode persistent
    create property rid as xs:string fixed queue parts value //@rid
    create slicing byRid on rid
    create rule join for byRid
      if (count(qs:slice()) >= 3) then
        do enqueue <complete>{qs:slicekey()}</complete> into joined
"#;

/// Reset one slice through a store transaction (the epoch bump the engine
/// performs for `do reset`), committing immediately.
fn reset_slice(s: &Server, slicing: &str, key: &str) {
    let store = s.store();
    let txn = store.begin();
    store
        .slice_reset(txn, slicing, PropValue::Str(key.into()))
        .unwrap();
    store.commit(txn).unwrap();
}

#[test]
fn slice_seq_cache_sees_appends_and_reset() {
    let s = server(JOIN);
    // Three arrivals: the cached member sequence must grow with each
    // commit (version bump on member add), firing the join exactly at 3.
    s.enqueue_external("parts", r#"<p rid="A" n="1"/>"#).unwrap();
    s.run_until_idle().unwrap();
    assert!(s.queue_bodies("joined").unwrap().is_empty());
    s.enqueue_external("parts", r#"<p rid="A" n="2"/>"#).unwrap();
    s.run_until_idle().unwrap();
    assert!(
        s.queue_bodies("joined").unwrap().is_empty(),
        "2 members < 3: a stale over-full cached sequence would fire early"
    );
    s.enqueue_external("parts", r#"<p rid="A" n="3"/>"#).unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(s.queue_bodies("joined").unwrap(), ["<complete>A</complete>"]);

    // Reset the slice (epoch bump → version bump): a stale cached
    // 3-member sequence must not resurrect the join on the next arrival.
    reset_slice(&s, "byRid", "A");
    let key = PropValue::Str("A".into());
    assert!(s.store().slice_members("byRid", &key).is_empty());
    s.enqueue_external("parts", r#"<p rid="A" n="4"/>"#).unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(
        s.queue_bodies("joined").unwrap().len(),
        1,
        "post-reset slice restarts from one member; a stale cached \
         sequence would have re-fired the join"
    );
    assert_eq!(s.store().slice_members("byRid", &key).len(), 1);
}

#[test]
fn gc_purge_invalidates_cached_members() {
    let s = server(JOIN);
    for n in 1..=3 {
        s.enqueue_external("parts", &format!(r#"<p rid="B" n="{n}"/>"#))
            .unwrap();
        s.run_until_idle().unwrap();
    }
    assert_eq!(s.queue_bodies("joined").unwrap().len(), 1);
    // After a reset everything is purgeable; GC must drop the cached
    // documents and the member sequences pinning them.
    reset_slice(&s, "byRid", "B");
    let purged = s.gc().unwrap();
    assert!(purged >= 3, "parts released by the reset, got {purged}");
    // New members after the purge evaluate against fresh state only.
    // (GC also collected the processed `joined` message, so any entry
    // appearing below would be a spurious re-fire off stale cache state.)
    for n in 4..=5 {
        s.enqueue_external("parts", &format!(r#"<p rid="B" n="{n}"/>"#))
            .unwrap();
        s.run_until_idle().unwrap();
    }
    assert_eq!(
        s.queue_bodies("joined").unwrap().len(),
        0,
        "2 fresh members < 3: purged members must not count"
    );
    let key = PropValue::Str("B".into());
    assert_eq!(s.store().slice_members("byRid", &key).len(), 2);
}

#[test]
fn aborted_transaction_leaves_no_cache_trace() {
    // The rule's first action succeeds, the second violates the target
    // schema → the whole transaction aborts. Neither the enqueued
    // message's document nor its slice membership may leak into any
    // cache: a later evaluation must see the pre-abort state.
    let s = server(
        r#"
        set errorqueue sys
        create schema strict {
            root order
            element order text
        }
        create queue src kind basic mode persistent
        create queue staged kind basic mode persistent
        create queue guarded kind basic mode persistent schema strict
        create queue sys kind basic mode persistent
        create property gid as xs:string fixed queue staged value //@gid
        create slicing byGid on gid
        create rule failing for src
          if (//go) then (
            do enqueue <m gid="G"/> into staged,
            do enqueue <notAnOrder/> into guarded
          )
        create rule count for byGid
          if (count(qs:slice()) >= 1) then
            do enqueue <seen>{count(qs:slice())}</seen> into sys
        "#,
    );
    s.enqueue_external("src", "<go/>").unwrap();
    s.run_until_idle().unwrap();
    // The abort must have kept `staged` empty and the slice memberless.
    assert!(s.queue_bodies("staged").unwrap().is_empty());
    let key = PropValue::Str("G".into());
    assert!(
        s.store().slice_members("byGid", &key).is_empty(),
        "aborted slice_add must not be visible"
    );
    // One error was routed for the failing rule; no <seen> from the
    // slicing rule (it never had a committed member to fire on).
    let sys = s.queue_bodies("sys").unwrap();
    assert_eq!(sys.len(), 1, "{sys:?}");
    assert!(sys[0].contains("<schemaViolation/>"), "{}", sys[0]);

    // A committed member now fires the slicing rule with count 1 — a
    // leaked cached document/membership from the abort would show 2.
    s.enqueue_external("staged", r#"<m gid="G"/>"#).unwrap();
    s.run_until_idle().unwrap();
    let sys = s.queue_bodies("sys").unwrap();
    assert!(
        sys.iter().any(|b| b == "<seen>1</seen>"),
        "evaluation must see exactly the committed member: {sys:?}"
    );
    assert!(!sys.iter().any(|b| b.contains("<seen>2</seen>")));
}

#[test]
fn rule_level_error_queue_beats_queue_level() {
    // Regression for the discarded rule-level error-queue computation in
    // try_process (`let _ = eq;`): precedence is rule > queue > system
    // (paper Sec. 3.6), resolved against the rules that actually ran.
    let s = server(
        r#"
        set errorqueue sys
        create queue q kind basic mode persistent errorqueue qeq
        create queue qeq kind basic mode persistent
        create queue req kind basic mode persistent
        create queue sys kind basic mode persistent
        create rule failing for q errorqueue req
          if (//m) then do enqueue <x>{1 idiv 0}</x> into q
        "#,
    );
    s.enqueue_external("q", "<m/>").unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(
        s.queue_bodies("req").unwrap().len(),
        1,
        "rule-level errorqueue wins"
    );
    assert!(s.queue_bodies("qeq").unwrap().is_empty());
    assert!(s.queue_bodies("sys").unwrap().is_empty());
}

#[test]
fn slicing_rule_error_routes_through_its_own_error_queue() {
    // A failing slicing rule resolves its error queue from the fired
    // slice rules (not only the queue's own rules, which was all the old
    // dead computation looked at).
    let s = server(
        r#"
        set errorqueue sys
        create queue q kind basic mode persistent
        create queue seq kind basic mode persistent
        create queue sys kind basic mode persistent
        create property k as xs:string fixed queue q value //@k
        create slicing byK on k
        create rule sfail for byK errorqueue seq
          if (qs:slice()) then do enqueue <x>{1 idiv 0}</x> into q
        "#,
    );
    s.enqueue_external("q", r#"<m k="a"/>"#).unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(
        s.queue_bodies("seq").unwrap().len(),
        1,
        "slicing rule's own errorqueue"
    );
    assert!(s.queue_bodies("sys").unwrap().is_empty());
}

#[test]
fn concurrent_writers_and_parallel_readers_stay_coherent() {
    // Writers enqueue members into a handful of slices while parallel
    // workers evaluate slice rules over them. Every message must be
    // processed exactly once and the final member counts must match the
    // writes — no stale cached sequence may hide or duplicate a member.
    let s = std::sync::Arc::new(server(
        r#"
        create queue parts kind basic mode persistent
        create queue watched kind basic mode persistent
        create property rid as xs:string fixed queue parts value //@rid
        create slicing byRid on rid
        create rule watch for byRid
          if (count(qs:slice()) >= 1) then
            do enqueue <w>{qs:slicekey()}</w> into watched
        "#,
    ));
    const WRITERS: usize = 3;
    const PER_WRITER: usize = 40;
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let s = std::sync::Arc::clone(&s);
            scope.spawn(move || {
                for n in 0..PER_WRITER {
                    let key = n % 4; // four hot slices
                    s.enqueue_external("parts", &format!(r#"<p rid="{key}" w="{w}" n="{n}"/>"#))
                        .unwrap();
                }
            });
        }
        // Readers drain concurrently with the writers.
        let s2 = std::sync::Arc::clone(&s);
        scope.spawn(move || {
            for _ in 0..8 {
                s2.process_all_parallel(4).unwrap();
            }
        });
    });
    // Drain whatever remained after the concurrent phase.
    s.process_all_parallel(4).unwrap();
    s.run_until_idle().unwrap();

    let total = (WRITERS * PER_WRITER) as u64;
    let stats = s.stats();
    assert!(
        stats.processed >= total,
        "every part processed exactly once (plus watched messages): {} < {total}",
        stats.processed
    );
    for key in 0..4 {
        let k = PropValue::Str(key.to_string());
        assert_eq!(
            s.store().slice_members("byRid", &k).len(),
            WRITERS * PER_WRITER / 4,
            "slice {key} membership matches the writes"
        );
    }
    // The watch rule fired once per part processing.
    assert_eq!(s.queue_bodies("watched").unwrap().len() as u64, total);
}
