//! End-to-end engine tests: execution model, slicing, retention, errors,
//! gateways, timers, recovery.

use demaq::engine::PlanMode;
use demaq::Server;
use demaq_store::store::SyncPolicy;
use demaq_store::{LockGranularity, PropValue};
use demaq_xquery::Atomic;
use tempfile::TempDir;

fn server(program: &str) -> Server {
    Server::builder()
        .program(program)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()
        .unwrap()
}

#[test]
fn simple_forwarding_rule() {
    let s = server(
        r#"
        create queue inbox kind basic mode persistent
        create queue outbox kind basic mode persistent
        create rule fwd for inbox
          if (//order) then do enqueue <ack>{//order/id}</ack> into outbox
        "#,
    );
    s.enqueue_external("inbox", "<order><id>7</id></order>")
        .unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(s.queue_bodies("outbox").unwrap(), ["<ack><id>7</id></ack>"]);
    assert_eq!(
        s.stats().processed,
        2,
        "the ack is processed too (no rules fire)"
    );
}

#[test]
fn rule_condition_false_produces_nothing() {
    let s = server(
        r#"
        create queue inbox kind basic mode persistent
        create queue outbox kind basic mode persistent
        create rule fwd for inbox
          if (//order) then do enqueue <a/> into outbox
        "#,
    );
    s.enqueue_external("inbox", "<notAnOrder/>").unwrap();
    s.run_until_idle().unwrap();
    assert!(s.queue_bodies("outbox").unwrap().is_empty());
}

#[test]
fn cascading_rules() {
    // a -> b -> c chains through three queues.
    let s = server(
        r#"
        create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create queue c kind basic mode persistent
        create rule r1 for a if (//start) then do enqueue <middle/> into b
        create rule r2 for b if (//middle) then do enqueue <done/> into c
        "#,
    );
    s.enqueue_external("a", "<start/>").unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(s.queue_bodies("c").unwrap(), ["<done/>"]);
}

#[test]
fn multiple_rules_on_one_queue_all_fire() {
    let s = server(
        r#"
        create queue q kind basic mode persistent
        create queue out kind basic mode persistent
        create rule r1 for q if (//m) then do enqueue <from1/> into out
        create rule r2 for q if (//m) then do enqueue <from2/> into out
        "#,
    );
    s.enqueue_external("q", "<m/>").unwrap();
    s.run_until_idle().unwrap();
    let mut got = s.queue_bodies("out").unwrap();
    got.sort();
    assert_eq!(got, ["<from1/>", "<from2/>"]);
}

#[test]
fn merged_plan_mode_equivalent() {
    for mode in [PlanMode::RuleAtATime, PlanMode::Merged] {
        let s = Server::builder()
            .program(
                r#"
                create queue q kind basic mode persistent
                create queue out kind basic mode persistent
                create rule r1 for q if (//m) then do enqueue <a/> into out
                create rule r2 for q if (//m) then do enqueue <b/> into out
                "#,
            )
            .in_memory()
            .sync_policy(SyncPolicy::Batch)
            .plan_mode(mode)
            .build()
            .unwrap();
        s.enqueue_external("q", "<m/>").unwrap();
        s.run_until_idle().unwrap();
        let mut got = s.queue_bodies("out").unwrap();
        got.sort();
        assert_eq!(got, ["<a/>", "<b/>"], "mode {mode:?}");
    }
}

#[test]
fn trigger_prefilter_skips_rules() {
    let s = server(
        r#"
        create queue q kind basic mode persistent
        create queue out kind basic mode persistent
        create rule only_orders for q if (//order) then do enqueue <hit/> into out
        "#,
    );
    s.enqueue_external("q", "<somethingElse/>").unwrap();
    s.run_until_idle().unwrap();
    let st = s.stats();
    assert_eq!(
        st.rules_skipped_by_filter, 1,
        "filter skipped the rule without evaluating"
    );
    assert_eq!(st.rules_evaluated, 0);
}

#[test]
fn queue_contents_visible_to_rules() {
    // qs:queue access, like Fig. 6.
    let s = server(
        r#"
        create queue invoices kind basic mode persistent
        create queue finance kind basic mode persistent
        create queue crm kind basic mode persistent
        create rule checkCreditRating for finance
          if (//requestCustomerInfo) then
            let $result :=
              <customerInfoResult>
                {//requestID}
                {if (qs:queue("invoices")[//customerID = qs:message()//customerID])
                 then <refuse/> else <accept/>}
              </customerInfoResult>
            return do enqueue $result into crm
        "#,
    );
    // An unpaid bill for customer c9 sits in the invoices queue.
    s.enqueue_external("invoices", "<invoice><customerID>c9</customerID></invoice>")
        .unwrap();
    s.run_until_idle().unwrap();
    s.enqueue_external(
        "finance",
        "<requestCustomerInfo><requestID>r1</requestID><customerID>c9</customerID></requestCustomerInfo>",
    )
    .unwrap();
    s.run_until_idle().unwrap();
    let crm = s.queue_bodies("crm").unwrap();
    assert_eq!(crm.len(), 1);
    assert!(
        crm[0].contains("<refuse/>"),
        "unpaid bill leads to refusal: {}",
        crm[0]
    );

    // A different customer is accepted.
    s.enqueue_external(
        "finance",
        "<requestCustomerInfo><requestID>r2</requestID><customerID>c10</customerID></requestCustomerInfo>",
    )
    .unwrap();
    s.run_until_idle().unwrap();
    let crm = s.queue_bodies("crm").unwrap();
    assert!(crm[1].contains("<accept/>"), "{}", crm[1]);
}

#[test]
fn properties_and_slicing_join() {
    // Fig. 7-style join: act only when both parts arrived.
    let s = server(
        r#"
        create queue parts kind basic mode persistent
        create queue joined kind basic mode persistent
        create property reqID as xs:string fixed
          queue parts value //rid
        create slicing byRequest on reqID
        create rule join for byRequest
          if (qs:slice()[/left] and qs:slice()[/right]) then
            do enqueue <complete>{qs:slicekey()}</complete> into joined
        "#,
    );
    s.enqueue_external("parts", "<left><rid>A</rid></left>")
        .unwrap();
    s.run_until_idle().unwrap();
    assert!(
        s.queue_bodies("joined").unwrap().is_empty(),
        "only one part so far"
    );
    s.enqueue_external("parts", "<right><rid>A</rid></right>")
        .unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(
        s.queue_bodies("joined").unwrap(),
        ["<complete>A</complete>"]
    );

    // A different request id joins independently. (Each part is processed
    // before the next arrives; if both committed before either is
    // processed, the ECA semantics would fire the join once per arrival —
    // which is why the paper's Fig. 8 resets the slice after acting.)
    s.enqueue_external("parts", "<right><rid>B</rid></right>")
        .unwrap();
    s.run_until_idle().unwrap();
    s.enqueue_external("parts", "<left><rid>B</rid></left>")
        .unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(s.queue_bodies("joined").unwrap().len(), 2);
}

#[test]
fn join_without_reset_fires_once_per_satisfied_arrival() {
    // Documents the ECA semantics: when both parts are committed before
    // either is processed, the join condition holds during both
    // processings.
    let s = server(
        r#"
        create queue parts kind basic mode persistent
        create queue joined kind basic mode persistent
        create property reqID as xs:string fixed queue parts value //rid
        create slicing byRequest on reqID
        create rule join for byRequest
          if (qs:slice()[/left] and qs:slice()[/right]) then
            do enqueue <complete>{qs:slicekey()}</complete> into joined
        "#,
    );
    s.enqueue_external("parts", "<right><rid>B</rid></right>")
        .unwrap();
    s.enqueue_external("parts", "<left><rid>B</rid></left>")
        .unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(s.queue_bodies("joined").unwrap().len(), 2);
}

#[test]
fn join_with_reset_is_exactly_once() {
    // The paper's own remedy (Fig. 8): a cleanup rule resets the slice once
    // the completion is sent, so the second processing sees an empty slice.
    let s = server(
        r#"
        create queue parts kind basic mode persistent
        create queue joined kind basic mode persistent
        create property reqID as xs:string fixed queue parts value //rid
        create slicing byRequest on reqID
        create rule join for byRequest
          if (qs:slice()[/left] and qs:slice()[/right]
              and not(qs:queue("joined")[/complete = qs:slicekey()])) then
            do enqueue <complete>{qs:slicekey()}</complete> into joined
        create rule cleanup for byRequest
          if (qs:queue("joined")[/complete = qs:slicekey()]) then do reset
        "#,
    );
    s.enqueue_external("parts", "<right><rid>B</rid></right>")
        .unwrap();
    s.enqueue_external("parts", "<left><rid>B</rid></left>")
        .unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(s.queue_bodies("joined").unwrap().len(), 1);
}

#[test]
fn slice_reset_and_retention_gc() {
    let s = server(
        r#"
        create queue q kind basic mode persistent
        create property key as xs:string fixed queue q value //k
        create slicing byKey on key
        create rule cleanup for byKey
          if (qs:slice()[/finish]) then do reset
        "#,
    );
    s.enqueue_external("q", "<work><k>x</k></work>").unwrap();
    s.run_until_idle().unwrap();
    // Processed but retained by the slice: GC keeps it.
    assert_eq!(s.gc().unwrap(), 0);
    assert_eq!(s.queue_bodies("q").unwrap().len(), 1);

    // The finish message triggers the reset; then everything is purgeable.
    s.enqueue_external("q", "<finish><k>x</k></finish>")
        .unwrap();
    s.run_until_idle().unwrap();
    let purged = s.gc().unwrap();
    assert_eq!(purged, 2, "work + finish both released");
    assert!(s.queue_bodies("q").unwrap().is_empty());
}

#[test]
fn inherited_properties_propagate_through_rules() {
    let s = server(
        r#"
        create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create property vip as xs:boolean inherited queue a, b value false
        create rule fwd for a if (//m) then do enqueue <m2/> into b
        "#,
    );
    s.enqueue_external_with_props("a", "<m/>", &[("vip".to_string(), Atomic::Bool(true))])
        .unwrap();
    s.run_until_idle().unwrap();
    let msgs = s.queue_messages("b").unwrap();
    assert_eq!(msgs.len(), 1);
    assert_eq!(
        msgs[0].prop("vip"),
        Some(&PropValue::Bool(true)),
        "inherited from trigger"
    );
    // System properties present too.
    assert_eq!(
        msgs[0].prop("creatingRule"),
        Some(&PropValue::Str("fwd".into()))
    );
}

#[test]
fn with_clause_sets_explicit_property() {
    let s = server(
        r#"
        create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create rule fwd for a
          if (//m) then do enqueue <out/> into b with Sender value "http://ws.chem.invalid/"
        "#,
    );
    s.enqueue_external("a", "<m/>").unwrap();
    s.run_until_idle().unwrap();
    let msgs = s.queue_messages("b").unwrap();
    assert_eq!(
        msgs[0].prop("Sender"),
        Some(&PropValue::Str("http://ws.chem.invalid/".into()))
    );
}

#[test]
fn rule_errors_route_to_error_queue() {
    let s = server(
        r#"
        create queue q kind basic mode persistent
        create queue qErrors kind basic mode persistent
        create rule failing for q errorqueue qErrors
          if (//m) then do enqueue <out>{1 idiv 0}</out> into q
        "#,
    );
    s.enqueue_external("q", "<m/>").unwrap();
    s.run_until_idle().unwrap();
    let errs = s.queue_bodies("qErrors").unwrap();
    assert_eq!(errs.len(), 1);
    assert!(errs[0].contains("<applicationError/>"), "{}", errs[0]);
    assert!(errs[0].contains("<rule>failing</rule>"));
    assert!(errs[0].contains("<initialMessage><m/></initialMessage>"));
    assert_eq!(s.stats().errors_routed, 1);
}

#[test]
fn queue_level_error_queue_fallback() {
    let s = server(
        r#"
        create queue q kind basic mode persistent errorqueue qeq
        create queue qeq kind basic mode persistent
        create rule failing for q
          if (//m) then do enqueue <out>{exactly-one(())}</out> into q
        "#,
    );
    s.enqueue_external("q", "<m/>").unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(s.queue_bodies("qeq").unwrap().len(), 1);
}

#[test]
fn system_level_error_queue_fallback() {
    let s = server(
        r#"
        set errorqueue sys
        create queue q kind basic mode persistent
        create queue sys kind basic mode persistent
        create rule failing for q
          if (//m) then do enqueue <out>{$undefined}</out> into q
        "#,
    );
    s.enqueue_external("q", "<m/>").unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(s.queue_bodies("sys").unwrap().len(), 1);
}

#[test]
fn failing_message_still_marked_processed() {
    let s = server(
        r#"
        set errorqueue sys
        create queue q kind basic mode persistent
        create queue sys kind basic mode persistent
        create rule failing for q if (//m) then do enqueue <x>{1 idiv 0}</x> into q
        "#,
    );
    s.enqueue_external("q", "<m/>").unwrap();
    s.run_until_idle().unwrap();
    // The failed message is processed (not retried forever) and unsliced,
    // so GC removes it.
    assert!(s.gc().unwrap() >= 1);
}

#[test]
fn schema_enforcement_on_enqueue() {
    let s = server(
        r#"
        set errorqueue sys
        create schema strict {
            root order
            element order { id }
            element id text integer
        }
        create queue sys kind basic mode persistent
        create queue src kind basic mode persistent
        create queue dst kind basic mode persistent schema strict
        create rule fwd for src
          if (//m) then do enqueue <notAnOrder/> into dst
        "#,
    );
    // External message violating the schema is rejected synchronously.
    assert!(s.enqueue_external("dst", "<bad/>").is_err());
    assert!(s
        .enqueue_external("dst", "<order><id>5</id></order>")
        .is_ok());
    // Rule-created message violating the schema goes to the error queue.
    s.enqueue_external("src", "<m/>").unwrap();
    s.run_until_idle().unwrap();
    let errs = s.queue_bodies("sys").unwrap();
    assert_eq!(errs.len(), 1);
    assert!(errs[0].contains("<schemaViolation/>"), "{}", errs[0]);
    assert!(
        s.queue_bodies("dst").unwrap().len() == 1,
        "only the valid order landed"
    );
}

#[test]
fn echo_queue_timer_fires() {
    // Paper Sec. 2.1.3 + Example 3.4 infrastructure.
    let s = server(
        r#"
        create queue echoQueue kind echo mode persistent
        create queue finance kind basic mode persistent
        create rule start for finance
          if (//invoice) then
            do enqueue <timeoutNotification>{//requestID}</timeoutNotification> into echoQueue
              with delay value "PT30S"
              with target value "finance"
        "#,
    );
    s.enqueue_external("finance", "<invoice><requestID>r7</requestID></invoice>")
        .unwrap();
    s.run_until_idle().unwrap();
    // run_until_idle fast-forwards the virtual clock past the 30s timeout.
    let bodies = s.queue_bodies("finance").unwrap();
    assert!(
        bodies.iter().any(|b| b.contains("timeoutNotification")),
        "timeout notification came back: {bodies:?}"
    );
    assert_eq!(s.stats().timers_fired, 1);
    assert!(s.clock().now() >= 30_000, "clock fast-forwarded");
}

#[test]
fn echo_message_missing_props_is_a_timer_error() {
    let s = server(
        r#"
        set errorqueue sys
        create queue sys kind basic mode persistent
        create queue echoQueue kind echo mode persistent
        "#,
    );
    s.enqueue_external("echoQueue", "<m/>").unwrap();
    s.run_until_idle().unwrap();
    let errs = s.queue_bodies("sys").unwrap();
    assert_eq!(errs.len(), 1);
    assert!(errs[0].contains("<timerError/>"));
}

#[test]
fn crash_recovery_reprocesses_unprocessed_messages() {
    let dir = TempDir::new().unwrap();
    let program = r#"
        create queue inbox kind basic mode persistent
        create queue outbox kind basic mode persistent
        create rule fwd for inbox if (//m) then do enqueue <done/> into outbox
    "#;
    {
        let s = Server::builder()
            .program(program)
            .dir(dir.path())
            .build()
            .unwrap();
        // Enqueue but do NOT process (no run_until_idle): simulated crash
        // with pending work.
        s.enqueue_external("inbox", "<m/>").unwrap();
    }
    let s = Server::builder()
        .program(program)
        .dir(dir.path())
        .build()
        .unwrap();
    let processed = s.run_until_idle().unwrap();
    assert!(
        processed >= 1,
        "recovered message was scheduled and processed"
    );
    assert_eq!(s.queue_bodies("outbox").unwrap(), ["<done/>"]);
}

#[test]
fn exactly_once_processing_across_restart() {
    let dir = TempDir::new().unwrap();
    let program = r#"
        create queue inbox kind basic mode persistent
        create queue outbox kind basic mode persistent
        create rule fwd for inbox if (//m) then do enqueue <done/> into outbox
    "#;
    {
        let s = Server::builder()
            .program(program)
            .dir(dir.path())
            .build()
            .unwrap();
        s.enqueue_external("inbox", "<m/>").unwrap();
        s.run_until_idle().unwrap();
        assert_eq!(s.queue_bodies("outbox").unwrap().len(), 1);
    }
    let s = Server::builder()
        .program(program)
        .dir(dir.path())
        .build()
        .unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(
        s.queue_bodies("outbox").unwrap().len(),
        1,
        "already-processed message is not reprocessed after restart"
    );
}

#[test]
fn priority_scheduling_order() {
    let s = server(
        r#"
        create queue hi kind basic mode persistent priority 10
        create queue lo kind basic mode persistent priority 0
        create queue log kind basic mode persistent
        create rule rh for hi if (//m) then do enqueue <hi/> into log
        create rule rl for lo if (//m) then do enqueue <lo/> into log
        "#,
    );
    // Enqueue low first; high-priority must still be processed first.
    s.enqueue_external("lo", "<m/>").unwrap();
    s.enqueue_external("hi", "<m/>").unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(s.queue_bodies("log").unwrap(), ["<hi/>", "<lo/>"]);
}

#[test]
fn parallel_processing_is_correct() {
    for granularity in [LockGranularity::Queue, LockGranularity::Slice] {
        let s = Server::builder()
            .program(
                r#"
                create queue work kind basic mode persistent
                create queue out kind basic mode persistent
                create property grp as xs:string fixed queue work, out value //g
                create slicing groups on grp
                create rule process for work
                  if (//job) then do enqueue <result><g>{string(//g)}</g></result> into out
                "#,
            )
            .in_memory()
            .sync_policy(SyncPolicy::Batch)
            .lock_granularity(granularity)
            .build()
            .unwrap();
        for i in 0..60 {
            s.enqueue_external("work", &format!("<job><g>g{}</g></job>", i % 6))
                .unwrap();
        }
        s.process_all_parallel(4).unwrap();
        assert_eq!(
            s.queue_bodies("out").unwrap().len(),
            60,
            "all jobs processed exactly once under {granularity:?}"
        );
    }
}

#[test]
fn collections_accessible_from_rules() {
    let prices = demaq_xml::parse("<pricelist><item name='acid'>10</item></pricelist>").unwrap();
    let s = Server::builder()
        .program(
            r#"
            create queue q kind basic mode persistent
            create queue out kind basic mode persistent
            create rule quote for q
              if (//request) then
                do enqueue <offer>{collection("crm")//item[@name = 'acid']/text()}</offer> into out
            "#,
        )
        .in_memory()
        .collection("crm", vec![prices])
        .build()
        .unwrap();
    s.enqueue_external("q", "<request/>").unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(s.queue_bodies("out").unwrap(), ["<offer>10</offer>"]);
}

#[test]
fn maintenance_checkpoint_and_gc() {
    let dir = TempDir::new().unwrap();
    let program = r#"
        create queue q kind basic mode persistent
        create queue out kind basic mode persistent
        create rule fwd for q if (//m) then do enqueue <o/> into out
    "#;
    {
        let s = Server::builder()
            .program(program)
            .dir(dir.path())
            .build()
            .unwrap();
        for _ in 0..10 {
            s.enqueue_external("q", "<m/>").unwrap();
        }
        s.run_until_idle().unwrap();
        // Everything is processed and nothing is sliced: inputs AND outputs
        // are purgeable — "messages which are not part of any slice may be
        // deleted … as soon as [they have] been processed" (Sec. 2.3.3).
        let purged = s.maintenance().unwrap();
        assert_eq!(purged, 20, "10 inputs + 10 results purged");
    }
    // Restart after checkpoint: the purge survives.
    let s = Server::builder()
        .program(program)
        .dir(dir.path())
        .build()
        .unwrap();
    assert!(s.queue_bodies("out").unwrap().is_empty());
    assert!(s.queue_bodies("q").unwrap().is_empty());
}

#[test]
fn sliced_results_survive_maintenance() {
    // Results that belong to a slice are retained across GC + restart.
    let dir = TempDir::new().unwrap();
    let program = r#"
        create queue q kind basic mode persistent
        create queue out kind basic mode persistent
        create property key as xs:string fixed queue out value //k
        create slicing audit on key
        create rule fwd for q if (//m) then do enqueue <o><k>{string(//m/@k)}</k></o> into out
    "#;
    {
        let s = Server::builder()
            .program(program)
            .dir(dir.path())
            .build()
            .unwrap();
        for i in 0..5 {
            s.enqueue_external("q", &format!("<m k='k{i}'/>")).unwrap();
        }
        s.run_until_idle().unwrap();
        let purged = s.maintenance().unwrap();
        assert_eq!(purged, 5, "only the unsliced inputs are purged");
    }
    let s = Server::builder()
        .program(program)
        .dir(dir.path())
        .build()
        .unwrap();
    assert_eq!(
        s.queue_bodies("out").unwrap().len(),
        5,
        "audit slice retains results"
    );
}
