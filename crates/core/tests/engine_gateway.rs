//! Gateway queues, WSDL validation, reliable messaging, error handling,
//! and multi-node (two servers on one simulated network) scenarios.

use demaq::Server;
use demaq_net::{Clock, Envelope, Network};
use demaq_store::store::SyncPolicy;
use demaq_store::PropValue;
use parking_lot::Mutex;
use std::sync::Arc;

const SUPPLIER_WSDL: &str = r#"
<definitions service="supplier">
  <port name="CapacityRequestPort">
    <operation name="checkCapacity" input="plantCapacityInfo" output="capacityResult"/>
  </port>
</definitions>"#;

fn net_and_clock() -> (Clock, Arc<Network>) {
    let clock = Clock::virtual_at(0);
    let net = Arc::new(Network::new(clock.clone(), 7));
    (clock, net)
}

/// Register a sink endpoint collecting bodies.
fn sink(net: &Arc<Network>, addr: &str) -> Arc<Mutex<Vec<String>>> {
    let collected = Arc::new(Mutex::new(Vec::new()));
    let c2 = Arc::clone(&collected);
    net.register(
        addr,
        Arc::new(move |env: Envelope| c2.lock().push(env.body)),
    );
    collected
}

#[test]
fn outgoing_gateway_sends_to_endpoint() {
    let (_clock, net) = net_and_clock();
    let received = sink(&net, "urn:customer");
    let s = Server::builder()
        .program(
            r#"
            create queue crm kind basic mode persistent
            create queue customer kind outgoingGateway mode persistent endpoint "urn:customer"
            create rule confirm for crm
              if (//customerOrder) then
                do enqueue <confirmation>{//orderID}</confirmation> into customer
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .network(net)
        .build()
        .unwrap();
    s.enqueue_external(
        "crm",
        "<customerOrder><orderID>42</orderID></customerOrder>",
    )
    .unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(
        received.lock().as_slice(),
        ["<confirmation><orderID>42</orderID></confirmation>"]
    );
}

#[test]
fn wsdl_validation_blocks_wrong_messages() {
    let (_clock, net) = net_and_clock();
    let received = sink(&net, "service:supplier");
    let s = Server::builder()
        .program(
            r#"
            set errorqueue errors
            create queue errors kind basic mode persistent
            create queue crm kind basic mode persistent
            create queue supplier kind outgoingGateway mode persistent
              interface supplier.wsdl port CapacityRequestPort
            create rule good for crm
              if (//ok) then do enqueue <plantCapacityInfo/> into supplier
            create rule bad for crm
              if (//nope) then do enqueue <unknownOperation/> into supplier
            "#,
        )
        .wsdl_file("supplier.wsdl", SUPPLIER_WSDL)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .network(net)
        .build()
        .unwrap();
    s.enqueue_external("crm", "<ok/>").unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(received.lock().len(), 1, "conforming message was sent");

    s.enqueue_external("crm", "<nope/>").unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(
        received.lock().len(),
        1,
        "nonconforming message was not sent"
    );
    let errs = s.queue_bodies("errors").unwrap();
    assert_eq!(errs.len(), 1);
    assert!(errs[0].contains("<interfaceMismatch/>"), "{}", errs[0]);
}

#[test]
fn disconnected_endpoint_routes_error_like_fig10() {
    // The deadLink handler of the paper's Fig. 10.
    let (_clock, net) = net_and_clock();
    let _customer = sink(&net, "urn:customer");
    let postal = sink(&net, "urn:postal");
    let s = Server::builder()
        .program(
            r#"
            create queue crmErrors kind basic mode persistent
            create queue crm kind basic mode persistent
            create queue customer kind outgoingGateway mode persistent endpoint "urn:customer"
            create queue postalService kind outgoingGateway mode persistent endpoint "urn:postal"
            create rule confirmOrder for crm errorqueue crmErrors
              if (//customerOrder) then
                do enqueue <confirmation>{//orderID}</confirmation> into customer
            create rule deadLink for crmErrors
              if (/error/disconnectedTransport) then
                do enqueue <sendMessage>{/error/initialMessage/*}</sendMessage> into postalService
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .network(Arc::clone(&net))
        .build()
        .unwrap();
    net.disconnect("urn:customer");
    s.enqueue_external("crm", "<customerOrder><orderID>7</orderID></customerOrder>")
        .unwrap();
    s.run_until_idle().unwrap();
    // The confirmation could not be delivered; the error rule compensated
    // via the postal service.
    let mail = postal.lock();
    assert_eq!(mail.len(), 1);
    assert!(
        mail[0].contains("<confirmation><orderID>7</orderID></confirmation>"),
        "{}",
        mail[0]
    );
}

#[test]
fn reliable_gateway_retries_through_loss() {
    let (_clock, net) = net_and_clock();
    let received = sink(&net, "urn:flaky");
    net.set_drop_rate(0.6);
    let s = Server::builder()
        .program(
            r#"
            create queue out kind outgoingGateway mode persistent
              using WS-ReliableMessaging policy wsrmpol.xml
              endpoint "urn:flaky"
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .network(Arc::clone(&net))
        .seed(99)
        .build()
        .unwrap();
    for i in 0..10 {
        s.enqueue_external("out", &format!("<m n='{i}'/>")).unwrap();
    }
    s.run_until_idle().unwrap();
    // Retries continue until everything is acknowledged. The receiving side
    // here is a bare sink without dedup, so at-least-once: >= 10 arrivals,
    // all 10 distinct payloads present.
    let got = received.lock();
    assert!(got.len() >= 10, "got {}", got.len());
    for i in 0..10 {
        assert!(
            got.iter().any(|b| b.contains(&format!("n='{i}'"))),
            "message {i} arrived"
        );
    }
    drop(got);
    let stats = s.stats();
    assert!(stats.processed >= 10);
}

#[test]
fn reliable_gateway_gives_up_and_reports_timeout() {
    let (_clock, net) = net_and_clock();
    let _ep = sink(&net, "urn:gone");
    net.disconnect("urn:gone");
    let s = Server::builder()
        .program(
            r#"
            set errorqueue errors
            create queue errors kind basic mode persistent
            create queue out kind outgoingGateway mode persistent
              using WS-ReliableMessaging policy wsrmpol.xml
              endpoint "urn:gone"
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .network(Arc::clone(&net))
        .build()
        .unwrap();
    s.enqueue_external("out", "<m/>").unwrap();
    s.run_until_idle().unwrap();
    let errs = s.queue_bodies("errors").unwrap();
    assert_eq!(errs.len(), 1);
    assert!(errs[0].contains("<deliveryTimeout/>"), "{}", errs[0]);
}

#[test]
fn incoming_gateway_receives_and_sets_sender_property() {
    let (clock, net) = net_and_clock();
    let s = Server::builder()
        .program(
            r#"
            create queue requests kind incomingGateway mode persistent endpoint "urn:me"
            create queue out kind basic mode persistent
            create rule handle for requests
              if (//ping) then do enqueue <pong>{qs:property("Sender")}</pong> into out
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .network(Arc::clone(&net))
        .clock(clock.clone())
        .build()
        .unwrap();
    net.send(Envelope::new("urn:me", "urn:client-1", "<ping/>"))
        .unwrap();
    clock.advance(5);
    s.run_until_idle().unwrap();
    assert_eq!(
        s.queue_bodies("out").unwrap(),
        ["<pong>urn:client-1</pong>"]
    );
    // Sender became a system property on the stored message.
    let reqs = s.queue_messages("requests").unwrap();
    assert_eq!(
        reqs[0].prop("Sender"),
        Some(&PropValue::Str("urn:client-1".into()))
    );
}

#[test]
fn malformed_incoming_payload_is_a_message_error() {
    let (clock, net) = net_and_clock();
    let s = Server::builder()
        .program(
            r#"
            set errorqueue errors
            create queue errors kind basic mode persistent
            create queue requests kind incomingGateway mode persistent endpoint "urn:me"
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .network(Arc::clone(&net))
        .clock(clock.clone())
        .build()
        .unwrap();
    net.send(Envelope::new("urn:me", "urn:client", "<broken"))
        .unwrap();
    clock.advance(5);
    s.run_until_idle().unwrap();
    let errs = s.queue_bodies("errors").unwrap();
    assert_eq!(errs.len(), 1);
    assert!(errs[0].contains("<malformedMessage/>"), "{}", errs[0]);
    assert!(
        errs[0].contains("&lt;broken"),
        "corrupt body embedded: {}",
        errs[0]
    );
}

#[test]
fn two_demaq_nodes_talk_over_one_network() {
    // "This also facilitates the distribution of applications over several
    // nodes by replacing local queues with pairs of gateway queues that
    // connect two sites." (Sec. 2.1.2)
    let clock = Clock::virtual_at(0);
    let net = Arc::new(Network::new(clock.clone(), 7));

    let node_a = Server::builder()
        .program(
            r#"
            create queue start kind basic mode persistent
            create queue toB kind outgoingGateway mode persistent endpoint "urn:node-b"
            create queue fromB kind incomingGateway mode persistent endpoint "urn:node-a"
            create queue results kind basic mode persistent
            create rule send for start
              if (//task) then do enqueue <request>{//task/text()}</request> into toB
            create rule recv for fromB
              if (//reply) then do enqueue <final>{//reply/text()}</final> into results
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .network(Arc::clone(&net))
        .clock(clock.clone())
        .server_addr("urn:node-a")
        .build()
        .unwrap();

    let node_b = Server::builder()
        .program(
            r#"
            create queue inbox kind incomingGateway mode persistent endpoint "urn:node-b"
            create queue back kind outgoingGateway mode persistent endpoint "urn:node-a"
            create rule work for inbox
              if (//request) then do enqueue <reply>done:{//request/text()}</reply> into back
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .network(Arc::clone(&net))
        .clock(clock.clone())
        .server_addr("urn:node-b")
        .build()
        .unwrap();

    node_a
        .enqueue_external("start", "<task>job-1</task>")
        .unwrap();
    // Alternate the two nodes until the whole exchange settles.
    for _ in 0..10 {
        node_a.run_until_idle().unwrap();
        node_b.run_until_idle().unwrap();
    }
    assert_eq!(
        node_a.queue_bodies("results").unwrap(),
        ["<final>done:job-1</final>"]
    );
}

#[test]
fn recipient_property_overrides_destination() {
    let (_clock, net) = net_and_clock();
    let a = sink(&net, "urn:a");
    let b = sink(&net, "urn:b");
    let s = Server::builder()
        .program(
            r#"
            create queue q kind basic mode persistent
            create queue gw kind outgoingGateway mode persistent endpoint "urn:a"
            create rule route for q
              if (//m) then
                do enqueue <payload/> into gw with Recipient value string(//m/@to)
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .network(net)
        .build()
        .unwrap();
    s.enqueue_external("q", "<m to='urn:b'/>").unwrap();
    s.run_until_idle().unwrap();
    assert!(a.lock().is_empty());
    assert_eq!(b.lock().len(), 1, "dynamic recipient won");
}
