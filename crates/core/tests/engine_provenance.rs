//! Causal provenance end to end: lineage across rule firings, gateway
//! hops, timer echoes, and error routing; identity of the causal chain
//! across crash/recovery (WAL-only and checkpointed); per-rule wall-time
//! attribution; trace-context filtering.

use demaq::engine::RuleProfile;
use demaq::{Server, TraceFilter};
use demaq_net::{Clock, Network};
use demaq_store::store::SyncPolicy;
use demaq_store::MsgId;
use std::sync::Arc;

/// A procurement-flavored pipeline whose chain crosses a loopback gateway
/// hop: order → approval → supplier (outgoing gateway) ⇢ network ⇢
/// confirmations (incoming gateway) → archive.
const PROCUREMENT: &str = r#"
    create queue order kind basic mode persistent
    create queue approval kind basic mode persistent
    create queue supplier kind outgoingGateway mode persistent endpoint "urn:supplier"
    create queue confirmations kind incomingGateway mode persistent endpoint "urn:supplier"
    create queue archive kind basic mode persistent
    create rule approve for order
      if (//order) then do enqueue <approved>{string(//order/@id)}</approved> into approval
    create rule dispatch for approval
      if (//approved) then do enqueue <shipRequest>{//approved/text()}</shipRequest> into supplier
    create rule archiveConfirmation for confirmations
      if (//shipRequest) then do enqueue <archived>{//shipRequest/text()}</archived> into archive
"#;

fn build(dir: &std::path::Path) -> Server {
    let clock = Clock::virtual_at(0);
    let net = Arc::new(Network::new(clock.clone(), 7));
    Server::builder()
        .program(PROCUREMENT)
        .dir(dir)
        .sync_policy(SyncPolicy::Always)
        .network(net)
        .clock(clock)
        .server_addr("urn:procurement")
        .build()
        .unwrap()
}

/// Run the pipeline once and return every retained message id, in order.
fn run_pipeline(s: &Server) -> Vec<MsgId> {
    let root = s.enqueue_external("order", "<order id='o-1'/>").unwrap();
    s.run_until_idle().unwrap();
    let mut ids = vec![root];
    for q in ["approval", "supplier", "confirmations", "archive"] {
        let msgs = s.queue_messages(q).unwrap();
        assert_eq!(msgs.len(), 1, "exactly one message in `{q}`");
        ids.push(msgs[0].id);
    }
    ids
}

#[test]
fn lineage_spans_rules_and_a_gateway_hop() {
    let tmp = tempfile::TempDir::new().unwrap();
    let s = build(tmp.path());
    let ids = run_pipeline(&s);
    let [root, approval, supplier, confirmation, archive] = ids[..] else {
        panic!("expected 5 messages, got {ids:?}");
    };

    // Root: no ancestors, every later message a descendant (in causal
    // breadth-first order).
    let l = s.lineage(root);
    let target = l.target.expect("root is indexed");
    assert_eq!(target.parent, None);
    assert_eq!(target.root, root.0);
    assert_eq!(target.queue, "order");
    assert!(l.ancestors.is_empty());
    let desc: Vec<u64> = l.descendants.iter().map(|r| r.msg).collect();
    assert_eq!(
        desc,
        [approval.0, supplier.0, confirmation.0, archive.0],
        "descendants cross the gateway hop"
    );
    assert!(l.descendants.iter().all(|r| r.root == root.0));

    // Mid-chain: ancestors nearest-first up to the root, descendants
    // below; rule attribution names the producing rule, and the gateway
    // hop is marked as such.
    let l = s.lineage(supplier);
    let anc: Vec<u64> = l.ancestors.iter().map(|r| r.msg).collect();
    assert_eq!(anc, [approval.0, root.0]);
    assert_eq!(l.target.as_ref().unwrap().rule.as_deref(), Some("dispatch"));
    let desc: Vec<u64> = l.descendants.iter().map(|r| r.msg).collect();
    assert_eq!(desc, [confirmation.0, archive.0]);

    let l = s.lineage(confirmation);
    let t = l.target.unwrap();
    assert_eq!(t.parent, Some(supplier.0), "ingest names the sent message");
    assert_eq!(t.rule.as_deref(), Some("<gateway>"));
    assert_eq!(t.root, root.0, "the tree survives the hop");

    // The chain is durable: every rule-produced edge carries a WAL LSN.
    for id in [approval, supplier, archive] {
        let rec = s.provenance().get(id.0).unwrap();
        assert!(rec.lsn.is_some(), "edge of {id:?} not WAL-durable");
    }
}

#[test]
fn lineage_identical_before_and_after_crash_recovery() {
    let tmp = tempfile::TempDir::new().unwrap();
    let (ids, before) = {
        let s = build(tmp.path());
        let ids = run_pipeline(&s);
        let before: Vec<_> = ids.iter().map(|id| s.lineage(*id)).collect();
        (ids, before)
        // Dropped without checkpoint: recovery must rebuild the chain
        // from WAL records alone.
    };
    let s = build(tmp.path());
    for (id, want) in ids.iter().zip(&before) {
        assert_eq!(
            &s.lineage(*id),
            want,
            "lineage of {id:?} diverged after WAL-only recovery"
        );
    }

    // And again through a checkpoint (snapshot carries the lineage, the
    // WAL segments before it are gone). Checkpoint directly — the
    // retention GC would legitimately purge the processed, unsliced
    // messages along with their lineage.
    s.store().checkpoint().unwrap();
    drop(s);
    let s = build(tmp.path());
    for (id, want) in ids.iter().zip(&before) {
        assert_eq!(
            &s.lineage(*id),
            want,
            "lineage of {id:?} diverged after checkpointed recovery"
        );
    }
}

#[test]
fn error_messages_join_the_causal_tree_of_the_failing_message() {
    let s = Server::builder()
        .program(
            r#"
            set errorqueue errors
            create schema strict {
                root order
                element order { id }
                element id text integer
            }
            create queue errors kind basic mode persistent
            create queue inbox kind basic mode persistent
            create queue guarded kind basic mode persistent schema strict
            create rule explode for inbox
              if (//boom) then do enqueue <notAnOrder/> into guarded
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()
        .unwrap();
    let root = s.enqueue_external("inbox", "<boom/>").unwrap();
    s.run_until_idle().unwrap();
    let errs = s.queue_messages("errors").unwrap();
    assert_eq!(errs.len(), 1);
    let l = s.lineage(errs[0].id);
    let t = l.target.unwrap();
    assert_eq!(t.parent, Some(root.0));
    assert_eq!(t.root, root.0);
    assert_eq!(t.rule.as_deref(), Some("explode"), "failing rule attributed");
    let l = s.lineage(root);
    assert_eq!(l.descendants.len(), 1, "error message is a descendant");
}

#[test]
fn rule_profiles_attribute_time_and_production() {
    let tmp = tempfile::TempDir::new().unwrap();
    let s = build(tmp.path());
    for i in 0..5 {
        s.enqueue_external("order", &format!("<order id='o-{i}'/>"))
            .unwrap();
    }
    s.run_until_idle().unwrap();

    let profiles = s.rule_profiles();
    assert_eq!(profiles.len(), 3, "one profile per declared rule");
    let by_name = |n: &str| -> &RuleProfile {
        profiles
            .iter()
            .find(|p| p.rule == n)
            .unwrap_or_else(|| panic!("no profile for `{n}`"))
    };
    for rule in ["approve", "dispatch", "archiveConfirmation"] {
        let p = by_name(rule);
        assert_eq!(p.fires, 5, "`{rule}` fired per message");
        assert_eq!(p.messages_produced, 5, "`{rule}` produced per firing");
        assert!(p.eval_ns_total > 0);
        assert!(p.eval_ns_p50 <= p.eval_ns_p99);
        assert!(p.eval_ns_mean > 0.0);
    }
    // Sorted by total evaluation time, heaviest first.
    assert!(profiles
        .windows(2)
        .all(|w| w[0].eval_ns_total >= w[1].eval_ns_total));

    // The same series appear in the Prometheus exposition.
    let text = s.metrics_text();
    assert!(text.contains("demaq_engine_rule_time_ns_bucket{rule=\"approve\""));
    assert!(text.contains("demaq_engine_rule_fires_total{rule=\"dispatch\""));
    assert!(text.contains("demaq_engine_rule_produced_total{rule=\"archiveConfirmation\""));
}

#[test]
fn trace_tail_filters_by_trace_and_message() {
    let tmp = tempfile::TempDir::new().unwrap();
    let s = build(tmp.path());
    let a = s.enqueue_external("order", "<order id='a'/>").unwrap();
    let b = s.enqueue_external("order", "<order id='b'/>").unwrap();
    s.run_until_idle().unwrap();

    // Each cascade is one trace, keyed by its root message id.
    let tree_a = s.trace_tail_filtered(
        1024,
        &TraceFilter {
            trace_id: Some(a.0),
            ..Default::default()
        },
    );
    assert!(!tree_a.is_empty());
    assert!(tree_a.iter().all(|e| e.trace_id == Some(a.0)));
    assert!(
        tree_a.iter().any(|e| e.queue == "archive"),
        "trace follows the cascade to its last hop"
    );
    assert!(
        tree_a.iter().all(|e| e.trace_id != Some(b.0)),
        "the other cascade is filtered out"
    );

    // Message filter surfaces both the message's own events and the
    // enqueues it caused (parent_span hits).
    let around_a = s.trace_tail_filtered(
        1024,
        &TraceFilter {
            msg_id: Some(a.0),
            ..Default::default()
        },
    );
    assert!(around_a.iter().any(|e| e.kind == "msg.processed"));
    assert!(
        around_a
            .iter()
            .any(|e| e.kind == "msg.enqueue" && e.parent_span == Some(a.0)),
        "children of the message surface via parent_span"
    );

    // Queue filter composes.
    let archive_only = s.trace_tail_filtered(
        1024,
        &TraceFilter {
            queue: Some("archive".into()),
            ..Default::default()
        },
    );
    assert!(!archive_only.is_empty());
    assert!(archive_only.iter().all(|e| e.queue == "archive"));
}

#[test]
fn echo_timer_preserves_the_causal_chain() {
    let s = Server::builder()
        .program(
            r#"
            create queue inbox kind basic mode persistent
            create queue later kind echo mode persistent
            create queue woken kind basic mode persistent
            create rule park for inbox
              if (//start) then
                do enqueue <wake/> into later
                  with delay value 100
                  with target value "woken"
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()
        .unwrap();
    let root = s.enqueue_external("inbox", "<start/>").unwrap();
    s.run_until_idle().unwrap();
    let woken = s.queue_messages("woken").unwrap();
    assert_eq!(woken.len(), 1);
    let l = s.lineage(woken[0].id);
    let t = l.target.unwrap();
    assert_eq!(t.rule.as_deref(), Some("<echo>"));
    assert_eq!(t.root, root.0, "echoed message stays in the tree");
    let anc: Vec<u64> = l.ancestors.iter().map(|r| r.msg).collect();
    assert_eq!(*anc.last().unwrap(), root.0, "chain walks back to the root");
}
