//! Stress and adversarial scenarios: deadlock-prone rule sets, rule
//! cascades, bursty slicing, checkpoint-under-load, and mixed
//! persistent/transient pipelines.

use demaq::Server;
use demaq_store::store::SyncPolicy;
use demaq_store::LockGranularity;
use tempfile::TempDir;

#[test]
fn cross_writing_rules_under_queue_locks_do_not_deadlock_forever() {
    // Rules on `a` write into `b` and vice versa: with queue-granularity
    // exclusive locks two workers can request each other's queues. The
    // engine must resolve this via deadlock detection + retry, never hang.
    let s = Server::builder()
        .program(
            r#"
            create queue a kind basic mode persistent
            create queue b kind basic mode persistent
            create queue done kind basic mode persistent
            create rule ab for a if (//ping) then do enqueue <t/> into done
            create rule ab2 for a if (//hop) then do enqueue <ping/> into b
            create rule ba for b if (//ping) then do enqueue <t/> into done
            create rule ba2 for b if (//hop) then do enqueue <ping/> into a
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .lock_granularity(LockGranularity::Queue)
        .build()
        .unwrap();
    for i in 0..40 {
        let q = if i % 2 == 0 { "a" } else { "b" };
        s.enqueue_external(q, "<hop/>").unwrap();
    }
    let done = s.process_all_parallel(4).unwrap();
    assert!(done >= 40, "all initial messages processed, got {done}");
    // Cascade completes: every hop produced a ping, every ping a t.
    s.process_all_parallel(4).unwrap();
    assert_eq!(s.queue_bodies("done").unwrap().len(), 40);
    // With the analysis-derived global lock order, workers acquire `a`
    // and `b` in the same rank order and deadlocks never form — the
    // detection/retry path stays as a backstop but must not fire here.
    assert_eq!(
        s.stats().deadlock_retries,
        0,
        "rank-ordered acquisition avoids deadlock entirely"
    );
}

#[test]
fn deep_rule_cascade() {
    // A chain of 24 queues, each forwarding — exercises scheduler + txn
    // machinery over a long causal chain.
    let mut program = String::new();
    for i in 0..24 {
        program.push_str(&format!("create queue q{i} kind basic mode persistent\n"));
    }
    for i in 0..23 {
        program.push_str(&format!(
            "create rule r{i} for q{i} if (//m) then do enqueue <m step='{i}'/> into q{next}\n",
            next = i + 1
        ));
    }
    let s = Server::builder()
        .program(&program)
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()
        .unwrap();
    s.enqueue_external("q0", "<m step='start'/>").unwrap();
    let processed = s.run_until_idle().unwrap();
    assert_eq!(processed, 24, "one message processed per stage");
    let tail = s.queue_bodies("q23").unwrap();
    assert_eq!(tail.len(), 1);
    assert!(tail[0].contains("step='22'") || tail[0].contains("step=\"22\""));
}

#[test]
fn fanout_explosion_is_bounded_and_correct() {
    // One message fans out to 3, each of which fans out to 3 again.
    let s = Server::builder()
        .program(
            r#"
            create queue l0 kind basic mode persistent
            create queue l1 kind basic mode persistent
            create queue l2 kind basic mode persistent
            create rule f0 for l0 if (//m) then
              (do enqueue <m/> into l1, do enqueue <m/> into l1, do enqueue <m/> into l1)
            create rule f1 for l1 if (//m) then
              (do enqueue <m/> into l2, do enqueue <m/> into l2, do enqueue <m/> into l2)
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()
        .unwrap();
    for _ in 0..5 {
        s.enqueue_external("l0", "<m/>").unwrap();
    }
    s.run_until_idle().unwrap();
    assert_eq!(s.queue_bodies("l1").unwrap().len(), 15);
    assert_eq!(s.queue_bodies("l2").unwrap().len(), 45);
    assert_eq!(s.stats().processed, 5 + 15 + 45);
}

#[test]
fn checkpoint_between_batches_under_load() {
    let dir = TempDir::new().unwrap();
    let program = r#"
        create queue work kind basic mode persistent
        create queue out kind basic mode persistent
        create property k as xs:string fixed queue out value //@k
        create slicing keep on k
        create rule fwd for work if (//m) then do enqueue <o k="{string(//m/@k)}"/> into out
    "#;
    {
        let s = Server::builder()
            .program(program)
            .dir(dir.path())
            .sync_policy(SyncPolicy::Batch)
            .build()
            .unwrap();
        for batch in 0..5 {
            for i in 0..20 {
                s.enqueue_external("work", &format!("<m k='b{batch}-{i}'/>"))
                    .unwrap();
            }
            s.run_until_idle().unwrap();
            s.maintenance().unwrap(); // GC + checkpoint every batch
        }
        assert_eq!(s.queue_bodies("out").unwrap().len(), 100);
    }
    let s = Server::builder()
        .program(program)
        .dir(dir.path())
        .build()
        .unwrap();
    assert_eq!(
        s.queue_bodies("out").unwrap().len(),
        100,
        "all results survive"
    );
    assert!(
        s.queue_bodies("work").unwrap().is_empty(),
        "inputs were GC'd"
    );
}

#[test]
fn mixed_transient_persistent_pipeline_restart() {
    let dir = TempDir::new().unwrap();
    let program = r#"
        create queue staging kind transient mode transient
        create queue archive kind basic mode persistent
        create property k as xs:string fixed queue archive value //@k
        create slicing hold on k
        create rule promote for staging if (//m) then do enqueue <m k="{string(//m/@k)}"/> into archive
    "#;
    // `kind transient` is not a kind; fix to basic.
    let program = program.replace("kind transient mode transient", "kind basic mode transient");
    {
        let s = Server::builder()
            .program(&program)
            .dir(dir.path())
            .sync_policy(SyncPolicy::Batch)
            .build()
            .unwrap();
        for i in 0..10 {
            s.enqueue_external("staging", &format!("<m k='k{i}'/>"))
                .unwrap();
        }
        s.run_until_idle().unwrap();
        // Leave 5 unprocessed transient messages behind.
        for i in 10..15 {
            s.enqueue_external("staging", &format!("<m k='k{i}'/>"))
                .unwrap();
        }
        s.store().sync().unwrap();
    }
    let s = Server::builder()
        .program(&program)
        .dir(dir.path())
        .build()
        .unwrap();
    s.run_until_idle().unwrap();
    assert_eq!(
        s.queue_bodies("archive").unwrap().len(),
        10,
        "persistent results survive; unprocessed transient staging is lost by design"
    );
}

#[test]
fn many_slicings_on_one_message() {
    // A message carrying 4 properties joins 4 slicings; all retention
    // criteria must clear before GC may purge it.
    let s = Server::builder()
        .program(
            r#"
            create queue q kind basic mode persistent
            create property p1 as xs:string fixed queue q value //@a
            create property p2 as xs:string fixed queue q value //@b
            create property p3 as xs:string fixed queue q value //@c
            create property p4 as xs:string fixed queue q value //@d
            create slicing s1 on p1
            create slicing s2 on p2
            create slicing s3 on p3
            create slicing s4 on p4
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()
        .unwrap();
    s.enqueue_external("q", "<m a='1' b='2' c='3' d='4'/>")
        .unwrap();
    s.run_until_idle().unwrap();
    let store = s.store();
    let reset = |slicing: &str, key: &str| {
        let txn = store.begin();
        store
            .slice_reset(txn, slicing, demaq_store::PropValue::Str(key.into()))
            .unwrap();
        store.commit(txn).unwrap();
    };
    for (slicing, key) in [("s1", "1"), ("s2", "2"), ("s3", "3")] {
        reset(slicing, key);
        assert_eq!(s.gc().unwrap(), 0, "{slicing} reset alone must not release");
    }
    reset("s4", "4");
    assert_eq!(s.gc().unwrap(), 1, "all four criteria cleared");
}

#[test]
fn burst_of_thousand_messages() {
    let s = Server::builder()
        .program(
            r#"
            create queue q kind basic mode persistent
            create queue out kind basic mode persistent
            create rule f for q if (//m) then do enqueue <o>{string(//m/@i)}</o> into out
            "#,
        )
        .in_memory()
        .sync_policy(SyncPolicy::Batch)
        .build()
        .unwrap();
    for i in 0..1000 {
        s.enqueue_external("q", &format!("<m i='{i}'/>")).unwrap();
    }
    s.run_until_idle().unwrap();
    let out = s.queue_bodies("out").unwrap();
    assert_eq!(out.len(), 1000);
    // FIFO order is preserved end to end.
    assert_eq!(out[0], "<o>0</o>");
    assert_eq!(out[999], "<o>999</o>");
    assert_eq!(s.gc().unwrap(), 2000, "everything processed & unsliced");
}
