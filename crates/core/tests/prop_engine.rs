//! Property-based tests on engine invariants:
//!
//! * exactly-once processing for arbitrary workloads,
//! * conservation: every enqueue is observable (processed + retained ≥ it),
//! * retention algebra: a message survives GC iff some slice holds it,
//! * parallel processing equals sequential processing (same final state),
//! * restart equivalence: recovery never duplicates or loses results.

use demaq::Server;
use demaq_store::store::SyncPolicy;
use demaq_store::LockGranularity;
use proptest::prelude::*;
use tempfile::TempDir;

const PROGRAM: &str = r#"
    create queue work kind basic mode persistent
    create queue out kind basic mode persistent
    create property grp as xs:string fixed queue work value //@g
    create slicing groups on grp
    create rule classify for work
      if (//job) then
        do enqueue <result g="{string(//job/@g)}" n="{string(//job/@n)}"/> into out
    create rule finishGroup for groups
      if (qs:message()/close) then do reset groups key qs:slicekey()
"#;

fn build(dir: &TempDir) -> Server {
    Server::builder()
        .program(PROGRAM)
        .dir(dir.path())
        .sync_policy(SyncPolicy::Batch)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn results_match_inputs_exactly_once(
        jobs in proptest::collection::vec((0u8..6, 0u32..1000), 0..40),
    ) {
        let dir = TempDir::new().unwrap();
        let s = build(&dir);
        for (g, n) in &jobs {
            s.enqueue_external("work", &format!("<job g='g{g}' n='{n}'/>")).unwrap();
        }
        s.run_until_idle().unwrap();
        let mut got: Vec<(String, String)> = s
            .queue_messages("out")
            .unwrap()
            .iter()
            .map(|m| {
                let doc = demaq_xml::parse(&m.payload).unwrap();
                let e = doc.document_element().unwrap();
                (e.attribute("g").unwrap(), e.attribute("n").unwrap())
            })
            .collect();
        let mut want: Vec<(String, String)> =
            jobs.iter().map(|(g, n)| (format!("g{g}"), n.to_string())).collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn parallel_equals_sequential(
        jobs in proptest::collection::vec((0u8..6, 0u32..1000), 1..40),
        threads in 1usize..5,
        granularity_slice in any::<bool>(),
    ) {
        let run = |parallel: Option<usize>| {
            let dir = TempDir::new().unwrap();
            let s = Server::builder()
                .program(PROGRAM)
                .dir(dir.path())
                .sync_policy(SyncPolicy::Batch)
                .lock_granularity(if granularity_slice {
                    LockGranularity::Slice
                } else {
                    LockGranularity::Queue
                })
                .build()
                .unwrap();
            for (g, n) in &jobs {
                s.enqueue_external("work", &format!("<job g='g{g}' n='{n}'/>")).unwrap();
            }
            match parallel {
                Some(t) => {
                    s.process_all_parallel(t).unwrap();
                }
                None => {
                    s.run_until_idle().unwrap();
                }
            }
            let mut out: Vec<String> = s.queue_bodies("out").unwrap();
            out.sort();
            out
        };
        prop_assert_eq!(run(None), run(Some(threads)));
    }

    #[test]
    fn retention_iff_sliced(
        groups in proptest::collection::vec(0u8..5, 1..20),
        closed in proptest::collection::vec(0u8..5, 0..5),
    ) {
        let dir = TempDir::new().unwrap();
        let s = build(&dir);
        for g in &groups {
            s.enqueue_external("work", &format!("<job g='g{g}' n='0'/>")).unwrap();
        }
        s.run_until_idle().unwrap();
        for g in &closed {
            s.enqueue_external("work", &format!("<close g='g{g}'/>")).unwrap();
        }
        s.run_until_idle().unwrap();
        s.gc().unwrap();
        // A work message survives GC iff its group's slice was never reset
        // after it was added. Close messages themselves join the slice
        // *after* the reset (the reset happens while processing the close),
        // so they are retained; results are unsliced and purged.
        let retained: Vec<String> = s.queue_bodies("work").unwrap();
        for g in 0u8..5 {
            let had_jobs = groups.contains(&g);
            let was_closed = closed.contains(&g);
            let jobs_left = retained
                .iter()
                .filter(|b| b.contains(&format!("g='g{g}'")) && b.contains("<job"))
                .count();
            if had_jobs && !was_closed {
                prop_assert!(jobs_left > 0, "open group g{} must retain its jobs", g);
            }
            if was_closed {
                prop_assert_eq!(jobs_left, 0, "closed group g{} must be purged", g);
            }
        }
        prop_assert!(s.queue_bodies("out").unwrap().is_empty(), "results are unsliced");
    }

    #[test]
    fn restart_preserves_results(
        jobs in proptest::collection::vec((0u8..6, 0u32..1000), 0..25),
        process_before_crash in any::<bool>(),
    ) {
        let dir = TempDir::new().unwrap();
        {
            let s = build(&dir);
            for (g, n) in &jobs {
                s.enqueue_external("work", &format!("<job g='g{g}' n='{n}'/>")).unwrap();
            }
            if process_before_crash {
                s.run_until_idle().unwrap();
            }
            s.store().sync().unwrap();
            // drop = crash
        }
        let s = build(&dir);
        s.run_until_idle().unwrap();
        prop_assert_eq!(
            s.queue_bodies("out").unwrap().len(),
            jobs.len(),
            "each job yields exactly one result, crash or not"
        );
    }
}
