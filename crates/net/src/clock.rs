//! Virtual/wall clock.
//!
//! All time in the reproduction flows through a [`Clock`]: transport
//! latency, echo-queue timeouts, `fn:current-dateTime()`, and message
//! arrival timestamps. Virtual mode makes every paper scenario (grace
//! periods, reminders — Example 3.4) deterministic; wall mode is available
//! for long-running servers.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// A shareable clock handle.
#[derive(Clone)]
pub struct Clock {
    inner: Arc<ClockInner>,
}

struct ClockInner {
    /// Virtual milliseconds since the epoch.
    now_ms: AtomicI64,
    /// When true, `now()` reads the system clock instead.
    wall: AtomicBool,
}

impl Default for Clock {
    fn default() -> Self {
        Clock::virtual_at(0)
    }
}

impl Clock {
    /// A virtual clock starting at `start_ms`.
    pub fn virtual_at(start_ms: i64) -> Clock {
        Clock {
            inner: Arc::new(ClockInner {
                now_ms: AtomicI64::new(start_ms),
                wall: AtomicBool::new(false),
            }),
        }
    }

    /// A wall clock.
    pub fn wall() -> Clock {
        Clock {
            inner: Arc::new(ClockInner {
                now_ms: AtomicI64::new(0),
                wall: AtomicBool::new(true),
            }),
        }
    }

    /// Current time in epoch milliseconds.
    pub fn now(&self) -> i64 {
        if self.inner.wall.load(Ordering::Relaxed) {
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as i64)
                .unwrap_or(0)
        } else {
            self.inner.now_ms.load(Ordering::SeqCst)
        }
    }

    /// Advance virtual time by `ms` (no-op guard on wall clocks). Returns
    /// the new now.
    pub fn advance(&self, ms: i64) -> i64 {
        assert!(ms >= 0, "time cannot run backwards");
        if self.inner.wall.load(Ordering::Relaxed) {
            return self.now();
        }
        self.inner.now_ms.fetch_add(ms, Ordering::SeqCst) + ms
    }

    /// Set absolute virtual time (must not go backwards).
    pub fn set(&self, now_ms: i64) {
        let prev = self.inner.now_ms.load(Ordering::SeqCst);
        assert!(
            now_ms >= prev,
            "time cannot run backwards ({now_ms} < {prev})"
        );
        self.inner.now_ms.store(now_ms, Ordering::SeqCst);
    }

    /// Is this a virtual clock?
    pub fn is_virtual(&self) -> bool {
        !self.inner.wall.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_deterministically() {
        let c = Clock::virtual_at(1000);
        assert_eq!(c.now(), 1000);
        assert_eq!(c.advance(500), 1500);
        assert_eq!(c.now(), 1500);
        c.set(2000);
        assert_eq!(c.now(), 2000);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn set_backwards_panics() {
        let c = Clock::virtual_at(100);
        c.set(50);
    }

    #[test]
    fn clones_share_time() {
        let a = Clock::virtual_at(0);
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now(), 42);
    }

    #[test]
    fn wall_clock_moves() {
        let c = Clock::wall();
        assert!(c.now() > 1_500_000_000_000); // after 2017 in ms
        assert!(!c.is_virtual());
    }
}
