//! Transport envelopes — the SOAP-envelope stand-in.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_UID: AtomicU64 = AtomicU64::new(1);
static NEXT_CONN: AtomicU64 = AtomicU64::new(1);

/// Identifies a synchronous request/response correlation — the paper's
/// "connection handles" system property (Sec. 2.2): "Connection handles
/// support synchronous communication, where a response message must be
/// correlated with an existing connection created by an incoming request."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnectionHandle(pub u64);

impl ConnectionHandle {
    /// Allocate a fresh handle (done by the transport when a request
    /// arrives).
    pub fn fresh() -> ConnectionHandle {
        ConnectionHandle(NEXT_CONN.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Display for ConnectionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn-{}", self.0)
    }
}

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Destination endpoint address (e.g. `http://ws.chem.invalid/`).
    pub to: String,
    /// Sender address.
    pub from: String,
    /// Serialized XML body.
    pub body: String,
    /// Transport headers (reliability sequence numbers, security tokens…).
    pub headers: Vec<(String, String)>,
    /// Unique id for duplicate suppression.
    pub uid: u64,
    /// Present when this message belongs to a synchronous exchange.
    pub conn: Option<ConnectionHandle>,
}

impl Envelope {
    /// Build an envelope with a fresh uid.
    pub fn new(
        to: impl Into<String>,
        from: impl Into<String>,
        body: impl Into<String>,
    ) -> Envelope {
        Envelope {
            to: to.into(),
            from: from.into(),
            body: body.into(),
            headers: Vec::new(),
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
            conn: None,
        }
    }

    /// Attach a header.
    pub fn with_header(mut self, k: impl Into<String>, v: impl Into<String>) -> Envelope {
        self.headers.push((k.into(), v.into()));
        self
    }

    /// Attach a connection handle.
    pub fn with_conn(mut self, conn: ConnectionHandle) -> Envelope {
        self.conn = Some(conn);
        self
    }

    /// Header lookup.
    pub fn header(&self, k: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uids_are_unique() {
        let a = Envelope::new("x", "y", "<m/>");
        let b = Envelope::new("x", "y", "<m/>");
        assert_ne!(a.uid, b.uid);
    }

    #[test]
    fn headers_and_conn() {
        let e = Envelope::new("svc", "me", "<m/>")
            .with_header("WS-Security", "token")
            .with_conn(ConnectionHandle::fresh());
        assert_eq!(e.header("WS-Security"), Some("token"));
        assert_eq!(e.header("missing"), None);
        assert!(e.conn.is_some());
    }
}
