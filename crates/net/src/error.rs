//! Transport error classes (paper Sec. 3.6, "Network related").

use std::fmt;

/// Why a send failed. Mirrors the error taxonomy the paper enumerates —
/// "temporal or permanent unavailability of remote transport endpoints,
/// name resolution failures, timeouts or routing errors … invalid
/// certificates, wrong signatures or decryption failures".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No endpoint registered under the address ("name resolution failure").
    NoRoute(String),
    /// Endpoint exists but is disconnected.
    Disconnected(String),
    /// Reliable delivery gave up after exhausting retries.
    Timeout(String),
    /// A security policy rejected the message (WS-Security stand-in).
    SecurityViolation(String),
    /// The interface description rejected the message body.
    InterfaceMismatch(String),
}

impl TransportError {
    /// Stable error-kind token used in generated `<error>` messages so
    /// QML rules can dispatch on it (`/error/disconnectedTransport` etc.,
    /// as in the paper's Fig. 10).
    pub fn kind_element(&self) -> &'static str {
        match self {
            TransportError::NoRoute(_) => "noRoute",
            TransportError::Disconnected(_) => "disconnectedTransport",
            TransportError::Timeout(_) => "deliveryTimeout",
            TransportError::SecurityViolation(_) => "securityViolation",
            TransportError::InterfaceMismatch(_) => "interfaceMismatch",
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::NoRoute(a) => write!(f, "no route to `{a}`"),
            TransportError::Disconnected(a) => write!(f, "endpoint `{a}` is disconnected"),
            TransportError::Timeout(a) => write!(f, "delivery to `{a}` timed out"),
            TransportError::SecurityViolation(m) => write!(f, "security violation: {m}"),
            TransportError::InterfaceMismatch(m) => write!(f, "interface mismatch: {m}"),
        }
    }
}

impl std::error::Error for TransportError {}
