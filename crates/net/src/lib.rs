//! # demaq-net
//!
//! Simulated network substrate for Demaq's gateway queues (paper Sec. 2.1.2
//! / 4.2). The paper's system speaks SOAP over HTTP/SMTP to real Web
//! Services; this reproduction substitutes an in-process transport that
//! exercises the same code paths:
//!
//! * an **endpoint registry** with asynchronous, latency-modelled delivery
//!   ([`network::Network`]),
//! * **failure injection** — disconnected endpoints, message drop rates —
//!   so applications must handle the error classes of Sec. 3.6,
//! * a **reliable-messaging layer** ([`reliable`]) with acknowledgements,
//!   retries and duplicate suppression (the WS-ReliableMessaging stand-in),
//! * **connection handles** correlating synchronous request/response pairs,
//! * a **virtual clock** ([`clock::Clock`]) driving both transport latency
//!   and Demaq's time-based (echo) queues, deterministic for tests,
//! * **WSDL-lite** interface descriptions ([`wsdl`]) validating the
//!   messages sent through a gateway against the remote service's
//!   declared operations.

pub mod clock;
pub mod envelope;
pub mod error;
pub mod network;
pub mod reliable;
pub mod timer;
pub mod wsdl;

pub use clock::Clock;
pub use envelope::{ConnectionHandle, Envelope};
pub use error::TransportError;
pub use network::{DeliveryHandler, Network};
pub use timer::TimerWheel;
pub use wsdl::WsdlInterface;
