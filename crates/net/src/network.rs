//! The endpoint registry and asynchronous delivery simulation.
//!
//! Endpoints register a [`DeliveryHandler`]; senders call [`Network::send`],
//! which models latency by parking envelopes on an in-flight list keyed by
//! due time. The owner of the [`crate::Clock`] (the Demaq server's
//! background task) calls [`Network::pump`] to deliver everything due.
//!
//! Failure injection:
//! * [`Network::disconnect`] — sends to that address fail immediately with
//!   [`TransportError::Disconnected`],
//! * [`Network::set_drop_rate`] — a seeded RNG silently drops that
//!   fraction of envelopes in flight (retried by the reliable layer).

use crate::clock::Clock;
use crate::envelope::Envelope;
use crate::error::TransportError;
use demaq_obs::{Counter, Obs};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

/// Callback invoked when an envelope arrives at an endpoint.
pub type DeliveryHandler = Arc<dyn Fn(Envelope) + Send + Sync>;

struct InFlight {
    due: i64,
    env: Envelope,
}

struct NetState {
    endpoints: HashMap<String, DeliveryHandler>,
    disconnected: HashSet<String>,
    in_flight: Vec<InFlight>,
    drop_rate: f64,
    rng: StdRng,
    latency_ms: i64,
    delivered: u64,
    dropped: u64,
}

/// Registry handles for transport metrics (`demaq_net_*`).
struct NetMetrics {
    sent: Counter,
    delivered: Counter,
    dropped: Counter,
}

/// The simulated network.
pub struct Network {
    clock: Clock,
    state: Mutex<NetState>,
    metrics: OnceLock<NetMetrics>,
}

impl Network {
    /// Create a network on the given clock. `seed` drives the failure RNG
    /// (deterministic experiments).
    pub fn new(clock: Clock, seed: u64) -> Network {
        Network {
            clock,
            state: Mutex::new(NetState {
                endpoints: HashMap::new(),
                disconnected: HashSet::new(),
                in_flight: Vec::new(),
                drop_rate: 0.0,
                rng: StdRng::seed_from_u64(seed),
                latency_ms: 1,
                delivered: 0,
                dropped: 0,
            }),
            metrics: OnceLock::new(),
        }
    }

    /// Register transport counters (`demaq_net_sent_total`,
    /// `demaq_net_delivered_total`, `demaq_net_dropped_total`) in `obs`.
    /// First attachment wins — on a shared multi-node network the first
    /// server's registry collects transport-wide counts.
    pub fn attach_obs(&self, obs: &Obs) {
        let _ = self.metrics.set(NetMetrics {
            sent: obs.registry.counter("demaq_net_sent_total"),
            delivered: obs.registry.counter("demaq_net_delivered_total"),
            dropped: obs.registry.counter("demaq_net_dropped_total"),
        });
    }

    /// Register (or replace) the handler for an address.
    pub fn register(&self, addr: impl Into<String>, handler: DeliveryHandler) {
        self.state.lock().endpoints.insert(addr.into(), handler);
    }

    /// Remove an endpoint entirely.
    pub fn unregister(&self, addr: &str) {
        self.state.lock().endpoints.remove(addr);
    }

    /// Simulate an endpoint outage.
    pub fn disconnect(&self, addr: &str) {
        self.state.lock().disconnected.insert(addr.to_string());
    }

    /// End an outage.
    pub fn reconnect(&self, addr: &str) {
        self.state.lock().disconnected.remove(addr);
    }

    /// Fraction (0.0–1.0) of in-flight envelopes silently lost.
    pub fn set_drop_rate(&self, rate: f64) {
        self.state.lock().drop_rate = rate.clamp(0.0, 1.0);
    }

    /// Fixed one-way latency applied to every send.
    pub fn set_latency_ms(&self, ms: i64) {
        self.state.lock().latency_ms = ms.max(0);
    }

    /// Submit an envelope. Fails fast on routing/connectivity errors;
    /// otherwise the message is in flight until [`Self::pump`].
    pub fn send(&self, env: Envelope) -> Result<(), TransportError> {
        let mut st = self.state.lock();
        if !st.endpoints.contains_key(&env.to) {
            return Err(TransportError::NoRoute(env.to));
        }
        if st.disconnected.contains(&env.to) {
            return Err(TransportError::Disconnected(env.to));
        }
        if let Some(m) = self.metrics.get() {
            m.sent.inc();
        }
        if st.drop_rate > 0.0 {
            let p: f64 = st.rng.gen();
            if p < st.drop_rate {
                st.dropped += 1;
                if let Some(m) = self.metrics.get() {
                    m.dropped.inc();
                }
                return Ok(()); // lost in transit: sender believes it went out
            }
        }
        let due = self.clock.now() + st.latency_ms;
        st.in_flight.push(InFlight { due, env });
        Ok(())
    }

    /// Deliver all envelopes due at the current clock. Returns the number
    /// delivered.
    pub fn pump(&self) -> usize {
        let now = self.clock.now();
        let (due, handlers): (Vec<Envelope>, Vec<DeliveryHandler>) = {
            let mut st = self.state.lock();
            let mut due = Vec::new();
            let mut rest = Vec::new();
            let in_flight = std::mem::take(&mut st.in_flight);
            for inf in in_flight {
                if inf.due <= now && !st.disconnected.contains(&inf.env.to) {
                    due.push(inf.env);
                } else {
                    rest.push(inf);
                }
            }
            st.in_flight = rest;
            // Endpoints may have been unregistered since send: such
            // envelopes vanish (the remote went away).
            let mut kept = Vec::new();
            let mut handlers = Vec::new();
            for e in due {
                if let Some(h) = st.endpoints.get(&e.to) {
                    handlers.push(Arc::clone(h));
                    kept.push(e);
                } else {
                    st.dropped += 1;
                    if let Some(m) = self.metrics.get() {
                        m.dropped.inc();
                    }
                }
            }
            st.delivered += kept.len() as u64;
            if let Some(m) = self.metrics.get() {
                m.delivered.add(kept.len() as u64);
            }
            (kept, handlers)
        };
        // Invoke handlers outside the lock: they may send again.
        let n = due.len();
        for (env, handler) in due.into_iter().zip(handlers) {
            handler(env);
        }
        n
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.state.lock().in_flight.len()
    }

    /// Earliest due time among in-flight envelopes (virtual-clock servers
    /// fast-forward to this when otherwise idle).
    pub fn next_due(&self) -> Option<i64> {
        self.state.lock().in_flight.iter().map(|f| f.due).min()
    }

    /// (delivered, dropped) counters.
    pub fn stats(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.delivered, st.dropped)
    }

    /// Clock this network runs on.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;

    fn collector() -> (DeliveryHandler, Arc<PMutex<Vec<String>>>) {
        let sink = Arc::new(PMutex::new(Vec::new()));
        let s2 = Arc::clone(&sink);
        (
            Arc::new(move |env: Envelope| s2.lock().push(env.body)),
            sink,
        )
    }

    #[test]
    fn deliver_after_latency() {
        let clock = Clock::virtual_at(0);
        let net = Network::new(clock.clone(), 7);
        let (handler, sink) = collector();
        net.register("svc", handler);
        net.set_latency_ms(10);
        net.send(Envelope::new("svc", "me", "<m/>")).unwrap();
        assert_eq!(net.pump(), 0, "not due yet");
        clock.advance(10);
        assert_eq!(net.pump(), 1);
        assert_eq!(sink.lock().as_slice(), ["<m/>"]);
    }

    #[test]
    fn no_route_and_disconnect() {
        let net = Network::new(Clock::virtual_at(0), 7);
        let err = net.send(Envelope::new("ghost", "me", "<m/>")).unwrap_err();
        assert!(matches!(err, TransportError::NoRoute(_)));

        let (handler, _) = collector();
        net.register("svc", handler);
        net.disconnect("svc");
        let err = net.send(Envelope::new("svc", "me", "<m/>")).unwrap_err();
        assert_eq!(err.kind_element(), "disconnectedTransport");
        net.reconnect("svc");
        net.send(Envelope::new("svc", "me", "<m/>")).unwrap();
    }

    #[test]
    fn drop_rate_loses_messages() {
        let clock = Clock::virtual_at(0);
        let net = Network::new(clock.clone(), 42);
        let (handler, sink) = collector();
        net.register("svc", handler);
        net.set_drop_rate(0.5);
        for _ in 0..200 {
            net.send(Envelope::new("svc", "me", "<m/>")).unwrap();
        }
        clock.advance(5);
        net.pump();
        let got = sink.lock().len();
        assert!(got > 50 && got < 150, "~half should arrive, got {got}");
        let (_, dropped) = net.stats();
        assert_eq!(dropped as usize + got, 200);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed: u64| {
            let clock = Clock::virtual_at(0);
            let net = Network::new(clock.clone(), seed);
            let (handler, sink) = collector();
            net.register("svc", handler);
            net.set_drop_rate(0.3);
            for i in 0..50 {
                net.send(Envelope::new("svc", "me", format!("<m>{i}</m>")))
                    .unwrap();
            }
            clock.advance(5);
            net.pump();
            let delivered: Vec<String> = sink.lock().clone();
            delivered
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn handlers_can_reply() {
        // Request/response through the network (re-entrant send).
        let clock = Clock::virtual_at(0);
        let net = Arc::new(Network::new(clock.clone(), 7));
        let (client_handler, client_sink) = collector();
        net.register("client", client_handler);
        let net2 = Arc::clone(&net);
        net.register(
            "server",
            Arc::new(move |env: Envelope| {
                let reply = Envelope::new("client", "server", format!("<re>{}</re>", env.body));
                net2.send(reply).unwrap();
            }),
        );
        net.send(Envelope::new("server", "client", "<req/>"))
            .unwrap();
        clock.advance(1);
        net.pump();
        clock.advance(1);
        net.pump();
        assert_eq!(client_sink.lock().as_slice(), ["<re><req/></re>"]);
    }
}
