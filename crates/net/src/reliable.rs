//! Reliable messaging — the WS-ReliableMessaging stand-in (paper
//! Sec. 2.1.2: "using WS-ReliableMessaging policy wsrmpol.xml" and "the
//! reliable messaging extensions which support reliable sending across
//! system failures").
//!
//! Implements at-least-once delivery with duplicate suppression (therefore
//! effectively exactly-once at the application): the sender keeps
//! unacknowledged envelopes and retransmits them on every
//! [`ReliableSender::tick`] after the retry interval; the receiving side
//! wraps the application handler, acks every copy, and suppresses
//! duplicates by envelope uid.

use crate::clock::Clock;
use crate::envelope::Envelope;
use crate::error::TransportError;
use crate::network::{DeliveryHandler, Network};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// Sender-side state for one reliable channel (one outgoing gateway).
pub struct ReliableSender {
    net: Arc<Network>,
    clock: Clock,
    /// Address acks come back to.
    ack_addr: String,
    retry_interval_ms: i64,
    max_retries: u32,
    state: Mutex<SenderState>,
}

struct Pending {
    env: Envelope,
    last_sent: i64,
    attempts: u32,
}

#[derive(Default)]
struct SenderState {
    pending: Vec<Pending>,
    acked: HashSet<u64>,
    retransmissions: u64,
    /// Envelopes that exhausted their retries (picked up by the gateway to
    /// generate error messages).
    failed: Vec<(Envelope, TransportError)>,
}

impl ReliableSender {
    /// Create a sender; registers an ack endpoint at `ack_addr`.
    pub fn new(
        net: Arc<Network>,
        ack_addr: impl Into<String>,
        retry_interval_ms: i64,
        max_retries: u32,
    ) -> Arc<ReliableSender> {
        let ack_addr = ack_addr.into();
        let sender = Arc::new(ReliableSender {
            clock: net.clock().clone(),
            net,
            ack_addr: ack_addr.clone(),
            retry_interval_ms,
            max_retries,
            state: Mutex::new(SenderState::default()),
        });
        let weak = Arc::downgrade(&sender);
        sender.net.register(
            &ack_addr,
            Arc::new(move |env: Envelope| {
                if let Some(s) = weak.upgrade() {
                    if let Some(uid) = env.header("ack-of").and_then(|v| v.parse::<u64>().ok()) {
                        let mut st = s.state.lock();
                        st.acked.insert(uid);
                        st.pending.retain(|p| p.env.uid != uid);
                    }
                }
            }),
        );
        sender
    }

    /// Send reliably: the envelope is tracked until acknowledged.
    pub fn send(&self, mut env: Envelope) -> Result<(), TransportError> {
        env.headers.push(("reliable".into(), "true".into()));
        env.headers.push(("ack-to".into(), self.ack_addr.clone()));
        let now = self.clock.now();
        // First transmission: routing errors surface immediately; transient
        // loss is handled by retries.
        let result = self.net.send(env.clone());
        let mut st = self.state.lock();
        match result {
            Ok(()) => {
                st.pending.push(Pending {
                    env,
                    last_sent: now,
                    attempts: 1,
                });
                Ok(())
            }
            Err(e @ TransportError::NoRoute(_)) => Err(e),
            Err(_) => {
                // Disconnected: keep trying; the endpoint may come back.
                st.pending.push(Pending {
                    env,
                    last_sent: now,
                    attempts: 1,
                });
                Ok(())
            }
        }
    }

    /// Retransmit overdue envelopes; move the hopeless ones to the failed
    /// list. Call periodically (the Demaq scheduler's background task).
    pub fn tick(&self) {
        let now = self.clock.now();
        let mut st = self.state.lock();
        let mut keep = Vec::new();
        let pending = std::mem::take(&mut st.pending);
        for mut p in pending {
            if now - p.last_sent < self.retry_interval_ms {
                keep.push(p);
                continue;
            }
            if p.attempts > self.max_retries {
                st.failed
                    .push((p.env.clone(), TransportError::Timeout(p.env.to.clone())));
                continue;
            }
            p.attempts += 1;
            p.last_sent = now;
            st.retransmissions += 1;
            // Ignore transient errors; the next tick retries again.
            let _ = self.net.send(p.env.clone());
            keep.push(p);
        }
        st.pending = keep;
    }

    /// Take envelopes that exhausted retries (for error-queue routing).
    pub fn take_failed(&self) -> Vec<(Envelope, TransportError)> {
        std::mem::take(&mut self.state.lock().failed)
    }

    /// Unacknowledged count.
    pub fn pending(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// Earliest upcoming retransmission time, if anything is pending.
    pub fn next_retry_at(&self) -> Option<i64> {
        self.state
            .lock()
            .pending
            .iter()
            .map(|p| p.last_sent + self.retry_interval_ms)
            .min()
    }

    /// Total retransmissions performed.
    pub fn retransmissions(&self) -> u64 {
        self.state.lock().retransmissions
    }
}

/// Wrap an application handler with receiver-side reliability: every copy
/// is acknowledged, duplicates are suppressed by uid.
pub fn reliable_receiver(net: Arc<Network>, inner: DeliveryHandler) -> DeliveryHandler {
    let seen: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    Arc::new(move |env: Envelope| {
        if env.header("reliable") == Some("true") {
            if let Some(ack_to) = env.header("ack-to") {
                let ack = Envelope::new(ack_to.to_string(), env.to.clone(), "<ack/>")
                    .with_header("ack-of", env.uid.to_string());
                let _ = net.send(ack);
            }
            if !seen.lock().insert(env.uid) {
                return; // duplicate
            }
        }
        inner(env);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(
        drop_rate: f64,
        seed: u64,
    ) -> (
        Clock,
        Arc<Network>,
        Arc<ReliableSender>,
        Arc<Mutex<Vec<String>>>,
    ) {
        let clock = Clock::virtual_at(0);
        let net = Arc::new(Network::new(clock.clone(), seed));
        net.set_latency_ms(1);
        net.set_drop_rate(drop_rate);
        let sink = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&sink);
        let inner: DeliveryHandler = Arc::new(move |env: Envelope| s2.lock().push(env.body));
        let wrapped = reliable_receiver(Arc::clone(&net), inner);
        net.register("svc", wrapped);
        let sender = ReliableSender::new(Arc::clone(&net), "me/acks", 10, 20);
        (clock, net, sender, sink)
    }

    fn run(clock: &Clock, net: &Network, sender: &ReliableSender, steps: usize) {
        for _ in 0..steps {
            clock.advance(5);
            net.pump();
            sender.tick();
        }
    }

    #[test]
    fn clean_network_delivers_once() {
        let (clock, net, sender, sink) = setup(0.0, 1);
        sender.send(Envelope::new("svc", "me", "<m/>")).unwrap();
        run(&clock, &net, &sender, 5);
        assert_eq!(sink.lock().len(), 1);
        assert_eq!(sender.pending(), 0, "ack received");
        assert_eq!(sender.retransmissions(), 0);
    }

    #[test]
    fn lossy_network_retries_until_delivered_exactly_once() {
        let (clock, net, sender, sink) = setup(0.6, 99);
        for i in 0..20 {
            sender
                .send(Envelope::new("svc", "me", format!("<m>{i}</m>")))
                .unwrap();
        }
        run(&clock, &net, &sender, 200);
        let delivered = sink.lock().clone();
        assert_eq!(delivered.len(), 20, "all messages arrive exactly once");
        let unique: HashSet<_> = delivered.iter().collect();
        assert_eq!(unique.len(), 20, "no duplicates reach the application");
        assert!(sender.retransmissions() > 0, "loss forced retries");
        assert_eq!(sender.pending(), 0);
    }

    #[test]
    fn outage_then_recovery() {
        let (clock, net, sender, sink) = setup(0.0, 5);
        net.disconnect("svc");
        sender.send(Envelope::new("svc", "me", "<m/>")).unwrap();
        run(&clock, &net, &sender, 5);
        assert!(sink.lock().is_empty());
        net.reconnect("svc");
        run(&clock, &net, &sender, 10);
        assert_eq!(
            sink.lock().len(),
            1,
            "delivered after the endpoint came back"
        );
    }

    #[test]
    fn permanent_outage_exhausts_retries() {
        let (clock, net, sender, _sink) = setup(0.0, 5);
        net.disconnect("svc");
        sender.send(Envelope::new("svc", "me", "<m/>")).unwrap();
        run(&clock, &net, &sender, 100);
        let failed = sender.take_failed();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].1.kind_element(), "deliveryTimeout");
        assert_eq!(sender.pending(), 0);
    }

    #[test]
    fn no_route_fails_fast() {
        let (_, _, sender, _) = setup(0.0, 5);
        let err = sender
            .send(Envelope::new("ghost", "me", "<m/>"))
            .unwrap_err();
        assert!(matches!(err, TransportError::NoRoute(_)));
    }
}
