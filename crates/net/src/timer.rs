//! Timer wheel backing Demaq's time-based (echo) queues (paper
//! Sec. 2.1.3): "echo queues … enqueue any message sent to them into some
//! target queue after a timeout has expired."

use demaq_obs::Counter;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// A scheduled firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing<T> {
    pub at: i64,
    pub seq: u64,
    pub payload: T,
}

impl<T: Eq> PartialOrd for Firing<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Eq> Ord for Firing<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Min-heap of scheduled payloads ordered by firing time (FIFO within the
/// same instant).
pub struct TimerWheel<T: Eq> {
    inner: Mutex<WheelState<T>>,
    fired: OnceLock<Counter>,
}

struct WheelState<T: Eq> {
    heap: BinaryHeap<Reverse<Firing<T>>>,
    seq: u64,
}

impl<T: Eq> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel {
            inner: Mutex::new(WheelState {
                heap: BinaryHeap::new(),
                seq: 0,
            }),
            fired: OnceLock::new(),
        }
    }
}

impl<T: Eq> TimerWheel<T> {
    pub fn new() -> TimerWheel<T> {
        TimerWheel::default()
    }

    /// Count firings into `counter` (e.g. `demaq_net_timer_fired_total`).
    /// First attachment wins.
    pub fn attach_fire_counter(&self, counter: Counter) {
        let _ = self.fired.set(counter);
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn schedule(&self, at: i64, payload: T) {
        let mut st = self.inner.lock();
        let seq = st.seq;
        st.seq += 1;
        st.heap.push(Reverse(Firing { at, seq, payload }));
    }

    /// Pop every firing due at or before `now`, in firing order.
    pub fn due(&self, now: i64) -> Vec<Firing<T>> {
        let mut st = self.inner.lock();
        let mut out = Vec::new();
        while let Some(Reverse(f)) = st.heap.peek() {
            if f.at > now {
                break;
            }
            out.push(st.heap.pop().expect("peeked").0);
        }
        if !out.is_empty() {
            if let Some(c) = self.fired.get() {
                c.add(out.len() as u64);
            }
        }
        out
    }

    /// Time of the next firing, if any (lets the server fast-forward a
    /// virtual clock to the next interesting instant).
    pub fn next_due(&self) -> Option<i64> {
        self.inner.lock().heap.peek().map(|Reverse(f)| f.at)
    }

    /// Number of scheduled firings.
    pub fn len(&self) -> usize {
        self.inner.lock().heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let w = TimerWheel::new();
        w.schedule(30, "c");
        w.schedule(10, "a");
        w.schedule(20, "b");
        assert_eq!(w.next_due(), Some(10));
        let fired: Vec<_> = w.due(25).into_iter().map(|f| f.payload).collect();
        assert_eq!(fired, ["a", "b"]);
        assert_eq!(w.len(), 1);
        let fired: Vec<_> = w.due(100).into_iter().map(|f| f.payload).collect();
        assert_eq!(fired, ["c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn fifo_within_same_instant() {
        let w = TimerWheel::new();
        w.schedule(5, "first");
        w.schedule(5, "second");
        let fired: Vec<_> = w.due(5).into_iter().map(|f| f.payload).collect();
        assert_eq!(fired, ["first", "second"]);
    }

    #[test]
    fn nothing_due_before_time() {
        let w = TimerWheel::new();
        w.schedule(100, 1);
        assert!(w.due(99).is_empty());
        assert_eq!(w.len(), 1);
    }
}
