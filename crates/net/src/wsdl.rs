//! WSDL-lite: remote interface descriptions for gateway queues.
//!
//! The paper's outgoing gateways "import the supplier's interface
//! definition from a WSDL file" (Sec. 2.1.2). We substitute a compact XML
//! dialect describing ports and their operations' input/output elements:
//!
//! ```xml
//! <definitions service="supplier">
//!   <port name="CapacityRequestPort">
//!     <operation name="checkCapacity" input="plantCapacityInfo"
//!                output="capacityResult"/>
//!   </port>
//! </definitions>
//! ```
//!
//! A gateway bound to a port accepts exactly the messages whose root
//! element is some operation's input; anything else raises an
//! interface-mismatch error (one of the paper's message-related error
//! classes).

use crate::error::TransportError;
use demaq_xml::{parse, NodeRef};

/// One operation of a port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    pub name: String,
    /// Root element name of request messages.
    pub input: String,
    /// Root element name of response messages (empty for one-way).
    pub output: Option<String>,
}

/// A parsed interface (one port of one service).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WsdlInterface {
    pub service: String,
    pub port: String,
    pub operations: Vec<Operation>,
}

impl WsdlInterface {
    /// Parse the definitions document and select `port`.
    pub fn parse(wsdl_xml: &str, port: &str) -> Result<WsdlInterface, String> {
        let doc = parse(wsdl_xml).map_err(|e| format!("invalid WSDL: {e}"))?;
        let defs = doc.document_element().ok_or("missing <definitions> root")?;
        if defs.name().map(|q| q.local.as_str()) != Some("definitions") {
            return Err("root element must be <definitions>".into());
        }
        let service = defs.attribute("service").unwrap_or_default();
        let port_node = defs
            .children()
            .into_iter()
            .filter(|c| c.name().map(|q| q.local == "port").unwrap_or(false))
            .find(|c| c.attribute("name").as_deref() == Some(port))
            .ok_or_else(|| format!("port `{port}` not found"))?;
        let mut operations = Vec::new();
        for op in port_node.children() {
            if op.name().map(|q| q.local != "operation").unwrap_or(true) {
                continue;
            }
            let name = op.attribute("name").ok_or("operation without name")?;
            let input = op.attribute("input").ok_or("operation without input")?;
            let output = op.attribute("output").filter(|o| !o.is_empty());
            operations.push(Operation {
                name,
                input,
                output,
            });
        }
        if operations.is_empty() {
            return Err(format!("port `{port}` declares no operations"));
        }
        Ok(WsdlInterface {
            service,
            port: port.to_string(),
            operations,
        })
    }

    /// Check an outgoing message body against the declared operations.
    pub fn validate_outgoing(&self, body_root: &NodeRef) -> Result<&Operation, TransportError> {
        let root_name = body_root
            .name()
            .map(|q| q.local.clone())
            .unwrap_or_else(|| "#non-element".to_string());
        self.operations
            .iter()
            .find(|op| op.input == root_name)
            .ok_or_else(|| {
                TransportError::InterfaceMismatch(format!(
                    "element `{root_name}` matches no operation of port `{}` (expected one of: {})",
                    self.port,
                    self.operations
                        .iter()
                        .map(|o| o.input.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WSDL: &str = r#"
        <definitions service="supplier">
          <port name="CapacityRequestPort">
            <operation name="checkCapacity" input="plantCapacityInfo" output="capacityResult"/>
            <operation name="placeOrder" input="supplierOrder"/>
          </port>
          <port name="OtherPort">
            <operation name="noop" input="nothing"/>
          </port>
        </definitions>"#;

    #[test]
    fn parse_and_select_port() {
        let iface = WsdlInterface::parse(WSDL, "CapacityRequestPort").unwrap();
        assert_eq!(iface.service, "supplier");
        assert_eq!(iface.operations.len(), 2);
        assert_eq!(
            iface.operations[0].output.as_deref(),
            Some("capacityResult")
        );
        assert_eq!(iface.operations[1].output, None);
    }

    #[test]
    fn unknown_port_rejected() {
        assert!(WsdlInterface::parse(WSDL, "NoSuchPort").is_err());
    }

    #[test]
    fn validate_messages() {
        let iface = WsdlInterface::parse(WSDL, "CapacityRequestPort").unwrap();
        let ok =
            demaq_xml::parse("<plantCapacityInfo><requestID>1</requestID></plantCapacityInfo>")
                .unwrap();
        let op = iface
            .validate_outgoing(&ok.document_element().unwrap())
            .unwrap();
        assert_eq!(op.name, "checkCapacity");

        let bad = demaq_xml::parse("<unrelated/>").unwrap();
        let err = iface
            .validate_outgoing(&bad.document_element().unwrap())
            .unwrap_err();
        assert_eq!(err.kind_element(), "interfaceMismatch");
    }

    #[test]
    fn malformed_wsdl_rejected() {
        assert!(WsdlInterface::parse("<nope/>", "P").is_err());
        assert!(WsdlInterface::parse("not xml", "P").is_err());
        assert!(WsdlInterface::parse("<definitions><port name='P'/></definitions>", "P").is_err());
    }
}
