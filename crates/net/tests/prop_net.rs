//! Property-based tests for the transport substrate: reliable delivery is
//! exactly-once under arbitrary loss rates, timers fire in order, and the
//! network is deterministic per seed.

use demaq_net::reliable::{reliable_receiver, ReliableSender};
use demaq_net::{Clock, Envelope, Network, TimerWheel};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

fn run_reliable(drop_rate: f64, seed: u64, messages: usize) -> Vec<String> {
    let clock = Clock::virtual_at(0);
    let net = Arc::new(Network::new(clock.clone(), seed));
    net.set_latency_ms(1);
    net.set_drop_rate(drop_rate);
    let sink = Arc::new(Mutex::new(Vec::new()));
    let s2 = Arc::clone(&sink);
    let inner: demaq_net::DeliveryHandler = Arc::new(move |env: Envelope| s2.lock().push(env.body));
    net.register("svc", reliable_receiver(Arc::clone(&net), inner));
    let sender = ReliableSender::new(Arc::clone(&net), "me/acks", 10, 60);
    for i in 0..messages {
        sender
            .send(Envelope::new("svc", "me", format!("<m>{i}</m>")))
            .unwrap();
    }
    // Drive for long enough that 60 retries can happen.
    for _ in 0..800 {
        clock.advance(5);
        net.pump();
        sender.tick();
        if sender.pending() == 0 {
            break;
        }
    }
    let delivered: Vec<String> = sink.lock().clone();
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reliable_delivery_is_exactly_once(
        drop_rate in 0.0f64..0.7,
        seed in any::<u64>(),
        messages in 1usize..15,
    ) {
        let delivered = run_reliable(drop_rate, seed, messages);
        prop_assert_eq!(delivered.len(), messages, "every message arrives exactly once");
        let unique: HashSet<&String> = delivered.iter().collect();
        prop_assert_eq!(unique.len(), messages, "no duplicates reach the application");
    }

    #[test]
    fn network_is_deterministic_per_seed(seed in any::<u64>(), drop_rate in 0.0f64..0.9) {
        let run = |seed| {
            let clock = Clock::virtual_at(0);
            let net = Network::new(clock.clone(), seed);
            let sink = Arc::new(Mutex::new(Vec::new()));
            let s2 = Arc::clone(&sink);
            net.register("svc", Arc::new(move |env: Envelope| s2.lock().push(env.body)));
            net.set_drop_rate(drop_rate);
            for i in 0..40 {
                net.send(Envelope::new("svc", "me", format!("<m>{i}</m>"))).unwrap();
            }
            clock.advance(10);
            net.pump();
            let out: Vec<String> = sink.lock().clone();
            out
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn timer_wheel_fires_in_nondecreasing_time_order(
        schedule in proptest::collection::vec((0i64..1000, 0u32..100), 1..40),
        step in 1i64..200,
    ) {
        let wheel = TimerWheel::new();
        for (at, payload) in &schedule {
            wheel.schedule(*at, *payload);
        }
        let mut now = 0i64;
        let mut fired: Vec<(i64, u32)> = Vec::new();
        while !wheel.is_empty() {
            now += step;
            for f in wheel.due(now) {
                prop_assert!(f.at <= now);
                fired.push((f.at, f.payload));
            }
        }
        prop_assert_eq!(fired.len(), schedule.len());
        // Firing times are non-decreasing.
        for w in fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn clock_monotonic_under_advances(steps in proptest::collection::vec(0i64..10_000, 0..50)) {
        let clock = Clock::virtual_at(0);
        let mut last = clock.now();
        for s in steps {
            clock.advance(s);
            let now = clock.now();
            prop_assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn envelope_headers_lookup(k in "[a-z]{1,8}", v in "[ -~]{0,12}", other in "[A-Z]{1,8}") {
        let e = Envelope::new("to", "from", "<m/>").with_header(k.clone(), v.clone());
        prop_assert_eq!(e.header(&k), Some(v.as_str()));
        prop_assert_eq!(e.header(&other), None);
    }
}
