//! Fixed-bucket log2 latency histograms.
//!
//! Bucket `0` counts zero values; bucket `i` (1..=64) counts values in
//! `[2^(i-1), 2^i)`. Recording is two relaxed atomic adds; quantile
//! estimation scans the 65 buckets and interpolates at the geometric
//! midpoint of the winning bucket.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub(crate) const BUCKETS: usize = 65;

pub(crate) struct HistCell {
    pub(crate) buckets: [AtomicU64; BUCKETS],
    pub(crate) sum: AtomicU64,
    pub(crate) count: AtomicU64,
}

impl Default for HistCell {
    fn default() -> Self {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Handle to a histogram registered in a [`crate::Registry`] (or
/// standalone via [`Histogram::new`]). Cheap to clone; clones share cells.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) cell: Arc<HistCell>,
}

pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Upper bound (exclusive) of bucket `i`, saturating at `u64::MAX`.
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        1
    } else if i >= 64 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A standalone histogram (registry-managed ones come from
    /// [`crate::Registry::histogram`]).
    pub fn new() -> Histogram {
        Histogram {
            cell: Arc::new(HistCell::default()),
        }
    }

    /// Record one observation in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.cell.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.cell.sum.fetch_add(ns, Ordering::Relaxed);
        self.cell.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a [`Duration`].
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Time `f` and record its wall-clock duration.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }

    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    pub fn sum_ns(&self) -> u64 {
        self.cell.sum.load(Ordering::Relaxed)
    }

    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns() as f64 / n as f64
        }
    }

    /// Estimated quantile (`0.0..=1.0`) in nanoseconds: the geometric
    /// midpoint of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`. Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            cum += self.cell.buckets[i].load(Ordering::Relaxed);
            if cum >= target {
                if i == 0 {
                    return 0;
                }
                let lo = 1u64 << (i - 1);
                // Geometric midpoint lo*sqrt(2), cheap integer form.
                return lo + lo / 2;
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    pub fn p50(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile_ns(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Each power of two starts a new bucket; its predecessor ends one.
        for shift in 1..63 {
            let v = 1u64 << shift;
            assert_eq!(bucket_index(v), bucket_index(v - 1) + 1, "at 2^{shift}");
            assert_eq!(bucket_index(v), bucket_index(v + 1), "inside 2^{shift}");
        }
    }

    #[test]
    fn quantiles_of_uniform_spread() {
        let h = Histogram::new();
        // 100 values: 1..=100 — p50 lands in the bucket of ~50 (32..64),
        // p99 in the bucket of ~99 (64..128).
        for v in 1..=100u64 {
            h.record_ns(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum_ns(), 5050);
        let p50 = h.p50();
        assert!((32..=64).contains(&p50), "p50 estimate {p50}");
        let p99 = h.p99();
        assert!((64..=128).contains(&p99), "p99 estimate {p99}");
        assert!(h.p90() >= h.p50());
    }

    #[test]
    fn empty_and_zero() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        h.record_ns(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn single_huge_value() {
        let h = Histogram::new();
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.p50() > 1u64 << 62);
    }

    #[test]
    fn time_records_something() {
        let h = Histogram::new();
        let out = h.time(|| 7);
        assert_eq!(out, 7);
        assert_eq!(h.count(), 1);
    }
}
