//! `demaq-obs` — zero-dependency observability for the Demaq engine.
//!
//! Three pillars, all built on `std` atomics only:
//!
//! * [`Registry`] — named counters and gauges with label support
//!   (`queue="orders"`), plus named [`Histogram`]s, rendered to Prometheus
//!   text exposition format by [`Registry::render_text`].
//! * [`Histogram`] — fixed-bucket log2 latency histograms
//!   ([`Histogram::record_ns`]) with `p50`/`p90`/`p99` accessors.
//! * [`Tracer`] — a bounded ring buffer of [`TraceEvent`]s
//!   ([`Tracer::event`]) with span timing ([`Tracer::span`]) for rule
//!   evaluation and transactions.
//!
//! Metric naming scheme: `demaq_<subsystem>_<name>`, `_total` suffix for
//! counters, `_ns` suffix for nanosecond histograms (see DESIGN.md,
//! "Observability").
//!
//! Overhead: counter increments are one atomic add after a read-locked
//! hash lookup; hot paths should hold on to the returned [`Counter`] /
//! [`Histogram`] handles, which are `Arc`s into the registry and bypass
//! the lookup entirely.

mod histogram;
pub mod provenance;
mod registry;
mod tracer;

pub use histogram::Histogram;
pub use provenance::{Lineage, LineageRecord, ProvenanceIndex};
pub use registry::{Counter, Gauge, Registry};
pub use tracer::{Span, TraceCtx, TraceEvent, TraceFilter, Tracer};

use std::sync::Arc;

/// Bundle of one registry + one tracer, shared across a server and its
/// store, network, and gateways.
pub struct Obs {
    pub registry: Registry,
    pub tracer: Tracer,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("trace_capacity", &self.tracer.capacity())
            .finish_non_exhaustive()
    }
}

impl Obs {
    /// A fresh observability context with the default trace capacity.
    pub fn new() -> Arc<Obs> {
        Obs::with_trace_capacity(4096)
    }

    /// A fresh context with a custom trace ring size.
    pub fn with_trace_capacity(capacity: usize) -> Arc<Obs> {
        let obs = Arc::new(Obs {
            registry: Registry::new(),
            tracer: Tracer::new(capacity),
        });
        obs.tracer
            .attach_overwrite_counter(obs.registry.counter("demaq_obs_trace_overwrites_total"));
        obs
    }
}
