//! Bounded causal index over message lineage.
//!
//! Demaq's state *is* the message history (paper Sec. 2), so "where did
//! this message come from and what did it cause?" is a first-class query.
//! The engine records one [`LineageRecord`] per rule-driven enqueue; this
//! index keeps the records in a bounded, thread-safe structure supporting
//! ancestor/descendant walks. It is a cache over the store's durable
//! lineage (WAL `Lineage` records), rebuilt from the store after recovery
//! — eviction here never loses durable information.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// One causal edge: `msg` was created by `rule` firing on `parent`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageRecord {
    /// The created message.
    pub msg: u64,
    /// The message whose processing caused the enqueue; `None` for roots
    /// (external ingests and direct API enqueues).
    pub parent: Option<u64>,
    /// Root of the causal tree (`msg` itself for roots).
    pub root: u64,
    /// Rule whose firing produced the message, when known.
    pub rule: Option<String>,
    /// Queue the message was enqueued into.
    pub queue: String,
    /// WAL LSN of the durable lineage record, when the target queue is
    /// persistent.
    pub lsn: Option<u64>,
}

/// Full causal chain of one message as returned by
/// [`ProvenanceIndex::lineage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lineage {
    /// The queried message's own record (absent if never indexed).
    pub target: Option<LineageRecord>,
    /// Ancestors, nearest first (parent, grandparent, …, root).
    pub ancestors: Vec<LineageRecord>,
    /// Descendants in breadth-first order from the target.
    pub descendants: Vec<LineageRecord>,
}

#[derive(Default)]
struct Inner {
    records: HashMap<u64, LineageRecord>,
    children: HashMap<u64, Vec<u64>>,
    /// Insertion order for eviction.
    order: VecDeque<u64>,
    evicted: u64,
}

/// Thread-safe bounded index of lineage records.
pub struct ProvenanceIndex {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ProvenanceIndex {
    /// An index retaining at most `capacity` records (min 64), evicting
    /// oldest-inserted first.
    pub fn new(capacity: usize) -> ProvenanceIndex {
        ProvenanceIndex {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(64),
        }
    }

    /// Insert (or replace) the record for `rec.msg`.
    pub fn record(&self, rec: LineageRecord) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(old) = inner.records.insert(rec.msg, rec.clone()) {
            // Replacement: fix the old parent's adjacency if it changed.
            if old.parent != rec.parent {
                if let Some(p) = old.parent {
                    if let Some(kids) = inner.children.get_mut(&p) {
                        kids.retain(|k| *k != old.msg);
                    }
                }
            } else if let Some(p) = rec.parent {
                // Same parent: adjacency already present; skip re-adding.
                debug_assert!(inner
                    .children
                    .get(&p)
                    .is_some_and(|kids| kids.contains(&rec.msg)));
                return;
            } else {
                return;
            }
        } else {
            inner.order.push_back(rec.msg);
        }
        if let Some(p) = rec.parent {
            let kids = inner.children.entry(p).or_default();
            if !kids.contains(&rec.msg) {
                kids.push(rec.msg);
            }
        }
        while inner.order.len() > self.capacity {
            let Some(victim) = inner.order.pop_front() else {
                break;
            };
            if let Some(old) = inner.records.remove(&victim) {
                if let Some(p) = old.parent {
                    if let Some(kids) = inner.children.get_mut(&p) {
                        kids.retain(|k| *k != victim);
                    }
                }
            }
            inner.children.remove(&victim);
            inner.evicted += 1;
        }
    }

    /// The record for one message, if indexed.
    pub fn get(&self, msg: u64) -> Option<LineageRecord> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .records
            .get(&msg)
            .cloned()
    }

    /// Full ancestor + descendant chain of `msg`.
    pub fn lineage(&self, msg: u64) -> Lineage {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let target = inner.records.get(&msg).cloned();

        let mut ancestors = Vec::new();
        let mut cur = target.as_ref().and_then(|r| r.parent);
        // Guard against index corruption producing a parent cycle.
        let mut hops = 0usize;
        while let Some(p) = cur {
            if hops > inner.records.len() {
                break;
            }
            hops += 1;
            match inner.records.get(&p) {
                Some(rec) => {
                    cur = rec.parent;
                    ancestors.push(rec.clone());
                }
                None => break,
            }
        }

        let mut descendants = Vec::new();
        let mut frontier = VecDeque::new();
        frontier.push_back(msg);
        let mut seen = std::collections::HashSet::new();
        while let Some(m) = frontier.pop_front() {
            if let Some(kids) = inner.children.get(&m) {
                let mut kids = kids.clone();
                kids.sort_unstable();
                for k in kids {
                    if seen.insert(k) {
                        if let Some(rec) = inner.records.get(&k) {
                            descendants.push(rec.clone());
                        }
                        frontier.push_back(k);
                    }
                }
            }
        }

        Lineage {
            target,
            ancestors,
            descendants,
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .records
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records dropped by capacity eviction since creation.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(msg: u64, parent: Option<u64>, root: u64, rule: &str, queue: &str) -> LineageRecord {
        LineageRecord {
            msg,
            parent,
            root,
            rule: (!rule.is_empty()).then(|| rule.to_string()),
            queue: queue.to_string(),
            lsn: None,
        }
    }

    #[test]
    fn ancestor_and_descendant_walks() {
        let idx = ProvenanceIndex::new(64);
        // 1 -> 2 -> {3, 4}; 3 -> 5
        idx.record(rec(1, None, 1, "", "in"));
        idx.record(rec(2, Some(1), 1, "r1", "mid"));
        idx.record(rec(3, Some(2), 1, "r2", "a"));
        idx.record(rec(4, Some(2), 1, "r2", "b"));
        idx.record(rec(5, Some(3), 1, "r3", "out"));

        let l = idx.lineage(3);
        assert_eq!(l.target.as_ref().unwrap().rule.as_deref(), Some("r2"));
        let anc: Vec<u64> = l.ancestors.iter().map(|r| r.msg).collect();
        assert_eq!(anc, [2, 1]);
        let desc: Vec<u64> = l.descendants.iter().map(|r| r.msg).collect();
        assert_eq!(desc, [5]);

        let l1 = idx.lineage(1);
        assert!(l1.ancestors.is_empty());
        let desc: Vec<u64> = l1.descendants.iter().map(|r| r.msg).collect();
        assert_eq!(desc, [2, 3, 4, 5], "breadth-first from the root");
        assert!(l1.descendants.iter().all(|r| r.root == 1));
    }

    #[test]
    fn unknown_message_yields_empty_lineage() {
        let idx = ProvenanceIndex::new(64);
        let l = idx.lineage(42);
        assert!(l.target.is_none());
        assert!(l.ancestors.is_empty());
        assert!(l.descendants.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest_and_counts() {
        let idx = ProvenanceIndex::new(64); // min capacity
        for i in 0..100u64 {
            idx.record(rec(i, i.checked_sub(1), 0, "r", "q"));
        }
        assert_eq!(idx.len(), 64);
        assert_eq!(idx.evicted(), 36);
        assert!(idx.get(0).is_none(), "oldest evicted");
        assert!(idx.get(99).is_some(), "newest kept");
        // Walks stop cleanly at the eviction horizon.
        let l = idx.lineage(99);
        assert_eq!(l.ancestors.len(), 63);
    }

    #[test]
    fn reinsert_same_record_is_idempotent() {
        let idx = ProvenanceIndex::new(64);
        idx.record(rec(1, None, 1, "", "in"));
        idx.record(rec(2, Some(1), 1, "r", "out"));
        idx.record(rec(2, Some(1), 1, "r", "out"));
        let l = idx.lineage(1);
        assert_eq!(l.descendants.len(), 1);
        assert_eq!(idx.len(), 2);
    }
}
