//! Named series registry with label support and Prometheus text
//! exposition.
//!
//! Series handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s into
//! the registry: look them up once, then update lock-free. Lookups take a
//! read lock on the series map; first registration takes the write lock.

use crate::histogram::{bucket_upper, Histogram, BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// `name="value"` pairs identifying one series of a metric. Sorted by key
/// so label order at the call site doesn't split series.
pub type Labels = Vec<(String, String)>;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct SeriesKey {
    name: String,
    labels: Labels,
}

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut labels: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    SeriesKey {
        name: name.to_string(),
        labels,
    }
}

/// Monotonic counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Up/down gauge handle.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, v: i64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<SeriesKey, Counter>,
    gauges: BTreeMap<SeriesKey, Gauge>,
    histograms: BTreeMap<SeriesKey, Histogram>,
}

/// The metric registry.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Counter without labels.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Counter for one labeled series, e.g.
    /// `counter_with("demaq_engine_processed_total", &[("queue", "orders")])`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = series_key(name, labels);
        if let Some(c) = self.inner.read().unwrap().counters.get(&key) {
            return c.clone();
        }
        self.inner
            .write()
            .unwrap()
            .counters
            .entry(key)
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = series_key(name, labels);
        if let Some(g) = self.inner.read().unwrap().gauges.get(&key) {
            return g.clone();
        }
        self.inner
            .write()
            .unwrap()
            .gauges
            .entry(key)
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = series_key(name, labels);
        if let Some(h) = self.inner.read().unwrap().histograms.get(&key) {
            return h.clone();
        }
        self.inner
            .write()
            .unwrap()
            .histograms
            .entry(key)
            .or_default()
            .clone()
    }

    /// Sum of a counter across all labeled series with this name.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.inner
            .read()
            .unwrap()
            .counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, c)| c.get())
            .sum()
    }

    /// `(labels, value)` for every series of a counter name.
    pub fn counter_series(&self, name: &str) -> Vec<(Labels, u64)> {
        self.inner
            .read()
            .unwrap()
            .counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(k, c)| (k.labels.clone(), c.get()))
            .collect()
    }

    /// Render every registered series in Prometheus text exposition
    /// format, sorted by metric name then labels (stable for golden
    /// tests).
    pub fn render_text(&self) -> String {
        let inner = self.inner.read().unwrap();
        let mut out = String::new();

        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };

        for (key, c) in &inner.counters {
            type_line(&mut out, &key.name, "counter");
            let _ = writeln!(
                out,
                "{}{} {}",
                key.name,
                render_labels(&key.labels),
                c.get()
            );
        }
        for (key, g) in &inner.gauges {
            type_line(&mut out, &key.name, "gauge");
            let _ = writeln!(
                out,
                "{}{} {}",
                key.name,
                render_labels(&key.labels),
                g.get()
            );
        }
        for (key, h) in &inner.histograms {
            type_line(&mut out, &key.name, "histogram");
            let count = h.count();
            // Cumulative buckets; skip trailing empties, always end +Inf.
            let mut cum = 0u64;
            let mut highest = 0;
            for i in 0..BUCKETS {
                if h.cell.buckets[i].load(Ordering::Relaxed) > 0 {
                    highest = i;
                }
            }
            for i in 0..=highest {
                cum += h.cell.buckets[i].load(Ordering::Relaxed);
                let le = bucket_upper(i);
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    key.name,
                    render_labels_with(&key.labels, "le", &le.to_string()),
                    cum
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                key.name,
                render_labels_with(&key.labels, "le", "+Inf"),
                count
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                key.name,
                render_labels(&key.labels),
                h.sum_ns()
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                key.name,
                render_labels(&key.labels),
                count
            );
        }
        out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_labels(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn render_labels_with(labels: &Labels, extra_key: &str, extra_val: &str) -> String {
    let mut all = labels.clone();
    all.push((extra_key.to_string(), extra_val.to_string()));
    let body: Vec<String> = all
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_label_aggregation() {
        let r = Registry::new();
        r.counter_with("demaq_engine_processed_total", &[("queue", "orders")])
            .add(3);
        r.counter_with("demaq_engine_processed_total", &[("queue", "audit")])
            .add(2);
        // Same series regardless of label order at the call site.
        r.counter_with(
            "demaq_engine_processed_total",
            &[("rule", "r1"), ("queue", "orders")],
        )
        .inc();
        r.counter_with(
            "demaq_engine_processed_total",
            &[("queue", "orders"), ("rule", "r1")],
        )
        .inc();
        assert_eq!(r.counter_total("demaq_engine_processed_total"), 7);
        let series = r.counter_series("demaq_engine_processed_total");
        assert_eq!(series.len(), 3);
        let orders_r1 = series
            .iter()
            .find(|(l, _)| l.len() == 2)
            .expect("two-label series");
        assert_eq!(orders_r1.1, 2);
    }

    #[test]
    fn handles_share_state() {
        let r = Registry::new();
        let a = r.counter("demaq_x_total");
        let b = r.counter("demaq_x_total");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn gauge_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("demaq_engine_scheduler_depth");
        g.set(10);
        g.add(-3);
        assert_eq!(r.gauge("demaq_engine_scheduler_depth").get(), 7);
    }

    #[test]
    fn render_text_golden() {
        let r = Registry::new();
        r.counter_with("demaq_engine_processed_total", &[("queue", "orders")])
            .add(5);
        r.counter_with("demaq_engine_processed_total", &[("queue", "audit")])
            .add(1);
        r.gauge("demaq_engine_scheduler_depth").set(2);
        let h = r.histogram("demaq_engine_rule_eval_ns");
        h.record_ns(3); // bucket (2,4] -> le=4
        h.record_ns(3);
        h.record_ns(900); // bucket (512,1024] -> le=1024

        let expected = "\
# TYPE demaq_engine_processed_total counter
demaq_engine_processed_total{queue=\"audit\"} 1
demaq_engine_processed_total{queue=\"orders\"} 5
# TYPE demaq_engine_scheduler_depth gauge
demaq_engine_scheduler_depth 2
# TYPE demaq_engine_rule_eval_ns histogram
demaq_engine_rule_eval_ns_bucket{le=\"1\"} 0
demaq_engine_rule_eval_ns_bucket{le=\"2\"} 0
demaq_engine_rule_eval_ns_bucket{le=\"4\"} 2
demaq_engine_rule_eval_ns_bucket{le=\"8\"} 2
demaq_engine_rule_eval_ns_bucket{le=\"16\"} 2
demaq_engine_rule_eval_ns_bucket{le=\"32\"} 2
demaq_engine_rule_eval_ns_bucket{le=\"64\"} 2
demaq_engine_rule_eval_ns_bucket{le=\"128\"} 2
demaq_engine_rule_eval_ns_bucket{le=\"256\"} 2
demaq_engine_rule_eval_ns_bucket{le=\"512\"} 2
demaq_engine_rule_eval_ns_bucket{le=\"1024\"} 3
demaq_engine_rule_eval_ns_bucket{le=\"+Inf\"} 3
demaq_engine_rule_eval_ns_sum 906
demaq_engine_rule_eval_ns_count 3
";
        assert_eq!(r.render_text(), expected);
    }

    #[test]
    fn label_escaping() {
        let r = Registry::new();
        r.counter_with("demaq_t_total", &[("detail", "say \"hi\"\nnow")])
            .inc();
        let text = r.render_text();
        assert!(text.contains(r#"detail="say \"hi\"\nnow""#), "{text}");
    }
}
