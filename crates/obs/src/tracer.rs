//! Bounded ring-buffer event tracer with span timing.
//!
//! Writers claim a slot with one atomic `fetch_add` and only lock that
//! slot's own mutex (lock-free between writers of different slots); the
//! ring overwrites the oldest events once full. [`Tracer::tail`]
//! reassembles the most recent events in order.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One traced engine event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (monotonic; survives ring wraparound).
    pub seq: u64,
    /// Event kind, e.g. `"rule.eval"`, `"txn.commit"`, `"gateway.send"`.
    pub kind: &'static str,
    /// The message involved, if any.
    pub msg_id: Option<u64>,
    /// The queue involved, if any (empty string otherwise).
    pub queue: String,
    /// Free-form detail (rule name, error text, …).
    pub detail: String,
    /// Span duration in nanoseconds for timed events.
    pub dur_ns: Option<u64>,
}

impl TraceEvent {
    /// One-line rendering for logs and example output.
    pub fn render(&self) -> String {
        let mut out = format!("#{:<6} {:<18}", self.seq, self.kind);
        if !self.queue.is_empty() {
            out.push_str(&format!(" queue={}", self.queue));
        }
        if let Some(m) = self.msg_id {
            out.push_str(&format!(" msg={m}"));
        }
        if let Some(d) = self.dur_ns {
            out.push_str(&format!(" dur={d}ns"));
        }
        if !self.detail.is_empty() {
            out.push_str(&format!(" {}", self.detail));
        }
        out
    }
}

/// The ring-buffer tracer.
pub struct Tracer {
    slots: Vec<Mutex<Option<TraceEvent>>>,
    next: AtomicU64,
    enabled: AtomicBool,
}

impl Tracer {
    /// A tracer retaining the last `capacity` events (min 16).
    pub fn new(capacity: usize) -> Tracer {
        let capacity = capacity.max(16);
        Tracer {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Turn tracing off/on (events are dropped while disabled; counters
    /// and histograms are unaffected).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record an instantaneous event.
    pub fn event(&self, kind: &'static str, msg_id: Option<u64>, queue: &str, detail: &str) {
        self.record(kind, msg_id, queue, detail, None);
    }

    /// Start a timed span; the returned guard records the event (with
    /// duration) when dropped or [`Span::finish`]ed.
    pub fn span<'t>(
        &'t self,
        kind: &'static str,
        msg_id: Option<u64>,
        queue: &str,
        detail: &str,
    ) -> Span<'t> {
        Span {
            tracer: self,
            kind,
            msg_id,
            queue: queue.to_string(),
            detail: detail.to_string(),
            start: Instant::now(),
            done: false,
        }
    }

    fn record(
        &self,
        kind: &'static str,
        msg_id: Option<u64>,
        queue: &str,
        detail: &str,
        dur_ns: Option<u64>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot].lock().unwrap_or_else(|e| e.into_inner());
        match &mut *guard {
            // Reuse the overwritten event's string buffers: once the ring
            // has wrapped, recording allocates only when a queue/detail
            // outgrows the slot's existing capacity.
            Some(ev) => {
                ev.seq = seq;
                ev.kind = kind;
                ev.msg_id = msg_id;
                ev.queue.clear();
                ev.queue.push_str(queue);
                ev.detail.clear();
                ev.detail.push_str(detail);
                ev.dur_ns = dur_ns;
            }
            None => {
                *guard = Some(TraceEvent {
                    seq,
                    kind,
                    msg_id,
                    queue: queue.to_string(),
                    detail: detail.to_string(),
                    dur_ns,
                });
            }
        }
    }

    /// Total events ever recorded (including ones the ring has dropped).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        if events.len() > n {
            events.drain(..events.len() - n);
        }
        events
    }
}

/// Timed span guard from [`Tracer::span`].
pub struct Span<'t> {
    tracer: &'t Tracer,
    kind: &'static str,
    msg_id: Option<u64>,
    queue: String,
    detail: String,
    start: Instant,
    done: bool,
}

impl<'t> Span<'t> {
    /// Replace the detail before the span records (e.g. outcome).
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        self.detail = detail.into();
    }

    /// End the span now and record the event.
    pub fn finish(mut self) {
        self.record_now();
    }

    fn record_now(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let dur = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.tracer
            .record(self.kind, self.msg_id, &self.queue, &self.detail, Some(dur));
    }
}

impl<'t> Drop for Span<'t> {
    fn drop(&mut self) {
        self.record_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_returns_recent_in_order() {
        let t = Tracer::new(64);
        for i in 0..10u64 {
            t.event("step", Some(i), "q", "");
        }
        let tail = t.tail(3);
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [7, 8, 9]);
        assert_eq!(tail[2].msg_id, Some(9));
    }

    #[test]
    fn ring_wraparound_keeps_newest() {
        let t = Tracer::new(16); // minimum capacity
        for i in 0..100u64 {
            t.event("e", Some(i), "", "");
        }
        assert_eq!(t.recorded(), 100);
        let tail = t.tail(1000);
        assert_eq!(tail.len(), 16, "ring holds capacity events");
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (84..100).collect::<Vec<_>>());
    }

    #[test]
    fn span_records_duration() {
        let t = Tracer::new(16);
        {
            let mut s = t.span("txn.commit", Some(1), "orders", "");
            s.set_detail("ok");
        }
        let tail = t.tail(1);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].kind, "txn.commit");
        assert_eq!(tail[0].detail, "ok");
        assert!(tail[0].dur_ns.is_some());
    }

    #[test]
    fn disabled_drops_events() {
        let t = Tracer::new(16);
        t.set_enabled(false);
        t.event("e", None, "", "");
        assert_eq!(t.tail(10).len(), 0);
        t.set_enabled(true);
        t.event("e", None, "", "");
        assert_eq!(t.tail(10).len(), 1);
    }

    #[test]
    fn concurrent_writers_never_lose_the_ring() {
        use std::sync::Arc;
        let t = Arc::new(Tracer::new(128));
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..500u64 {
                        t.event("w", Some(w * 1000 + i), "q", "");
                    }
                });
            }
        });
        assert_eq!(t.recorded(), 2000);
        let tail = t.tail(10_000);
        assert_eq!(tail.len(), 128);
        // Sequence numbers are unique.
        let mut seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 128);
    }
}
