//! Bounded ring-buffer event tracer with span timing.
//!
//! Writers claim a slot with one atomic `fetch_add` and only lock that
//! slot's own mutex (lock-free between writers of different slots); the
//! ring overwrites the oldest events once full. [`Tracer::tail`]
//! reassembles the most recent events in order.
//!
//! Events optionally carry a *trace context*: a `trace_id` naming the
//! causal tree the event belongs to (the engine uses the root message id
//! of a processing cascade) and a `parent_span` naming the event's direct
//! cause (the parent message id). [`Tracer::tail_filtered`] selects the
//! recent events of one queue, one message, or one trace.

use crate::registry::Counter;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Trace context attached to an event: which causal tree it belongs to
/// and what directly caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Causal-tree identifier (engine: root message id of the cascade).
    pub trace_id: Option<u64>,
    /// Direct cause (engine: parent message id).
    pub parent_span: Option<u64>,
}

impl TraceCtx {
    /// The empty context (no causal information).
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: None,
        parent_span: None,
    };

    pub fn new(trace_id: Option<u64>, parent_span: Option<u64>) -> TraceCtx {
        TraceCtx {
            trace_id,
            parent_span,
        }
    }
}

/// One traced engine event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (monotonic; survives ring wraparound).
    pub seq: u64,
    /// Event kind, e.g. `"rule.eval"`, `"txn.commit"`, `"gateway.send"`.
    pub kind: &'static str,
    /// The message involved, if any.
    pub msg_id: Option<u64>,
    /// The queue involved, if any (empty string otherwise).
    pub queue: String,
    /// Free-form detail (rule name, error text, …).
    pub detail: String,
    /// Span duration in nanoseconds for timed events.
    pub dur_ns: Option<u64>,
    /// Causal tree this event belongs to, if known.
    pub trace_id: Option<u64>,
    /// Direct cause of this event, if known.
    pub parent_span: Option<u64>,
}

impl TraceEvent {
    /// One-line rendering for logs and example output.
    pub fn render(&self) -> String {
        let mut out = format!("#{:<6} {:<18}", self.seq, self.kind);
        if !self.queue.is_empty() {
            out.push_str(&format!(" queue={}", self.queue));
        }
        if let Some(m) = self.msg_id {
            out.push_str(&format!(" msg={m}"));
        }
        if let Some(t) = self.trace_id {
            out.push_str(&format!(" trace={t}"));
        }
        if let Some(p) = self.parent_span {
            out.push_str(&format!(" parent={p}"));
        }
        if let Some(d) = self.dur_ns {
            out.push_str(&format!(" dur={d}ns"));
        }
        if !self.detail.is_empty() {
            out.push_str(&format!(" {}", self.detail));
        }
        out
    }
}

/// The ring-buffer tracer.
pub struct Tracer {
    slots: Vec<Mutex<Option<TraceEvent>>>,
    next: AtomicU64,
    enabled: AtomicBool,
    /// Counts ring-slot overwrites (event loss under burst load); attached
    /// by the owning `Obs` so the loss is visible in the exposition as
    /// `demaq_obs_trace_overwrites_total`.
    overwrites: OnceLock<Counter>,
}

impl Tracer {
    /// A tracer retaining the last `capacity` events (min 16).
    pub fn new(capacity: usize) -> Tracer {
        let capacity = capacity.max(16);
        Tracer {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            overwrites: OnceLock::new(),
        }
    }

    /// Attach the counter incremented whenever a recorded event evicts an
    /// older one from the ring. Only the first attach wins.
    pub fn attach_overwrite_counter(&self, c: Counter) {
        let _ = self.overwrites.set(c);
    }

    /// Turn tracing off/on (events are dropped while disabled; counters
    /// and histograms are unaffected).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record an instantaneous event with no trace context.
    pub fn event(&self, kind: &'static str, msg_id: Option<u64>, queue: &str, detail: &str) {
        self.record(kind, msg_id, queue, detail, None, TraceCtx::NONE);
    }

    /// Record an instantaneous event carrying a trace context.
    pub fn event_ctx(
        &self,
        kind: &'static str,
        msg_id: Option<u64>,
        queue: &str,
        detail: &str,
        ctx: TraceCtx,
    ) {
        self.record(kind, msg_id, queue, detail, None, ctx);
    }

    /// Start a timed span; the returned guard records the event (with
    /// duration) when dropped or [`Span::finish`]ed.
    pub fn span<'t>(
        &'t self,
        kind: &'static str,
        msg_id: Option<u64>,
        queue: &str,
        detail: &str,
    ) -> Span<'t> {
        Span {
            tracer: self,
            kind,
            msg_id,
            queue: queue.to_string(),
            detail: detail.to_string(),
            start: Instant::now(),
            done: false,
            ctx: TraceCtx::NONE,
        }
    }

    fn record(
        &self,
        kind: &'static str,
        msg_id: Option<u64>,
        queue: &str,
        detail: &str,
        dur_ns: Option<u64>,
        ctx: TraceCtx,
    ) {
        if !self.is_enabled() {
            return;
        }
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot].lock().unwrap_or_else(|e| e.into_inner());
        match &mut *guard {
            // Reuse the overwritten event's string buffers: once the ring
            // has wrapped, recording allocates only when a queue/detail
            // outgrows the slot's existing capacity.
            Some(ev) => {
                if let Some(c) = self.overwrites.get() {
                    c.inc();
                }
                ev.seq = seq;
                ev.kind = kind;
                ev.msg_id = msg_id;
                ev.queue.clear();
                ev.queue.push_str(queue);
                ev.detail.clear();
                ev.detail.push_str(detail);
                ev.dur_ns = dur_ns;
                ev.trace_id = ctx.trace_id;
                ev.parent_span = ctx.parent_span;
            }
            None => {
                *guard = Some(TraceEvent {
                    seq,
                    kind,
                    msg_id,
                    queue: queue.to_string(),
                    detail: detail.to_string(),
                    dur_ns,
                    trace_id: ctx.trace_id,
                    parent_span: ctx.parent_span,
                });
            }
        }
    }

    /// Total events ever recorded (including ones the ring has dropped).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        self.tail_filtered(n, &TraceFilter::default())
    }

    /// The most recent `n` events matching `filter`, oldest first. All
    /// filter fields are conjunctive; `msg_id` matches an event whose
    /// `msg_id` *or* `parent_span` names the message, so a message's
    /// causes and effects both surface.
    pub fn tail_filtered(&self, n: usize, filter: &TraceFilter) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .filter(|ev| filter.matches(ev))
            .collect();
        events.sort_by_key(|e| e.seq);
        if events.len() > n {
            events.drain(..events.len() - n);
        }
        events
    }
}

/// Selection predicate for [`Tracer::tail_filtered`]; unset fields match
/// everything.
#[derive(Debug, Clone, Default)]
pub struct TraceFilter {
    /// Only events on this queue.
    pub queue: Option<String>,
    /// Only events whose `msg_id` or `parent_span` is this message.
    pub msg_id: Option<u64>,
    /// Only events in this causal tree.
    pub trace_id: Option<u64>,
}

impl TraceFilter {
    fn matches(&self, ev: &TraceEvent) -> bool {
        if let Some(q) = &self.queue {
            if ev.queue != *q {
                return false;
            }
        }
        if let Some(m) = self.msg_id {
            if ev.msg_id != Some(m) && ev.parent_span != Some(m) {
                return false;
            }
        }
        if let Some(t) = self.trace_id {
            if ev.trace_id != Some(t) {
                return false;
            }
        }
        true
    }
}

/// Timed span guard from [`Tracer::span`].
pub struct Span<'t> {
    tracer: &'t Tracer,
    kind: &'static str,
    msg_id: Option<u64>,
    queue: String,
    detail: String,
    start: Instant,
    done: bool,
    ctx: TraceCtx,
}

impl<'t> Span<'t> {
    /// Replace the detail before the span records (e.g. outcome).
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        self.detail = detail.into();
    }

    /// Attach a trace context to the event this span will record.
    pub fn set_ctx(&mut self, ctx: TraceCtx) {
        self.ctx = ctx;
    }

    /// End the span now and record the event.
    pub fn finish(mut self) {
        self.record_now();
    }

    fn record_now(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let dur = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.tracer.record(
            self.kind,
            self.msg_id,
            &self.queue,
            &self.detail,
            Some(dur),
            self.ctx,
        );
    }
}

impl<'t> Drop for Span<'t> {
    fn drop(&mut self) {
        self.record_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_returns_recent_in_order() {
        let t = Tracer::new(64);
        for i in 0..10u64 {
            t.event("step", Some(i), "q", "");
        }
        let tail = t.tail(3);
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [7, 8, 9]);
        assert_eq!(tail[2].msg_id, Some(9));
    }

    #[test]
    fn ring_wraparound_keeps_newest() {
        let t = Tracer::new(16); // minimum capacity
        for i in 0..100u64 {
            t.event("e", Some(i), "", "");
        }
        assert_eq!(t.recorded(), 100);
        let tail = t.tail(1000);
        assert_eq!(tail.len(), 16, "ring holds capacity events");
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (84..100).collect::<Vec<_>>());
    }

    #[test]
    fn span_records_duration() {
        let t = Tracer::new(16);
        {
            let mut s = t.span("txn.commit", Some(1), "orders", "");
            s.set_detail("ok");
        }
        let tail = t.tail(1);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].kind, "txn.commit");
        assert_eq!(tail[0].detail, "ok");
        assert!(tail[0].dur_ns.is_some());
    }

    #[test]
    fn disabled_drops_events() {
        let t = Tracer::new(16);
        t.set_enabled(false);
        t.event("e", None, "", "");
        assert_eq!(t.tail(10).len(), 0);
        t.set_enabled(true);
        t.event("e", None, "", "");
        assert_eq!(t.tail(10).len(), 1);
    }

    #[test]
    fn concurrent_writers_never_lose_the_ring() {
        use std::sync::Arc;
        let t = Arc::new(Tracer::new(128));
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..500u64 {
                        t.event("w", Some(w * 1000 + i), "q", "");
                    }
                });
            }
        });
        assert_eq!(t.recorded(), 2000);
        let tail = t.tail(10_000);
        assert_eq!(tail.len(), 128);
        // Sequence numbers are unique.
        let mut seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 128);
    }

    #[test]
    fn racing_writers_tail_is_deterministically_seq_ordered() {
        // Regression: `tail` must order by the monotonic sequence number,
        // never by wall-clock or slot position — two threads racing into
        // adjacent slots at the same tick must come back in claim order,
        // and repeated `tail` calls over an unchanged ring must agree.
        use std::sync::Arc;
        let t = Arc::new(Tracer::new(64));
        std::thread::scope(|s| {
            for w in 0..2u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        t.event("race", Some(w * 10_000 + i), "q", "");
                    }
                });
            }
        });
        let a = t.tail(64);
        let b = t.tail(64);
        assert_eq!(a, b, "tail over an unchanged ring must be deterministic");
        let seqs: Vec<u64> = a.iter().map(|e| e.seq).collect();
        assert!(
            seqs.windows(2).all(|w| w[0] + 1 == w[1]),
            "tail must be contiguous ascending seqs: {seqs:?}"
        );
        assert_eq!(*seqs.last().unwrap(), t.recorded() - 1);
    }

    #[test]
    fn overwrite_counter_counts_ring_loss() {
        let t = Tracer::new(16);
        let c = {
            let r = crate::Registry::new();
            r.counter("demaq_obs_trace_overwrites_total")
        };
        t.attach_overwrite_counter(c.clone());
        for i in 0..40u64 {
            t.event("e", Some(i), "", "");
        }
        // 40 events into 16 slots: 24 overwrites.
        assert_eq!(c.get(), 24);
    }

    #[test]
    fn trace_ctx_roundtrips_and_filters() {
        let t = Tracer::new(64);
        t.event_ctx("a", Some(1), "q1", "", TraceCtx::new(Some(1), None));
        t.event_ctx("b", Some(2), "q2", "", TraceCtx::new(Some(1), Some(1)));
        t.event_ctx("c", Some(3), "q2", "", TraceCtx::new(Some(3), None));
        {
            let mut s = t.span("d", Some(4), "q3", "");
            s.set_ctx(TraceCtx::new(Some(1), Some(2)));
        }

        let by_trace = t.tail_filtered(
            10,
            &TraceFilter {
                trace_id: Some(1),
                ..Default::default()
            },
        );
        let kinds: Vec<&str> = by_trace.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["a", "b", "d"]);
        assert_eq!(by_trace[2].parent_span, Some(2));

        let by_queue = t.tail_filtered(
            10,
            &TraceFilter {
                queue: Some("q2".into()),
                ..Default::default()
            },
        );
        assert_eq!(by_queue.len(), 2);

        // msg filter surfaces both the message's own events and events it
        // caused (parent_span hits).
        let by_msg = t.tail_filtered(
            10,
            &TraceFilter {
                msg_id: Some(2),
                ..Default::default()
            },
        );
        let kinds: Vec<&str> = by_msg.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["b", "d"]);
    }
}
