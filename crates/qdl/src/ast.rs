//! Abstract syntax of Demaq application programs.

use demaq_xquery::Expr;

/// The kind of a queue (paper Sec. 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Local message storage.
    Basic,
    /// Receives messages from remote endpoints.
    IncomingGateway,
    /// Messages placed here are sent to a remote endpoint.
    OutgoingGateway,
    /// Time-based queue: re-enqueues messages into a target queue after a
    /// timeout (Sec. 2.1.3).
    Echo,
}

/// `create queue …`.
#[derive(Debug, Clone)]
pub struct QueueDecl {
    pub name: String,
    pub kind: QueueKind,
    pub persistent: bool,
    /// Scheduler priority; higher is processed first. Default 0.
    pub priority: i32,
    /// Name of a schema all messages must conform to.
    pub schema: Option<String>,
    /// Queue-level error queue (Sec. 3.6).
    pub error_queue: Option<String>,
    /// `interface FILE port PORT` (outgoing gateways).
    pub interface: Option<(String, String)>,
    /// `using EXT policy FILE` pairs (WS-ReliableMessaging, WS-Security…).
    pub extensions: Vec<(String, String)>,
    /// Remote endpoint address this gateway binds to (reproduction
    /// extension; the paper resolves this from the WSDL).
    pub endpoint: Option<String>,
}

/// How a property obtains its value (paper Sec. 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropKind {
    /// May be set explicitly at enqueue; bindings give defaults.
    Explicit,
    /// Propagates from the triggering message unless explicitly set.
    Inherited,
    /// Always computed; explicit values are rejected.
    Fixed,
}

/// One `queue a, b value Expr` group of a property declaration.
#[derive(Debug, Clone)]
pub struct PropBinding {
    pub queues: Vec<String>,
    pub value: Expr,
    /// Original expression text (diagnostics).
    pub value_src: String,
}

/// `create property …`.
#[derive(Debug, Clone)]
pub struct PropertyDecl {
    pub name: String,
    /// `xs:` type name, e.g. `xs:boolean`.
    pub ty: String,
    pub kind: PropKind,
    pub bindings: Vec<PropBinding>,
}

/// `create slicing NAME on PROPERTY` (paper Sec. 2.3.1).
#[derive(Debug, Clone)]
pub struct SlicingDecl {
    pub name: String,
    pub property: String,
}

/// `create rule NAME for TARGET [errorqueue Q] Body` (paper Sec. 3.3).
#[derive(Debug, Clone)]
pub struct RuleDecl {
    pub name: String,
    /// A queue name or a slicing name.
    pub target: String,
    pub error_queue: Option<String>,
    pub body: Expr,
    /// Original body text (diagnostics, recompilation).
    pub body_src: String,
}

/// A complete parsed application.
#[derive(Debug, Clone, Default)]
pub struct AppSpec {
    pub queues: Vec<QueueDecl>,
    pub properties: Vec<PropertyDecl>,
    pub slicings: Vec<SlicingDecl>,
    pub rules: Vec<RuleDecl>,
    /// Inline schemas: name -> schema-lite source.
    pub schemas: Vec<(String, String)>,
    /// System-level error queue (Sec. 3.6).
    pub system_error_queue: Option<String>,
}

impl AppSpec {
    pub fn queue(&self, name: &str) -> Option<&QueueDecl> {
        self.queues.iter().find(|q| q.name == name)
    }

    pub fn slicing(&self, name: &str) -> Option<&SlicingDecl> {
        self.slicings.iter().find(|s| s.name == name)
    }

    pub fn property(&self, name: &str) -> Option<&PropertyDecl> {
        self.properties.iter().find(|p| p.name == name)
    }

    /// Rules attached to a target (queue or slicing), in program order —
    /// evaluation order follows definition order.
    pub fn rules_for(&self, target: &str) -> Vec<&RuleDecl> {
        self.rules.iter().filter(|r| r.target == target).collect()
    }
}
