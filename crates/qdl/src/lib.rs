//! # demaq-qdl
//!
//! Parser for Demaq application programs: the **Queue Definition Language**
//! (QDL, paper Sec. 2) and the rule-definition statements of the **Queue
//! Manipulation Language** (QML, Sec. 3.3). A program is a sequence of
//! statements:
//!
//! ```text
//! create queue finance kind basic mode persistent
//! create queue supplier kind outgoingGateway mode persistent
//!     interface supplier.wsdl port CapacityRequestPort
//!     using WS-ReliableMessaging policy wsrmpol.xml
//!     endpoint "http://ws.chem.invalid/"
//! create queue echoQueue kind echo mode persistent
//! create property orderID as xs:string fixed
//!     queue order value //orderID
//!     queue confirmation value /confirmedOrder/ID
//! create slicing orders on orderID
//! create rule newOfferRequest for crm
//!     if (//offerRequest) then … QML body (an updating expression) …
//! set errorqueue systemErrors
//! create schema order-schema { root order … }
//! ```
//!
//! `endpoint` (gateway address binding), `priority`, `set errorqueue`, and
//! inline `create schema { … }` are reproduction extensions — the paper
//! names these capabilities (priorities in Sec. 2.1.1, error-queue levels
//! in Sec. 3.6, queue schemas in Sec. 2.1.1) without fixing their concrete
//! syntax. Rule bodies are parsed by `demaq-xquery` and must be updating
//! expressions.

pub mod ast;
pub mod parser;
pub mod validate;

pub use ast::{
    AppSpec, PropBinding, PropKind, PropertyDecl, QueueDecl, QueueKind, RuleDecl, SlicingDecl,
};
pub use parser::{parse_program, QdlError};
pub use validate::validate;
