//! Statement-level parser for Demaq programs.
//!
//! QDL statements are keyword-driven; embedded expressions (property
//! values, rule bodies) are handed to the XQuery parser via
//! [`demaq_xquery::parse_expr_prefix`], which consumes exactly one
//! `ExprSingle` and reports how much input it used.

use crate::ast::*;
use demaq_xquery::ast::{Axis, NodeTest};
use demaq_xquery::{parse_expr_prefix, Expr};
use std::fmt;

/// Parse error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QdlError {
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for QdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QDL error at line {}: {}", self.line, self.msg)
    }
}
impl std::error::Error for QdlError {}

struct Scanner<'a> {
    src: &'a str,
    chars: Vec<char>,
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Scanner<'a> {
        Scanner {
            src,
            chars: src.chars().collect(),
            pos: 0,
        }
    }

    fn line(&self) -> u32 {
        1 + self.chars[..self.pos.min(self.chars.len())]
            .iter()
            .filter(|&&c| c == '\n')
            .count() as u32
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, QdlError> {
        Err(QdlError {
            line: self.line(),
            msg: msg.into(),
        })
    }

    fn skip_ws(&mut self) {
        loop {
            while matches!(self.chars.get(self.pos), Some(' ' | '\t' | '\r' | '\n')) {
                self.pos += 1;
            }
            // XQuery-style comments are allowed between statements too.
            if self.chars.get(self.pos) == Some(&'(') && self.chars.get(self.pos + 1) == Some(&':')
            {
                let mut depth = 1;
                self.pos += 2;
                while depth > 0 && self.pos < self.chars.len() {
                    if self.chars.get(self.pos) == Some(&'(')
                        && self.chars.get(self.pos + 1) == Some(&':')
                    {
                        depth += 1;
                        self.pos += 2;
                    } else if self.chars.get(self.pos) == Some(&':')
                        && self.chars.get(self.pos + 1) == Some(&')')
                    {
                        depth -= 1;
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn at_eof(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.chars.len()
    }

    /// Peek the next bare word without consuming.
    fn peek_word(&mut self) -> Option<String> {
        self.skip_ws();
        let mut end = self.pos;
        while let Some(&c) = self.chars.get(end) {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                end += 1;
            } else {
                break;
            }
        }
        if end == self.pos {
            None
        } else {
            Some(self.chars[self.pos..end].iter().collect())
        }
    }

    /// Consume the next bare word.
    fn word(&mut self) -> Result<String, QdlError> {
        match self.peek_word() {
            Some(w) => {
                self.pos += w.chars().count();
                Ok(w)
            }
            None => self.err("expected a word"),
        }
    }

    /// Consume a word or a quoted string.
    fn word_or_string(&mut self) -> Result<String, QdlError> {
        self.skip_ws();
        match self.chars.get(self.pos) {
            Some(&q @ ('"' | '\'')) => {
                self.pos += 1;
                let start = self.pos;
                while let Some(&c) = self.chars.get(self.pos) {
                    if c == q {
                        let s: String = self.chars[start..self.pos].iter().collect();
                        self.pos += 1;
                        return Ok(s);
                    }
                    self.pos += 1;
                }
                self.err("unterminated string")
            }
            _ => self.word(),
        }
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.peek_word().as_deref() == Some(w) {
            self.pos += w.chars().count();
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, w: &str) -> Result<(), QdlError> {
        if self.eat_word(w) {
            Ok(())
        } else {
            let got = self.peek_word().unwrap_or_else(|| "<end>".into());
            self.err(format!("expected `{w}`, found `{got}`"))
        }
    }

    fn eat_char(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.chars.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Byte offset corresponding to the current char position.
    fn byte_pos(&self) -> usize {
        self.chars[..self.pos].iter().map(|c| c.len_utf8()).sum()
    }

    /// Parse one embedded `ExprSingle` starting here.
    fn embedded_expr(&mut self) -> Result<(Expr, String), QdlError> {
        self.skip_ws();
        let rest = &self.src[self.byte_pos()..];
        match parse_expr_prefix(rest) {
            Ok((expr, consumed_chars)) => {
                let src: String = self.chars[self.pos..self.pos + consumed_chars]
                    .iter()
                    .collect();
                self.pos += consumed_chars;
                Ok((expr, src.trim().to_string()))
            }
            Err(e) => self.err(format!("invalid expression: {e}")),
        }
    }
}

/// Interpret a bare `true`/`false` name-test path as a boolean literal —
/// the paper writes `value false` for a boolean property default, which in
/// strict XQuery would be a child-element test.
fn normalize_value_expr(expr: Expr) -> Expr {
    if let Expr::Path { root: false, steps } = &expr {
        if let [Expr::Step {
            axis: Axis::Child,
            test: NodeTest::Name(q),
            predicates,
        }] = steps.as_slice()
        {
            if predicates.is_empty() {
                match q.local.as_str() {
                    "true" => {
                        return Expr::FunctionCall {
                            name: "true".into(),
                            args: vec![],
                        }
                    }
                    "false" => {
                        return Expr::FunctionCall {
                            name: "false".into(),
                            args: vec![],
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    expr
}

/// Parse a full Demaq program into an [`AppSpec`]. Performs syntax-level
/// checks only; call [`crate::validate`] for semantic validation.
pub fn parse_program(src: &str) -> Result<AppSpec, QdlError> {
    let mut sc = Scanner::new(src);
    let mut app = AppSpec::default();
    while !sc.at_eof() {
        let kw = sc.word()?;
        match kw.as_str() {
            "create" => {
                let what = sc.word()?;
                match what.as_str() {
                    "queue" => app.queues.push(parse_queue(&mut sc)?),
                    "property" => app.properties.push(parse_property(&mut sc)?),
                    "slicing" => app.slicings.push(parse_slicing(&mut sc)?),
                    "rule" => app.rules.push(parse_rule(&mut sc)?),
                    "schema" => {
                        let (name, body) = parse_schema(&mut sc)?;
                        app.schemas.push((name, body));
                    }
                    other => return sc.err(format!("cannot create `{other}`")),
                }
            }
            "set" => {
                sc.expect_word("errorqueue")?;
                let q = sc.word()?;
                app.system_error_queue = Some(q);
            }
            other => return sc.err(format!("expected a statement, found `{other}`")),
        }
    }
    Ok(app)
}

fn parse_queue(sc: &mut Scanner) -> Result<QueueDecl, QdlError> {
    let name = sc.word()?;
    let mut decl = QueueDecl {
        name,
        kind: QueueKind::Basic,
        persistent: true,
        priority: 0,
        schema: None,
        error_queue: None,
        interface: None,
        extensions: Vec::new(),
        endpoint: None,
    };
    let mut saw_kind = false;
    let mut saw_mode = false;
    while let Some(w) = sc.peek_word() {
        match w.as_str() {
            "kind" => {
                sc.expect_word("kind")?;
                let k = sc.word()?;
                decl.kind = match k.as_str() {
                    "basic" => QueueKind::Basic,
                    "incomingGateway" => QueueKind::IncomingGateway,
                    "outgoingGateway" => QueueKind::OutgoingGateway,
                    "echo" => QueueKind::Echo,
                    other => return sc.err(format!("unknown queue kind `{other}`")),
                };
                saw_kind = true;
            }
            "mode" => {
                sc.expect_word("mode")?;
                let m = sc.word()?;
                decl.persistent = match m.as_str() {
                    "persistent" => true,
                    "transient" => false,
                    other => return sc.err(format!("unknown queue mode `{other}`")),
                };
                saw_mode = true;
            }
            "priority" => {
                sc.expect_word("priority")?;
                let p = sc.word()?;
                decl.priority = p.parse().map_err(|_| QdlError {
                    line: sc.line(),
                    msg: format!("bad priority `{p}`"),
                })?;
            }
            "schema" => {
                sc.expect_word("schema")?;
                decl.schema = Some(sc.word()?);
            }
            "errorqueue" => {
                sc.expect_word("errorqueue")?;
                decl.error_queue = Some(sc.word()?);
            }
            "interface" => {
                sc.expect_word("interface")?;
                let file = sc.word_or_string()?;
                sc.expect_word("port")?;
                let port = sc.word()?;
                decl.interface = Some((file, port));
            }
            "using" => {
                sc.expect_word("using")?;
                let ext = sc.word()?;
                sc.expect_word("policy")?;
                let policy = sc.word_or_string()?;
                decl.extensions.push((ext, policy));
            }
            "endpoint" => {
                sc.expect_word("endpoint")?;
                decl.endpoint = Some(sc.word_or_string()?);
            }
            _ => break,
        }
    }
    if !saw_kind {
        return sc.err(format!("queue `{}` is missing a `kind` clause", decl.name));
    }
    if !saw_mode {
        return sc.err(format!("queue `{}` is missing a `mode` clause", decl.name));
    }
    Ok(decl)
}

fn parse_property(sc: &mut Scanner) -> Result<PropertyDecl, QdlError> {
    let name = sc.word()?;
    sc.expect_word("as")?;
    let ty = sc.word()?;
    if !ty.starts_with("xs:") {
        return sc.err(format!("property type must be an xs: type, got `{ty}`"));
    }
    let kind = if sc.eat_word("inherited") {
        PropKind::Inherited
    } else if sc.eat_word("fixed") {
        PropKind::Fixed
    } else {
        PropKind::Explicit
    };
    let mut bindings = Vec::new();
    while sc.peek_word().as_deref() == Some("queue") {
        sc.expect_word("queue")?;
        let mut queues = vec![sc.word()?];
        while sc.eat_char(',') {
            queues.push(sc.word()?);
        }
        sc.expect_word("value")?;
        let (expr, src) = sc.embedded_expr()?;
        bindings.push(PropBinding {
            queues,
            value: normalize_value_expr(expr),
            value_src: src,
        });
    }
    Ok(PropertyDecl {
        name,
        ty,
        kind,
        bindings,
    })
}

fn parse_slicing(sc: &mut Scanner) -> Result<SlicingDecl, QdlError> {
    let name = sc.word()?;
    sc.expect_word("on")?;
    let property = sc.word()?;
    Ok(SlicingDecl { name, property })
}

fn parse_rule(sc: &mut Scanner) -> Result<RuleDecl, QdlError> {
    let name = sc.word()?;
    sc.expect_word("for")?;
    let target = sc.word()?;
    let error_queue = if sc.eat_word("errorqueue") {
        Some(sc.word()?)
    } else {
        None
    };
    let (body, body_src) = sc.embedded_expr()?;
    if !body.is_updating() {
        return sc.err(format!(
            "rule `{name}` body must be an updating expression (use `do enqueue` / `do reset`)"
        ));
    }
    Ok(RuleDecl {
        name,
        target,
        error_queue,
        body,
        body_src,
    })
}

fn parse_schema(sc: &mut Scanner) -> Result<(String, String), QdlError> {
    let name = sc.word()?;
    sc.skip_ws();
    if !sc.eat_char('{') {
        return sc.err("expected `{` after schema name");
    }
    let start = sc.pos;
    let mut depth = 1;
    while depth > 0 {
        match sc.chars.get(sc.pos) {
            Some('{') => depth += 1,
            Some('}') => depth -= 1,
            None => return sc.err("unterminated schema body"),
            _ => {}
        }
        sc.pos += 1;
    }
    let body: String = sc.chars[start..sc.pos - 1].iter().collect();
    Ok((name, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_queue_examples() {
        // Sec. 2.1.1 and 2.1.2 verbatim (plus the endpoint extension).
        let app = parse_program(
            r#"
            create queue finance kind basic mode persistent
            create queue supplier kind outgoingGateway mode persistent
                interface supplier.wsdl port CapacityRequestPort
                using WS-ReliableMessaging policy wsrmpol.xml
                using WS-Security policy wssecpol.xml
                endpoint "http://ws.chem.invalid/"
            create queue echoQueue kind echo mode persistent
            "#,
        )
        .unwrap();
        assert_eq!(app.queues.len(), 3);
        let fin = app.queue("finance").unwrap();
        assert_eq!(fin.kind, QueueKind::Basic);
        assert!(fin.persistent);
        let sup = app.queue("supplier").unwrap();
        assert_eq!(sup.kind, QueueKind::OutgoingGateway);
        assert_eq!(sup.interface.as_ref().unwrap().1, "CapacityRequestPort");
        assert_eq!(sup.extensions.len(), 2);
        assert_eq!(sup.endpoint.as_deref(), Some("http://ws.chem.invalid/"));
        assert_eq!(app.queue("echoQueue").unwrap().kind, QueueKind::Echo);
    }

    #[test]
    fn paper_property_examples() {
        // Sec. 2.2 verbatim.
        let app = parse_program(
            r#"
            create property isVIPorder as xs:boolean inherited
                queue crm, finance, legal, customer value false
            create property orderID as xs:string fixed
                queue order value //orderID
                queue confirmation value /confirmedOrder/ID
            "#,
        )
        .unwrap();
        let vip = app.property("isVIPorder").unwrap();
        assert_eq!(vip.kind, PropKind::Inherited);
        assert_eq!(
            vip.bindings[0].queues,
            ["crm", "finance", "legal", "customer"]
        );
        // `value false` normalizes to a boolean literal call.
        assert!(
            matches!(&vip.bindings[0].value, Expr::FunctionCall { name, .. } if name.local == "false")
        );
        let oid = app.property("orderID").unwrap();
        assert_eq!(oid.kind, PropKind::Fixed);
        assert_eq!(oid.bindings.len(), 2);
        assert_eq!(oid.bindings[1].queues, ["confirmation"]);
    }

    #[test]
    fn paper_slicing_example() {
        let app = parse_program("create slicing orders on orderID").unwrap();
        assert_eq!(app.slicings[0].name, "orders");
        assert_eq!(app.slicings[0].property, "orderID");
    }

    #[test]
    fn rule_with_body_and_following_statement() {
        let app = parse_program(
            r#"
            create queue crm kind basic mode persistent
            create rule newOfferRequest for crm
              if (//offerRequest) then
                do enqueue <requestCustomerInfo>{//requestID}</requestCustomerInfo> into finance
            create queue finance kind basic mode persistent
            "#,
        )
        .unwrap();
        assert_eq!(app.rules.len(), 1);
        assert_eq!(app.rules[0].name, "newOfferRequest");
        assert_eq!(app.rules[0].target, "crm");
        assert_eq!(
            app.queues.len(),
            2,
            "statement after the rule body is parsed"
        );
    }

    #[test]
    fn rule_with_errorqueue() {
        let app = parse_program(
            r#"
            create rule confirmOrder for crm errorqueue crmErrors
              if (//customerOrder) then do enqueue <confirmation/> into customer
            "#,
        )
        .unwrap();
        assert_eq!(app.rules[0].error_queue.as_deref(), Some("crmErrors"));
    }

    #[test]
    fn non_updating_rule_rejected() {
        let err = parse_program("create rule r for q 1 + 1").unwrap_err();
        assert!(err.msg.contains("updating"));
    }

    #[test]
    fn system_errorqueue_and_schema() {
        let app = parse_program(
            r#"
            set errorqueue sysErrors
            create schema order-schema {
                root order
                element order any
            }
            create queue orders kind basic mode persistent schema order-schema
            "#,
        )
        .unwrap();
        assert_eq!(app.system_error_queue.as_deref(), Some("sysErrors"));
        assert_eq!(app.schemas.len(), 1);
        assert!(app.schemas[0].1.contains("root order"));
        assert_eq!(
            app.queue("orders").unwrap().schema.as_deref(),
            Some("order-schema")
        );
    }

    #[test]
    fn comments_between_statements() {
        let app =
            parse_program("(: a comment :) create queue q kind basic mode transient (: tail :)")
                .unwrap();
        assert!(!app.queue("q").unwrap().persistent);
    }

    #[test]
    fn missing_clauses_rejected() {
        assert!(parse_program("create queue q kind basic").is_err());
        assert!(parse_program("create queue q mode persistent").is_err());
        assert!(parse_program("create queue q kind bogus mode persistent").is_err());
        assert!(parse_program("create property p as string").is_err()); // not xs:
        assert!(parse_program("create bogus x").is_err());
        assert!(parse_program("drop queue q").is_err());
    }

    #[test]
    fn queue_priority() {
        let app = parse_program("create queue hot kind basic mode transient priority 9").unwrap();
        assert_eq!(app.queue("hot").unwrap().priority, 9);
        let app = parse_program("create queue cold kind basic mode transient priority -3").unwrap();
        assert_eq!(app.queue("cold").unwrap().priority, -3);
    }

    #[test]
    fn error_reports_line() {
        let err = parse_program("create queue q kind basic mode persistent\nbogus").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
