//! Semantic validation of parsed applications.
//!
//! Enforces the constraints the paper states or implies:
//! * unique queue / property / slicing / rule names,
//! * rules target an existing queue or slicing,
//! * slicings reference declared properties,
//! * property bindings reference declared queues,
//! * `qs:slice()` / `qs:slicekey()` only in rules on slicings ("Both of
//!   these functions are only available to rules defined on slicings",
//!   Sec. 3.5.2),
//! * error queues exist and are not themselves gateways *to nowhere*,
//! * reliable-messaging extensions require persistent queues ("in order to
//!   use the reliable messaging extensions … the created queue must be
//!   persistent", Sec. 2.1.2),
//! * outgoing gateways have an interface or endpoint to send to,
//! * queue schemas reference declared schemas.

use crate::ast::{AppSpec, QueueKind};
use demaq_xquery::Expr;
use std::collections::HashSet;
use std::fmt;

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    pub subject: String,
    pub msg: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.subject, self.msg)
    }
}
impl std::error::Error for ValidationError {}

/// Validate an application; returns all violations (empty = valid).
pub fn validate(app: &AppSpec) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let mut err = |subject: &str, msg: String| {
        errors.push(ValidationError {
            subject: subject.to_string(),
            msg,
        })
    };

    // Unique names per namespace.
    let mut seen = HashSet::new();
    for q in &app.queues {
        if !seen.insert(("queue", q.name.clone())) {
            err(&q.name, "duplicate queue name".into());
        }
    }
    let mut seen = HashSet::new();
    for p in &app.properties {
        if !seen.insert(p.name.clone()) {
            err(&p.name, "duplicate property name".into());
        }
    }
    let mut seen = HashSet::new();
    for s in &app.slicings {
        if !seen.insert(s.name.clone()) {
            err(&s.name, "duplicate slicing name".into());
        }
        if app.queues.iter().any(|q| q.name == s.name) {
            err(&s.name, "slicing name collides with a queue name".into());
        }
    }
    let mut seen = HashSet::new();
    for r in &app.rules {
        if !seen.insert(r.name.clone()) {
            err(&r.name, "duplicate rule name".into());
        }
    }

    let queue_names: HashSet<&str> = app.queues.iter().map(|q| q.name.as_str()).collect();
    let slicing_names: HashSet<&str> = app.slicings.iter().map(|s| s.name.as_str()).collect();
    let schema_names: HashSet<&str> = app.schemas.iter().map(|(n, _)| n.as_str()).collect();

    // Slicings -> properties.
    for s in &app.slicings {
        if app.property(&s.property).is_none() {
            err(
                &s.name,
                format!("slicing references undeclared property `{}`", s.property),
            );
        }
    }

    // Property bindings -> queues; fixed properties need a binding.
    for p in &app.properties {
        for b in &p.bindings {
            for q in &b.queues {
                if !queue_names.contains(q.as_str()) {
                    err(&p.name, format!("property bound to undeclared queue `{q}`"));
                }
            }
        }
        if p.kind == crate::ast::PropKind::Fixed && p.bindings.is_empty() {
            err(
                &p.name,
                "fixed property needs at least one `queue … value …` binding".into(),
            );
        }
    }

    // Queues: schemas, error queues, gateway requirements.
    for q in &app.queues {
        if let Some(schema) = &q.schema {
            if !schema_names.contains(schema.as_str()) {
                err(&q.name, format!("references undeclared schema `{schema}`"));
            }
        }
        if let Some(eq) = &q.error_queue {
            if !queue_names.contains(eq.as_str()) {
                err(&q.name, format!("error queue `{eq}` is not declared"));
            }
        }
        let reliable = q
            .extensions
            .iter()
            .any(|(e, _)| e == "WS-ReliableMessaging");
        if reliable && !q.persistent {
            err(
                &q.name,
                "WS-ReliableMessaging requires a persistent queue (paper Sec. 2.1.2)".into(),
            );
        }
        if q.kind == QueueKind::OutgoingGateway && q.interface.is_none() && q.endpoint.is_none() {
            err(
                &q.name,
                "outgoing gateway needs an `interface` or `endpoint` clause".into(),
            );
        }
        if q.kind != QueueKind::OutgoingGateway && q.interface.is_some() {
            err(
                &q.name,
                "`interface` is only meaningful on outgoing gateways".into(),
            );
        }
    }

    // System error queue.
    if let Some(eq) = &app.system_error_queue {
        if !queue_names.contains(eq.as_str()) {
            err(
                "system",
                format!("system error queue `{eq}` is not declared"),
            );
        }
    }

    // Rules: target resolution, error queues, slice-function scoping.
    for r in &app.rules {
        let on_queue = queue_names.contains(r.target.as_str());
        let on_slicing = slicing_names.contains(r.target.as_str());
        if !on_queue && !on_slicing {
            err(
                &r.name,
                format!(
                    "rule target `{}` is neither a queue nor a slicing",
                    r.target
                ),
            );
        }
        if let Some(eq) = &r.error_queue {
            if !queue_names.contains(eq.as_str()) {
                err(&r.name, format!("error queue `{eq}` is not declared"));
            }
        }
        let mut uses_slice_fn = false;
        let mut enqueue_targets: Vec<String> = Vec::new();
        r.body.visit(&mut |e| {
            if let Expr::FunctionCall { name, .. } = e {
                if name.prefix.as_deref() == Some("qs")
                    && matches!(name.local.as_str(), "slice" | "slicekey")
                {
                    uses_slice_fn = true;
                }
            }
            if let Expr::Enqueue { queue, .. } = e {
                enqueue_targets.push(queue.local.clone());
            }
        });
        if uses_slice_fn && !on_slicing {
            err(
                &r.name,
                "qs:slice()/qs:slicekey() are only available in rules on slicings (Sec. 3.5.2)"
                    .into(),
            );
        }
        for t in enqueue_targets {
            if !queue_names.contains(t.as_str()) {
                err(&r.name, format!("enqueues into undeclared queue `{t}`"));
            }
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::validate;
    use crate::parse_program;

    fn errors_of(src: &str) -> Vec<String> {
        validate(&parse_program(src).unwrap())
            .into_iter()
            .map(|e| e.msg)
            .collect()
    }

    #[test]
    fn valid_program_passes() {
        let errs = errors_of(
            r#"
            create queue crm kind basic mode persistent
            create queue customer kind outgoingGateway mode persistent endpoint "urn:cust"
            create property requestID as xs:string fixed queue crm value //requestID
            create slicing requestMsgs on requestID
            create rule fwd for crm
              if (//offerRequest) then do enqueue <x/> into customer
            create rule joined for requestMsgs
              if (qs:slice()[/a]) then do reset
            "#,
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn duplicate_names_detected() {
        let errs = errors_of(
            "create queue q kind basic mode persistent\ncreate queue q kind basic mode transient",
        );
        assert!(errs.iter().any(|e| e.contains("duplicate queue")));
    }

    #[test]
    fn unknown_rule_target() {
        let errs = errors_of("create rule r for ghost do reset");
        assert!(errs
            .iter()
            .any(|e| e.contains("neither a queue nor a slicing")));
    }

    #[test]
    fn slice_functions_require_slicing_rule() {
        let errs = errors_of(
            r#"
            create queue q kind basic mode persistent
            create rule bad for q
              if (qs:slice()[/x]) then do reset
            "#,
        );
        assert!(errs
            .iter()
            .any(|e| e.contains("only available in rules on slicings")));
    }

    #[test]
    fn reliable_messaging_needs_persistence() {
        let errs = errors_of(
            r#"
            create queue g kind outgoingGateway mode transient
              using WS-ReliableMessaging policy p.xml endpoint "urn:x"
            "#,
        );
        assert!(errs
            .iter()
            .any(|e| e.contains("requires a persistent queue")));
    }

    #[test]
    fn slicing_needs_declared_property() {
        let errs = errors_of("create slicing s on ghost");
        assert!(errs.iter().any(|e| e.contains("undeclared property")));
    }

    #[test]
    fn enqueue_target_must_exist() {
        let errs = errors_of(
            r#"
            create queue q kind basic mode persistent
            create rule r for q do enqueue <m/> into nowhere
            "#,
        );
        assert!(errs
            .iter()
            .any(|e| e.contains("undeclared queue `nowhere`")));
    }

    #[test]
    fn outgoing_gateway_needs_destination() {
        let errs = errors_of("create queue g kind outgoingGateway mode persistent");
        assert!(errs
            .iter()
            .any(|e| e.contains("interface") && e.contains("endpoint")));
    }

    #[test]
    fn schema_reference_checked() {
        let errs = errors_of("create queue q kind basic mode persistent schema ghost");
        assert!(errs.iter().any(|e| e.contains("undeclared schema")));
    }

    #[test]
    fn error_queue_must_exist() {
        let errs = errors_of(
            r#"
            create queue q kind basic mode persistent errorqueue ghost
            create rule r for q errorqueue ghost2 do reset
            set errorqueue ghost3
            "#,
        );
        assert_eq!(
            errs.iter().filter(|e| e.contains("not declared")).count(),
            3
        );
    }
}
