//! Property-based tests for the QDL program parser: robustness against
//! arbitrary input and structural fidelity for generated programs.

use demaq_qdl::{parse_program, validate, PropKind, QueueKind};
use proptest::prelude::*;

fn qname() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9]{0,8}".prop_map(|s| s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse_program(&input);
    }

    #[test]
    fn statement_soup_never_panics(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("create queue q kind basic mode persistent".to_string()),
                Just("create property p as xs:string".to_string()),
                Just("create slicing s on p".to_string()),
                Just("create rule r for q do reset".to_string()),
                Just("set errorqueue e".to_string()),
                Just("kind".to_string()),
                Just("mode".to_string()),
                Just("value //x".to_string()),
                Just("queue a, b".to_string()),
                "[a-z{}()/<>]{0,10}".prop_map(|s| s),
            ],
            0..8,
        )
    ) {
        let program = parts.join("\n");
        if let Ok(spec) = parse_program(&program) {
            // Whatever parses must validate without panicking.
            let _ = validate(&spec);
        }
    }

    #[test]
    fn generated_programs_roundtrip_structure(
        names in proptest::collection::hash_set(qname(), 1..6),
    ) {
        // Build a program from distinct queue names; parse and compare the
        // structural content.
        let names: Vec<String> = names.into_iter().collect();
        let mut program = String::new();
        let mut queues = Vec::new();
        for (i, n) in names.iter().enumerate() {
            let kind = if i % 2 == 0 { "basic" } else { "echo" };
            let mode = if i % 3 == 0 { "transient" } else { "persistent" };
            let prio = (i as i32) - 2;
            program.push_str(&format!(
                "create queue {n} kind {kind} mode {mode} priority {prio}\n"
            ));
            queues.push((n.clone(), kind, mode == "persistent", prio));
        }
        let spec = parse_program(&program).expect("generated program parses");
        prop_assert_eq!(spec.queues.len(), queues.len());
        for (name, kind, persistent, prio) in queues {
            let q = spec.queue(&name).expect("queue present");
            prop_assert_eq!(q.persistent, persistent);
            prop_assert_eq!(q.priority, prio);
            let expected_kind =
                if kind == "basic" { QueueKind::Basic } else { QueueKind::Echo };
            prop_assert_eq!(q.kind, expected_kind);
        }
        prop_assert!(validate(&spec).is_empty());
    }

    #[test]
    fn property_declarations_roundtrip(
        pname in qname(),
        qnames in proptest::collection::hash_set(qname(), 1..4),
        ty in prop_oneof![Just("xs:string"), Just("xs:integer"), Just("xs:boolean")],
        kind in prop_oneof![Just(""), Just("inherited"), Just("fixed")],
    ) {
        let queues: Vec<String> = qnames.into_iter().collect();
        prop_assume!(!queues.contains(&pname));
        let mut program = String::new();
        for q in &queues {
            program.push_str(&format!("create queue {q} kind basic mode persistent\n"));
        }
        program.push_str(&format!(
            "create property {pname} as {ty} {kind} queue {} value //x\n",
            queues.join(", ")
        ));
        let spec = parse_program(&program).expect("parses");
        let p = spec.property(&pname).expect("property present");
        prop_assert_eq!(&p.ty, ty);
        let expected = match kind {
            "inherited" => PropKind::Inherited,
            "fixed" => PropKind::Fixed,
            _ => PropKind::Explicit,
        };
        prop_assert_eq!(p.kind, expected);
        prop_assert_eq!(p.bindings[0].queues.len(), queues.len());
        prop_assert!(validate(&spec).is_empty(), "{:?}", validate(&spec));
    }

    #[test]
    fn rule_bodies_with_arbitrary_xpath_fragments(
        elem in "[a-z]{1,8}",
        target in "[a-z]{1,8}",
    ) {
        let program = format!(
            "create queue {target} kind basic mode persistent\n\
             create rule r for {target} if (//{elem}) then do enqueue <{elem}/> into {target}\n"
        );
        let spec = parse_program(&program).expect("parses");
        prop_assert_eq!(spec.rules.len(), 1);
        prop_assert!(spec.rules[0].body.is_updating());
        prop_assert!(validate(&spec).is_empty());
    }
}
