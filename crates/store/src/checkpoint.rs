//! Checkpoint snapshots of the store's logical state.
//!
//! A checkpoint bounds recovery time: it captures queue definitions,
//! message metadata (payloads stay in the heap file, which is flushed
//! first), and the slice index, then switches to a fresh WAL segment.
//! Transient queues are *not* captured — their content is legitimately
//! lost on restart (paper Sec. 2.1.1).
//!
//! Format: custom length-prefixed binary with a magic header and a trailing
//! CRC; written to a temp file and atomically renamed.

use crate::error::{Result, StoreError};
use crate::pager::PageId;
use crate::slice::SliceState;
use crate::types::{MsgId, PropValue};
use crate::wal::crc32;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Current format: per-slice narrowed-retention base (aggregate
/// accumulator cells + released-member count) follows the member list.
const MAGIC: &[u8; 8] = b"DEMAQCK2";
/// Previous format, still readable: slices carry no base fields.
const MAGIC_V1: &[u8; 8] = b"DEMAQCK1";

/// Message metadata as serialized into a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapMessage {
    pub id: MsgId,
    pub queue: String,
    /// Heap location (persistent queues only).
    pub rid_page: u32,
    pub rid_slot: u16,
    pub processed: bool,
    pub enqueued_at: i64,
    pub props: Vec<(String, PropValue)>,
}

/// Queue definition as serialized into a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapQueue {
    pub name: String,
    pub persistent: bool,
    pub priority: i32,
}

/// Causal lineage edge as serialized into a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapLineage {
    pub msg: MsgId,
    pub parent: MsgId,
    pub root: MsgId,
    pub rule: String,
    pub queue: String,
    /// WAL LSN of the original lineage record, if logged.
    pub lsn: Option<u64>,
}

/// A complete snapshot.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Snapshot {
    /// Index of the first WAL segment whose records post-date this snapshot.
    pub wal_index: u64,
    pub next_msg: u64,
    pub next_txn: u64,
    pub heap_free: Vec<PageId>,
    pub heap_live: u64,
    pub queues: Vec<SnapQueue>,
    pub messages: Vec<SnapMessage>,
    pub slices: Vec<(String, PropValue, SliceState)>,
    pub lineage: Vec<SnapLineage>,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], at: &mut usize) -> Option<String> {
    let len = u32::from_le_bytes(buf.get(*at..*at + 4)?.try_into().ok()?) as usize;
    *at += 4;
    let s = std::str::from_utf8(buf.get(*at..*at + len)?)
        .ok()?
        .to_string();
    *at += len;
    Some(s)
}

fn get_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let v = u64::from_le_bytes(buf.get(*at..*at + 8)?.try_into().ok()?);
    *at += 8;
    Some(v)
}

fn get_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let v = u32::from_le_bytes(buf.get(*at..*at + 4)?.try_into().ok()?);
    *at += 4;
    Some(v)
}

impl Snapshot {
    /// Serialize to bytes (magic + body + CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.wal_index.to_le_bytes());
        body.extend_from_slice(&self.next_msg.to_le_bytes());
        body.extend_from_slice(&self.next_txn.to_le_bytes());
        body.extend_from_slice(&self.heap_live.to_le_bytes());
        body.extend_from_slice(&(self.heap_free.len() as u32).to_le_bytes());
        for p in &self.heap_free {
            body.extend_from_slice(&p.0.to_le_bytes());
        }
        body.extend_from_slice(&(self.queues.len() as u32).to_le_bytes());
        for q in &self.queues {
            put_str(&mut body, &q.name);
            body.push(q.persistent as u8);
            body.extend_from_slice(&q.priority.to_le_bytes());
        }
        body.extend_from_slice(&(self.messages.len() as u32).to_le_bytes());
        for m in &self.messages {
            body.extend_from_slice(&m.id.0.to_le_bytes());
            put_str(&mut body, &m.queue);
            body.extend_from_slice(&m.rid_page.to_le_bytes());
            body.extend_from_slice(&m.rid_slot.to_le_bytes());
            body.push(m.processed as u8);
            body.extend_from_slice(&m.enqueued_at.to_le_bytes());
            body.extend_from_slice(&(m.props.len() as u32).to_le_bytes());
            for (n, v) in &m.props {
                put_str(&mut body, n);
                v.encode(&mut body);
            }
        }
        body.extend_from_slice(&(self.slices.len() as u32).to_le_bytes());
        for (slicing, key, state) in &self.slices {
            put_str(&mut body, slicing);
            key.encode(&mut body);
            body.extend_from_slice(&state.epoch.to_le_bytes());
            body.extend_from_slice(&(state.members.len() as u32).to_le_bytes());
            for (m, e) in &state.members {
                body.extend_from_slice(&m.0.to_le_bytes());
                body.extend_from_slice(&e.to_le_bytes());
            }
            body.extend_from_slice(&(state.base.len() as u32).to_le_bytes());
            for (sig, cell) in &state.base {
                put_str(&mut body, sig);
                body.extend_from_slice(&(cell.len() as u32).to_le_bytes());
                body.extend_from_slice(cell);
            }
            body.extend_from_slice(&state.base_members.to_le_bytes());
        }
        body.extend_from_slice(&(self.lineage.len() as u32).to_le_bytes());
        for l in &self.lineage {
            body.extend_from_slice(&l.msg.0.to_le_bytes());
            body.extend_from_slice(&l.parent.0.to_le_bytes());
            body.extend_from_slice(&l.root.0.to_le_bytes());
            put_str(&mut body, &l.rule);
            put_str(&mut body, &l.queue);
            body.push(l.lsn.is_some() as u8);
            body.extend_from_slice(&l.lsn.unwrap_or(0).to_le_bytes());
        }
        let mut out = Vec::with_capacity(body.len() + 16);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode from bytes, verifying magic and CRC.
    pub fn decode(buf: &[u8]) -> Result<Snapshot> {
        let corrupt = |m: &str| StoreError::Corrupt(format!("snapshot: {m}"));
        if buf.len() < 16 {
            return Err(corrupt("bad magic"));
        }
        let has_base = match &buf[..8] {
            m if m == MAGIC => true,
            m if m == MAGIC_V1 => false,
            _ => return Err(corrupt("bad magic")),
        };
        let crc = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        let len = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
        let body = buf
            .get(16..16 + len)
            .ok_or_else(|| corrupt("truncated body"))?;
        if crc32(body) != crc {
            return Err(corrupt("CRC mismatch"));
        }
        let mut at = 0usize;
        let mut snap = Snapshot::default();
        (|| -> Option<()> {
            snap.wal_index = get_u64(body, &mut at)?;
            snap.next_msg = get_u64(body, &mut at)?;
            snap.next_txn = get_u64(body, &mut at)?;
            snap.heap_live = get_u64(body, &mut at)?;
            let nfree = get_u32(body, &mut at)? as usize;
            for _ in 0..nfree {
                snap.heap_free.push(PageId(get_u32(body, &mut at)?));
            }
            let nq = get_u32(body, &mut at)? as usize;
            for _ in 0..nq {
                let name = get_str(body, &mut at)?;
                let persistent = *body.get(at)? != 0;
                at += 1;
                let priority = i32::from_le_bytes(body.get(at..at + 4)?.try_into().ok()?);
                at += 4;
                snap.queues.push(SnapQueue {
                    name,
                    persistent,
                    priority,
                });
            }
            let nm = get_u32(body, &mut at)? as usize;
            for _ in 0..nm {
                let id = MsgId(get_u64(body, &mut at)?);
                let queue = get_str(body, &mut at)?;
                let rid_page = get_u32(body, &mut at)?;
                let rid_slot = u16::from_le_bytes(body.get(at..at + 2)?.try_into().ok()?);
                at += 2;
                let processed = *body.get(at)? != 0;
                at += 1;
                let enqueued_at = i64::from_le_bytes(body.get(at..at + 8)?.try_into().ok()?);
                at += 8;
                let np = get_u32(body, &mut at)? as usize;
                let mut props = Vec::with_capacity(np);
                for _ in 0..np {
                    let n = get_str(body, &mut at)?;
                    let v = PropValue::decode(body, &mut at)?;
                    props.push((n, v));
                }
                snap.messages.push(SnapMessage {
                    id,
                    queue,
                    rid_page,
                    rid_slot,
                    processed,
                    enqueued_at,
                    props,
                });
            }
            let ns = get_u32(body, &mut at)? as usize;
            for _ in 0..ns {
                let slicing = get_str(body, &mut at)?;
                let key = PropValue::decode(body, &mut at)?;
                let epoch = get_u64(body, &mut at)?;
                let nmem = get_u32(body, &mut at)? as usize;
                let mut members = Vec::with_capacity(nmem);
                for _ in 0..nmem {
                    let m = MsgId(get_u64(body, &mut at)?);
                    let e = get_u64(body, &mut at)?;
                    members.push((m, e));
                }
                let mut base = Vec::new();
                let mut base_members = 0u64;
                if has_base {
                    let nb = get_u32(body, &mut at)? as usize;
                    for _ in 0..nb {
                        let sig = get_str(body, &mut at)?;
                        let len = get_u32(body, &mut at)? as usize;
                        let cell = body.get(at..at + len)?.to_vec();
                        at += len;
                        base.push((sig, cell));
                    }
                    base_members = get_u64(body, &mut at)?;
                }
                snap.slices.push((
                    slicing,
                    key,
                    SliceState {
                        epoch,
                        members,
                        version: 0,
                        base,
                        base_members,
                    },
                ));
            }
            let nl = get_u32(body, &mut at)? as usize;
            for _ in 0..nl {
                let msg = MsgId(get_u64(body, &mut at)?);
                let parent = MsgId(get_u64(body, &mut at)?);
                let root = MsgId(get_u64(body, &mut at)?);
                let rule = get_str(body, &mut at)?;
                let queue = get_str(body, &mut at)?;
                let has_lsn = *body.get(at)? != 0;
                at += 1;
                let lsn = get_u64(body, &mut at)?;
                snap.lineage.push(SnapLineage {
                    msg,
                    parent,
                    root,
                    rule,
                    queue,
                    lsn: has_lsn.then_some(lsn),
                });
            }
            (at == body.len()).then_some(())
        })()
        .ok_or_else(|| corrupt("truncated record"))?;
        Ok(snap)
    }

    /// Write atomically (temp + rename + fsync).
    pub fn write_to(&self, path: &Path) -> Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_data()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read a snapshot; `Ok(None)` when none exists yet.
    pub fn read_from(path: &Path) -> Result<Option<Snapshot>> {
        match fs::read(path) {
            Ok(bytes) => Ok(Some(Snapshot::decode(&bytes)?)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    fn sample() -> Snapshot {
        Snapshot {
            wal_index: 3,
            next_msg: 101,
            next_txn: 55,
            heap_free: vec![PageId(4), PageId(9)],
            heap_live: 42,
            queues: vec![
                SnapQueue {
                    name: "crm".into(),
                    persistent: true,
                    priority: 5,
                },
                SnapQueue {
                    name: "scratch".into(),
                    persistent: false,
                    priority: -1,
                },
            ],
            messages: vec![SnapMessage {
                id: MsgId(7),
                queue: "crm".into(),
                rid_page: 2,
                rid_slot: 3,
                processed: true,
                enqueued_at: 777,
                props: vec![("orderID".into(), PropValue::Int(9))],
            }],
            slices: vec![(
                "orders".into(),
                PropValue::Str("9".into()),
                SliceState {
                    epoch: 2,
                    members: vec![(MsgId(7), 2), (MsgId(5), 1)],
                    version: 0,
                    base: vec![("count".into(), vec![1, 2, 3]), ("sum|//v".into(), vec![9])],
                    base_members: 14,
                },
            )],
            lineage: vec![
                SnapLineage {
                    msg: MsgId(7),
                    parent: MsgId(3),
                    root: MsgId(1),
                    rule: "forwardOrder".into(),
                    queue: "crm".into(),
                    lsn: Some(4242),
                },
                SnapLineage {
                    msg: MsgId(9),
                    parent: MsgId(7),
                    root: MsgId(1),
                    rule: "notify".into(),
                    queue: "scratch".into(),
                    lsn: None,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let snap = sample();
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn file_roundtrip() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("ckpt.snap");
        sample().write_to(&path).unwrap();
        let back = Snapshot::read_from(&path).unwrap().unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn missing_file_is_none() {
        let dir = TempDir::new().unwrap();
        assert!(Snapshot::read_from(&dir.path().join("nope"))
            .unwrap()
            .is_none());
    }

    #[test]
    fn decodes_v1_snapshots_without_base() {
        // A minimal DEMAQCK1 body, byte-for-byte the old format: slices
        // end at their member list.
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes()); // wal_index
        body.extend_from_slice(&2u64.to_le_bytes()); // next_msg
        body.extend_from_slice(&3u64.to_le_bytes()); // next_txn
        body.extend_from_slice(&0u64.to_le_bytes()); // heap_live
        body.extend_from_slice(&0u32.to_le_bytes()); // heap_free
        body.extend_from_slice(&0u32.to_le_bytes()); // queues
        body.extend_from_slice(&0u32.to_le_bytes()); // messages
        body.extend_from_slice(&1u32.to_le_bytes()); // slices
        put_str(&mut body, "orders");
        PropValue::Str("9".into()).encode(&mut body);
        body.extend_from_slice(&1u64.to_le_bytes()); // epoch
        body.extend_from_slice(&1u32.to_le_bytes()); // member count
        body.extend_from_slice(&7u64.to_le_bytes()); // msg id
        body.extend_from_slice(&1u64.to_le_bytes()); // member epoch
        body.extend_from_slice(&0u32.to_le_bytes()); // lineage
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&body);
        let snap = Snapshot::decode(&bytes).unwrap();
        let (slicing, _, st) = &snap.slices[0];
        assert_eq!(slicing, "orders");
        assert_eq!(st.members, vec![(MsgId(7), 1)]);
        assert!(st.base.is_empty());
        assert_eq!(st.base_members, 0);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = sample().encode();
        bytes[20] ^= 0x55;
        assert!(Snapshot::decode(&bytes).is_err());
        let mut truncated = sample().encode();
        truncated.truncate(truncated.len() - 3);
        assert!(Snapshot::decode(&truncated).is_err());
        assert!(Snapshot::decode(b"NOTMAGIC").is_err());
    }
}
