//! Store error types.

use std::fmt;

/// Errors raised by the message store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file-system failure.
    Io(std::io::Error),
    /// Log or checkpoint corruption detected during recovery.
    Corrupt(String),
    /// A transaction was chosen as a deadlock victim and must be retried.
    Deadlock,
    /// Lock acquisition timed out.
    LockTimeout,
    /// Use of an unknown queue / slicing / message id.
    NotFound(String),
    /// Constraint violation (duplicate queue, bad state transition, …).
    Invalid(String),
    /// The transaction has already committed or aborted.
    TxnClosed,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
            StoreError::Deadlock => write!(f, "transaction aborted: deadlock victim"),
            StoreError::LockTimeout => write!(f, "lock wait timeout"),
            StoreError::NotFound(m) => write!(f, "not found: {m}"),
            StoreError::Invalid(m) => write!(f, "invalid operation: {m}"),
            StoreError::TxnClosed => write!(f, "transaction already finished"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

pub type Result<T> = std::result::Result<T, StoreError>;
