//! Slotted-page heap file for message payloads.
//!
//! Records (serialized XML messages) are stored in slotted pages; records
//! larger than one page are split into chained chunks. The heap is
//! append-mostly: Demaq messages are immutable, so the only mutation is
//! deletion by the retention GC, which tombstones slots and recycles fully
//! empty pages through a free list.
//!
//! Page layout:
//! ```text
//! [0..2)  slot count (u16)
//! [2..4)  free offset (u16)   — start of unused space
//! [4..)   chunk data grows upward
//! [..END] slot directory grows downward: per slot (offset u16, len u16)
//! ```
//! Chunk layout: `[next_page u32][next_slot u16][payload …]`; the first
//! chunk is prefixed with the record's total length (u32).

use crate::error::{Result, StoreError};
use crate::pager::{BufferPool, PageId, PAGE_SIZE};
use parking_lot::Mutex;
use std::sync::Arc;

/// Location of a record (its first chunk).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordId {
    pub page: PageId,
    pub slot: u16,
}

const HDR: usize = 4;
const SLOT: usize = 4;
const CHUNK_HDR: usize = 6;
const NO_PAGE: u32 = u32::MAX;
const TOMBSTONE: u16 = u16::MAX;

/// Maximum chunk payload that fits in an empty page.
const MAX_CHUNK: usize = PAGE_SIZE - HDR - SLOT - CHUNK_HDR - 4;

/// Append-only heap of variable-length records with overflow chains.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    inner: Mutex<HeapInner>,
}

struct HeapInner {
    /// Page currently being filled by appends.
    current: Option<PageId>,
    /// Fully-emptied pages available for reuse.
    free_pages: Vec<PageId>,
    /// Live record count (for stats/GC accounting).
    live_records: u64,
}

impl HeapFile {
    pub fn new(pool: Arc<BufferPool>) -> HeapFile {
        HeapFile {
            pool,
            inner: Mutex::new(HeapInner {
                current: None,
                free_pages: Vec::new(),
                live_records: 0,
            }),
        }
    }

    /// Restore free-list state from a checkpoint.
    pub fn restore(&self, free_pages: Vec<PageId>, live_records: u64) {
        let mut inner = self.inner.lock();
        inner.free_pages = free_pages;
        inner.live_records = live_records;
        inner.current = None;
    }

    /// Snapshot the free list for checkpointing.
    pub fn free_list(&self) -> Vec<PageId> {
        self.inner.lock().free_pages.clone()
    }

    /// Number of live (non-deleted) records.
    pub fn live_records(&self) -> u64 {
        self.inner.lock().live_records
    }

    /// Append a record, returning its id.
    pub fn append(&self, bytes: &[u8]) -> Result<RecordId> {
        let mut inner = self.inner.lock();
        // Split into chunks, last chunk first so each chunk knows its
        // successor's location.
        let mut remaining: Vec<&[u8]> = Vec::new();
        let mut rest = bytes;
        loop {
            // First chunk carries a 4-byte total-length prefix.
            let cap = if rest.len() == bytes.len() {
                MAX_CHUNK
            } else {
                MAX_CHUNK + 4
            };
            if rest.len() <= cap {
                remaining.push(rest);
                break;
            }
            let (head, tail) = rest.split_at(cap);
            remaining.push(head);
            rest = tail;
        }
        let mut next: Option<RecordId> = None;
        for (i, chunk) in remaining.iter().enumerate().rev() {
            let is_first = i == 0;
            let mut data = Vec::with_capacity(chunk.len() + CHUNK_HDR + 4);
            match next {
                Some(rid) => {
                    data.extend_from_slice(&rid.page.0.to_le_bytes());
                    data.extend_from_slice(&rid.slot.to_le_bytes());
                }
                None => {
                    data.extend_from_slice(&NO_PAGE.to_le_bytes());
                    data.extend_from_slice(&0u16.to_le_bytes());
                }
            }
            if is_first {
                data.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            }
            data.extend_from_slice(chunk);
            next = Some(self.place_chunk(&mut inner, &data)?);
        }
        inner.live_records += 1;
        Ok(next.expect("at least one chunk"))
    }

    fn place_chunk(&self, inner: &mut HeapInner, data: &[u8]) -> Result<RecordId> {
        let need = data.len() + SLOT;
        // Try the current fill page.
        if let Some(pid) = inner.current {
            if let Some(rid) = self.try_place(pid, data, need)? {
                return Ok(rid);
            }
        }
        // Take from the free list or allocate fresh.
        let pid = match inner.free_pages.pop() {
            Some(p) => {
                // Reset the page header.
                self.pool.with_page_mut(p, |pg| {
                    pg.data[..HDR].fill(0);
                    pg.write_u16(2, HDR as u16);
                })?;
                p
            }
            None => {
                let p = self.pool.allocate()?;
                self.pool
                    .with_page_mut(p, |pg| pg.write_u16(2, HDR as u16))?;
                p
            }
        };
        inner.current = Some(pid);
        match self.try_place(pid, data, need)? {
            Some(rid) => Ok(rid),
            None => Err(StoreError::Corrupt("fresh page cannot hold chunk".into())),
        }
    }

    fn try_place(&self, pid: PageId, data: &[u8], need: usize) -> Result<Option<RecordId>> {
        self.pool.with_page_mut(pid, |pg| {
            let slots = pg.read_u16(0) as usize;
            let free_off = pg.read_u16(2) as usize;
            let dir_start = PAGE_SIZE - (slots + 1) * SLOT;
            if free_off + need > dir_start + SLOT {
                return None;
            }
            // Write the chunk and its slot entry.
            pg.data[free_off..free_off + data.len()].copy_from_slice(data);
            let slot_at = PAGE_SIZE - (slots + 1) * SLOT;
            pg.write_u16(slot_at, free_off as u16);
            pg.write_u16(slot_at + 2, data.len() as u16);
            pg.write_u16(0, (slots + 1) as u16);
            pg.write_u16(2, (free_off + data.len()) as u16);
            Some(RecordId {
                page: pid,
                slot: slots as u16,
            })
        })
    }

    /// Read a whole record by id.
    pub fn read(&self, rid: RecordId) -> Result<Vec<u8>> {
        let mut out: Vec<u8> = Vec::new();
        let mut total: Option<usize> = None;
        let mut cur = Some(rid);
        let mut first = true;
        while let Some(rid) = cur {
            let (next, chunk) = self.read_chunk(rid, first)?;
            if first {
                total = Some(chunk.0);
                out.reserve(chunk.0);
            }
            out.extend_from_slice(&chunk.1);
            cur = next;
            first = false;
        }
        let total = total.unwrap_or(0);
        if out.len() != total {
            return Err(StoreError::Corrupt(format!(
                "record {rid:?}: expected {total} bytes, found {}",
                out.len()
            )));
        }
        Ok(out)
    }

    /// Returns (next chunk id, (total_len_if_first, payload bytes)).
    #[allow(clippy::type_complexity)]
    fn read_chunk(
        &self,
        rid: RecordId,
        first: bool,
    ) -> Result<(Option<RecordId>, (usize, Vec<u8>))> {
        self.pool.with_page(rid.page, |pg| {
            let slots = pg.read_u16(0);
            if rid.slot >= slots {
                return Err(StoreError::NotFound(format!("record {rid:?}")));
            }
            let slot_at = PAGE_SIZE - (rid.slot as usize + 1) * SLOT;
            let off = pg.read_u16(slot_at) as usize;
            let len = pg.read_u16(slot_at + 2);
            if len == TOMBSTONE {
                return Err(StoreError::NotFound(format!("record {rid:?} was deleted")));
            }
            let len = len as usize;
            let data = &pg.data[off..off + len];
            let next_page = u32::from_le_bytes(data[0..4].try_into().unwrap());
            let next_slot = u16::from_le_bytes(data[4..6].try_into().unwrap());
            let next = if next_page == NO_PAGE {
                None
            } else {
                Some(RecordId {
                    page: PageId(next_page),
                    slot: next_slot,
                })
            };
            let (total, payload_start) = if first {
                (
                    u32::from_le_bytes(data[6..10].try_into().unwrap()) as usize,
                    10,
                )
            } else {
                (0, 6)
            };
            Ok((next, (total, data[payload_start..].to_vec())))
        })?
    }

    /// Delete a record (all its chunks). Pages whose slots are all
    /// tombstones are recycled via the free list.
    pub fn delete(&self, rid: RecordId) -> Result<()> {
        let mut cur = Some(rid);
        let mut first = true;
        let mut freed_pages = Vec::new();
        while let Some(rid) = cur {
            let next = self.read_chunk(rid, first).map(|(n, _)| n)?;
            let all_dead = self.pool.with_page_mut(rid.page, |pg| {
                let slot_at = PAGE_SIZE - (rid.slot as usize + 1) * SLOT;
                pg.write_u16(slot_at + 2, TOMBSTONE);
                let slots = pg.read_u16(0) as usize;
                (0..slots).all(|s| {
                    let at = PAGE_SIZE - (s + 1) * SLOT;
                    pg.read_u16(at + 2) == TOMBSTONE
                })
            })?;
            if all_dead {
                freed_pages.push(rid.page);
            }
            cur = next;
            first = false;
        }
        let mut inner = self.inner.lock();
        inner.live_records = inner.live_records.saturating_sub(1);
        for p in freed_pages {
            if inner.current == Some(p) {
                inner.current = None;
            }
            if !inner.free_pages.contains(&p) {
                inner.free_pages.push(p);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::DiskManager;
    use tempfile::TempDir;

    fn heap() -> (TempDir, HeapFile) {
        let dir = TempDir::new().unwrap();
        let disk = Arc::new(DiskManager::open(&dir.path().join("heap.db")).unwrap());
        let pool = Arc::new(BufferPool::new(disk, 64));
        (dir, HeapFile::new(pool))
    }

    #[test]
    fn small_records_roundtrip() {
        let (_d, h) = heap();
        let mut rids = Vec::new();
        for i in 0..100 {
            let payload = format!("<msg n='{i}'>payload {i}</msg>");
            rids.push((h.append(payload.as_bytes()).unwrap(), payload));
        }
        for (rid, payload) in &rids {
            assert_eq!(h.read(*rid).unwrap(), payload.as_bytes());
        }
        assert_eq!(h.live_records(), 100);
    }

    #[test]
    fn large_record_spans_pages() {
        let (_d, h) = heap();
        let big: Vec<u8> = (0..PAGE_SIZE * 3 + 123).map(|i| (i % 251) as u8).collect();
        let rid = h.append(&big).unwrap();
        assert_eq!(h.read(rid).unwrap(), big);
    }

    #[test]
    fn empty_record() {
        let (_d, h) = heap();
        let rid = h.append(b"").unwrap();
        assert_eq!(h.read(rid).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn delete_then_read_fails() {
        let (_d, h) = heap();
        let rid = h.append(b"gone soon").unwrap();
        h.delete(rid).unwrap();
        assert!(matches!(h.read(rid), Err(StoreError::NotFound(_))));
        assert_eq!(h.live_records(), 0);
    }

    #[test]
    fn pages_are_recycled_after_full_deletion() {
        let (_d, h) = heap();
        // Fill pages with large records, delete all, then re-append and
        // observe the free list shrink.
        let big = vec![7u8; PAGE_SIZE * 2];
        let rids: Vec<_> = (0..4).map(|_| h.append(&big).unwrap()).collect();
        for rid in rids {
            h.delete(rid).unwrap();
        }
        let free_before = h.free_list().len();
        assert!(free_before > 0, "expected recycled pages");
        let _ = h.append(&big).unwrap();
        assert!(h.free_list().len() < free_before);
    }

    #[test]
    fn interleaved_append_delete() {
        let (_d, h) = heap();
        let mut live = Vec::new();
        for i in 0..200 {
            let payload = format!("<m>{}</m>", "x".repeat(i * 7 % 300));
            let rid = h.append(payload.as_bytes()).unwrap();
            live.push((rid, payload));
            if i % 3 == 0 {
                let (rid, _) = live.remove(0);
                h.delete(rid).unwrap();
            }
        }
        for (rid, payload) in &live {
            assert_eq!(h.read(*rid).unwrap(), payload.as_bytes());
        }
    }
}
