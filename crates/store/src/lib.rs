//! # demaq-store
//!
//! A transactional, append-only XML **message store** — the substitute for
//! the Natix native XML data store with recoverable queue extensions that
//! the Demaq paper builds on (Sec. 4.1).
//!
//! Architecture:
//!
//! * **Pager / buffer pool** ([`pager`]): fixed-size pages in a heap file
//!   with an LRU buffer pool — message payloads live here.
//! * **Heap file** ([`heap`]): slotted, append-only record storage with
//!   overflow chains for large messages.
//! * **Write-ahead log** ([`wal`]): logical redo records (enqueue, mark
//!   processed, slice ops, resets, purges) with CRC framing and
//!   configurable sync policy (per-commit fsync or group commit).
//! * **Transactions** ([`txn`]): deferred-write transactions under strict
//!   two-phase locking with queue/slice/message granularity (Sec. 4.3's
//!   "locking just the affected slices") and wait-for-graph deadlock
//!   detection.
//! * **Queues & slices** ([`store`], [`slice`]): append-only message
//!   queues ("messages are never modified after they have been created"),
//!   the slice index (a B-tree keyed by slice key, Sec. 4.3), slice
//!   lifetimes (resets), and retention-by-slice-membership GC
//!   (Sec. 2.3.3) that never needs to analyze the log to delete.
//! * **Checkpoint + recovery** ([`checkpoint`], [`recovery`]): fuzzy
//!   snapshots of the logical state plus committed-transaction redo.

pub mod checkpoint;
pub mod error;
pub mod heap;
pub mod lock;
pub mod pager;
pub(crate) mod recovery;
pub mod slice;
pub mod store;
pub mod txn;
pub mod types;
pub mod wal;

pub use error::{Result, StoreError};
pub use lock::{LockGranularity, LockKey, LockMode};
pub use store::{MessageStore, QueueInfo, StoreOptions, SyncPolicy};
pub use types::{
    LineageEdge, Lsn, MessageMeta, MsgId, PayloadBytes, PropValue, QueueMode, StoredMessage, TxnId,
};
