//! Two-phase lock manager with hierarchical granularities.
//!
//! The paper (Sec. 4.3) identifies slices as "a natural new granularity,
//! coarser than messages, but orthogonal to queues — by locking just the
//! affected slices, full serializability of the individual
//! message-processing transactions can be guaranteed without locking whole
//! queues". The engine picks a [`LockGranularity`]; benchmark E3 compares
//! them.
//!
//! Deadlocks are detected by cycle search in the wait-for graph; the
//! youngest transaction in the cycle is the victim.

use crate::error::{Result, StoreError};
use crate::types::{MsgId, PropValue, TxnId};
use demaq_obs::{Counter, Histogram, Registry};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// What to lock when processing a message (engine configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockGranularity {
    /// Lock whole queues — simple, serializes all work per queue.
    Queue,
    /// Lock individual slices (plus per-message locks) — the paper's
    /// proposed optimization for concurrency.
    Slice,
}

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

/// Lockable resources.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LockKey {
    Queue(String),
    Slice(String, PropValue),
    Message(MsgId),
}

#[derive(Default)]
struct LockEntry {
    holders: HashMap<TxnId, LockMode>,
}

impl LockEntry {
    fn compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        for (&holder, &held) in &self.holders {
            if holder == txn {
                continue; // re-entrant; upgrade checked below
            }
            if mode == LockMode::Exclusive || held == LockMode::Exclusive {
                return false;
            }
        }
        true
    }
}

#[derive(Default)]
struct LockState {
    locks: HashMap<LockKey, LockEntry>,
    waits_for: HashMap<TxnId, HashSet<TxnId>>,
    /// Number of acquisitions that had to block on a conflict (benchmark
    /// E3's contention metric).
    blocked_acquisitions: u64,
}

impl LockState {
    /// Does adding edges `from -> tos` close a cycle through `from`?
    fn would_deadlock(&self, from: TxnId) -> bool {
        // DFS from each of `from`'s targets looking for `from`.
        let mut stack: Vec<TxnId> = self
            .waits_for
            .get(&from)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == from {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = self.waits_for.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }
}

/// Registry handles for lock contention metrics
/// (`demaq_store_lock_*`).
struct LockMetrics {
    wait_ns: Histogram,
    conflicts: Counter,
    deadlocks: Counter,
    timeouts: Counter,
}

/// The lock manager.
pub struct LockManager {
    state: Mutex<LockState>,
    cv: Condvar,
    timeout: Duration,
    metrics: OnceLock<LockMetrics>,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new(Duration::from_secs(5))
    }
}

impl LockManager {
    pub fn new(timeout: Duration) -> LockManager {
        LockManager {
            state: Mutex::new(LockState::default()),
            cv: Condvar::new(),
            timeout,
            metrics: OnceLock::new(),
        }
    }

    /// Register lock contention metrics in `registry`
    /// (`demaq_store_lock_wait_ns`, conflict/deadlock/timeout counters).
    /// First attachment wins; later calls are ignored.
    pub fn attach_obs(&self, registry: &Registry) {
        let _ = self.metrics.set(LockMetrics {
            wait_ns: registry.histogram("demaq_store_lock_wait_ns"),
            conflicts: registry.counter("demaq_store_lock_conflicts_total"),
            deadlocks: registry.counter("demaq_store_lock_deadlocks_total"),
            timeouts: registry.counter("demaq_store_lock_timeouts_total"),
        });
    }

    /// Acquire `key` in `mode` for `txn`, blocking if necessary.
    ///
    /// Errors with [`StoreError::Deadlock`] when this request would close a
    /// wait-for cycle, or [`StoreError::LockTimeout`] after the configured
    /// timeout.
    pub fn acquire(&self, txn: TxnId, key: LockKey, mode: LockMode) -> Result<()> {
        let mut state = self.state.lock();
        let mut waited_since: Option<Instant> = None;
        let result = loop {
            let entry = state.locks.entry(key.clone()).or_default();
            // Upgrade: sole holder may strengthen shared -> exclusive.
            if let Some(&held) = entry.holders.get(&txn) {
                if held == LockMode::Exclusive || mode == LockMode::Shared {
                    break Ok(());
                }
                if entry.holders.len() == 1 {
                    entry.holders.insert(txn, LockMode::Exclusive);
                    break Ok(());
                }
            } else if entry.compatible(txn, mode) {
                entry.holders.insert(txn, mode);
                break Ok(());
            }
            // Conflict: record wait-for edges and check for a cycle.
            let blockers: HashSet<TxnId> = entry
                .holders
                .keys()
                .copied()
                .filter(|&h| h != txn)
                .collect();
            state.blocked_acquisitions += 1;
            if waited_since.is_none() {
                waited_since = Some(Instant::now());
                if let Some(m) = self.metrics.get() {
                    m.conflicts.inc();
                }
            }
            state.waits_for.insert(txn, blockers);
            if state.would_deadlock(txn) {
                state.waits_for.remove(&txn);
                break Err(StoreError::Deadlock);
            }
            let timed_out = self.cv.wait_for(&mut state, self.timeout).timed_out();
            state.waits_for.remove(&txn);
            if timed_out {
                break Err(StoreError::LockTimeout);
            }
        };
        drop(state);
        if let Some(m) = self.metrics.get() {
            if let Some(since) = waited_since {
                m.wait_ns
                    .record_ns(since.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
            match &result {
                Err(StoreError::Deadlock) => m.deadlocks.inc(),
                Err(StoreError::LockTimeout) => m.timeouts.inc(),
                _ => {}
            }
        }
        result
    }

    /// Release every lock held by `txn` (strict 2PL: all at end).
    pub fn release_all(&self, txn: TxnId) {
        let mut state = self.state.lock();
        state.locks.retain(|_, entry| {
            entry.holders.remove(&txn);
            !entry.holders.is_empty()
        });
        state.waits_for.remove(&txn);
        self.cv.notify_all();
    }

    /// Number of currently held locks (test/diagnostic).
    pub fn held_count(&self) -> usize {
        self.state
            .lock()
            .locks
            .values()
            .map(|e| e.holders.len())
            .sum()
    }

    /// How many acquisitions had to block on a conflict since creation —
    /// the contention metric of benchmark E3 ("without locking whole
    /// queues", paper Sec. 4.3).
    pub fn blocked_acquisitions(&self) -> u64 {
        self.state.lock().blocked_acquisitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    fn qk(n: &str) -> LockKey {
        LockKey::Queue(n.into())
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::default();
        lm.acquire(t(1), qk("q"), LockMode::Shared).unwrap();
        lm.acquire(t(2), qk("q"), LockMode::Shared).unwrap();
        assert_eq!(lm.held_count(), 2);
        lm.release_all(t(1));
        lm.release_all(t(2));
        assert_eq!(lm.held_count(), 0);
    }

    #[test]
    fn exclusive_blocks_until_release() {
        let lm = Arc::new(LockManager::default());
        lm.acquire(t(1), qk("q"), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = std::thread::spawn(move || lm2.acquire(t(2), qk("q"), LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        lm.release_all(t(1));
        h.join().unwrap().unwrap();
        lm.release_all(t(2));
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = LockManager::default();
        lm.acquire(t(1), qk("q"), LockMode::Shared).unwrap();
        lm.acquire(t(1), qk("q"), LockMode::Shared).unwrap();
        lm.acquire(t(1), qk("q"), LockMode::Exclusive).unwrap(); // sole holder upgrade
        assert_eq!(lm.held_count(), 1);
        lm.release_all(t(1));
    }

    #[test]
    fn deadlock_detected() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
        lm.acquire(t(1), qk("a"), LockMode::Exclusive).unwrap();
        lm.acquire(t(2), qk("b"), LockMode::Exclusive).unwrap();
        // t2 waits for a (held by t1) in a thread…
        let lm2 = Arc::clone(&lm);
        let h = std::thread::spawn(move || {
            let r = lm2.acquire(t(2), qk("a"), LockMode::Exclusive);
            lm2.release_all(t(2));
            r
        });
        std::thread::sleep(Duration::from_millis(100));
        // …then t1 requests b: cycle t1 -> t2 -> t1 must be detected on one
        // side or the other.
        let r1 = lm.acquire(t(1), qk("b"), LockMode::Exclusive);
        let deadlocked_here = matches!(r1, Err(StoreError::Deadlock));
        lm.release_all(t(1));
        let r2 = h.join().unwrap();
        assert!(
            deadlocked_here || matches!(r2, Err(StoreError::Deadlock)),
            "one of the two transactions must be chosen as victim: {r1:?} / {r2:?}"
        );
    }

    #[test]
    fn timeout_fires() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.acquire(t(1), qk("q"), LockMode::Exclusive).unwrap();
        let err = lm.acquire(t(2), qk("q"), LockMode::Shared).unwrap_err();
        assert!(matches!(err, StoreError::LockTimeout));
        lm.release_all(t(1));
    }

    #[test]
    fn slice_locks_are_independent() {
        let lm = LockManager::default();
        let k1 = LockKey::Slice("orders".into(), PropValue::Str("23".into()));
        let k2 = LockKey::Slice("orders".into(), PropValue::Str("42".into()));
        lm.acquire(t(1), k1, LockMode::Exclusive).unwrap();
        // A different slice of the same slicing does not conflict.
        lm.acquire(t(2), k2, LockMode::Exclusive).unwrap();
        lm.release_all(t(1));
        lm.release_all(t(2));
    }

    #[test]
    fn message_locks() {
        let lm = LockManager::default();
        lm.acquire(t(1), LockKey::Message(MsgId(5)), LockMode::Exclusive)
            .unwrap();
        lm.acquire(t(2), LockKey::Message(MsgId(6)), LockMode::Exclusive)
            .unwrap();
        lm.release_all(t(1));
        lm.release_all(t(2));
    }
}
