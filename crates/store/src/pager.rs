//! Page-based file storage with an LRU buffer pool.
//!
//! The heap file (message payload storage) is an array of fixed-size pages.
//! The buffer pool caches frames, tracks dirty state and pin counts, and
//! evicts clean unpinned frames in LRU order. Durability of payloads is
//! guaranteed jointly by the WAL (which carries payload bytes until the
//! next checkpoint) and [`BufferPool::flush_all`] at checkpoint time.

use crate::error::{Result, StoreError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// Size of one page in bytes.
pub const PAGE_SIZE: usize = 8192;

/// Page number within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// An in-memory page frame.
pub struct Page {
    pub data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }
}

impl Page {
    pub fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.data[at], self.data[at + 1]])
    }

    pub fn write_u16(&mut self, at: usize, v: u16) {
        self.data[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    pub fn read_u32(&self, at: usize) -> u32 {
        u32::from_le_bytes(self.data[at..at + 4].try_into().unwrap())
    }

    pub fn write_u32(&mut self, at: usize, v: u32) {
        self.data[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }
}

/// Raw page I/O on a single file.
pub struct DiskManager {
    file: Mutex<File>,
    pages: Mutex<u32>,
}

impl DiskManager {
    /// Open (creating if needed) the page file at `path`.
    pub fn open(path: &Path) -> Result<DiskManager> {
        #[allow(clippy::suspicious_open_options)] // existing page files must not be truncated
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StoreError::Corrupt(format!(
                "page file length {len} is not a multiple of the page size"
            )));
        }
        Ok(DiskManager {
            file: Mutex::new(file),
            pages: Mutex::new((len / PAGE_SIZE as u64) as u32),
        })
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        *self.pages.lock()
    }

    /// Allocate a fresh (zeroed) page at the end of the file.
    pub fn allocate(&self) -> Result<PageId> {
        let mut pages = self.pages.lock();
        let id = PageId(*pages);
        *pages += 1;
        // Extend the file eagerly so reads of the new page succeed.
        let file = self.file.lock();
        file.set_len(*pages as u64 * PAGE_SIZE as u64)?;
        Ok(id)
    }

    pub fn read_page(&self, id: PageId, page: &mut Page) -> Result<()> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.0 as u64 * PAGE_SIZE as u64))?;
        file.read_exact(&mut page.data[..])?;
        Ok(())
    }

    pub fn write_page(&self, id: PageId, page: &Page) -> Result<()> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.0 as u64 * PAGE_SIZE as u64))?;
        file.write_all(&page.data[..])?;
        Ok(())
    }

    pub fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }
}

struct Frame {
    page: Page,
    dirty: bool,
    pins: u32,
    /// LRU tick of last access.
    last_used: u64,
}

struct PoolInner {
    frames: HashMap<PageId, Frame>,
    tick: u64,
    capacity: usize,
    /// Statistics for benchmarks and tests.
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// An LRU buffer pool over a [`DiskManager`].
pub struct BufferPool {
    disk: Arc<DiskManager>,
    inner: Mutex<PoolInner>,
}

/// Buffer pool statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub resident: usize,
}

impl BufferPool {
    /// Create a pool with room for `capacity` pages.
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> BufferPool {
        BufferPool {
            disk,
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                tick: 0,
                capacity: capacity.max(8),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Run `f` with read access to the page.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        self.ensure_resident(&mut inner, id)?;
        let frame = inner.frames.get(&id).expect("just made resident");
        Ok(f(&frame.page))
    }

    /// Run `f` with write access to the page; marks it dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        self.ensure_resident(&mut inner, id)?;
        let frame = inner.frames.get_mut(&id).expect("just made resident");
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    fn ensure_resident(&self, inner: &mut PoolInner, id: PageId) -> Result<()> {
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(frame) = inner.frames.get_mut(&id) {
            frame.last_used = tick;
            inner.hits += 1;
            return Ok(());
        }
        inner.misses += 1;
        self.evict_to_capacity(inner)?;
        let mut page = Page::default();
        self.disk.read_page(id, &mut page)?;
        inner.frames.insert(
            id,
            Frame {
                page,
                dirty: false,
                pins: 0,
                last_used: tick,
            },
        );
        Ok(())
    }

    /// Evict LRU unpinned frames until below capacity; dirty victims are
    /// written back first.
    fn evict_to_capacity(&self, inner: &mut PoolInner) -> Result<()> {
        while inner.frames.len() >= inner.capacity {
            let victim = inner
                .frames
                .iter()
                .filter(|(_, f)| f.pins == 0)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(id, _)| *id);
            match victim {
                Some(vid) => {
                    let frame = inner.frames.remove(&vid).expect("victim exists");
                    if frame.dirty {
                        self.disk.write_page(vid, &frame.page)?;
                    }
                    inner.evictions += 1;
                }
                None => break, // everything pinned; allow temporary overflow
            }
        }
        Ok(())
    }

    /// Allocate a fresh page (resident and dirty).
    pub fn allocate(&self) -> Result<PageId> {
        let id = self.disk.allocate()?;
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        self.evict_to_capacity(&mut inner)?;
        inner.frames.insert(
            id,
            Frame {
                page: Page::default(),
                dirty: true,
                pins: 0,
                last_used: tick,
            },
        );
        Ok(id)
    }

    /// Write all dirty pages back and fsync — used at checkpoints.
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let mut ids: Vec<PageId> = inner
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        for id in ids {
            let frame = inner.frames.get_mut(&id).expect("listed above");
            self.disk.write_page(id, &frame.page)?;
            frame.dirty = false;
        }
        self.disk.sync()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        PoolStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            resident: inner.frames.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    fn pool(cap: usize) -> (TempDir, BufferPool) {
        let dir = TempDir::new().unwrap();
        let disk = Arc::new(DiskManager::open(&dir.path().join("heap.db")).unwrap());
        (dir, BufferPool::new(disk, cap))
    }

    #[test]
    fn allocate_write_read() {
        let (_d, pool) = pool(16);
        let id = pool.allocate().unwrap();
        pool.with_page_mut(id, |p| {
            p.write_u32(0, 0xDEADBEEF);
            p.write_u16(100, 77);
        })
        .unwrap();
        pool.with_page(id, |p| {
            assert_eq!(p.read_u32(0), 0xDEADBEEF);
            assert_eq!(p.read_u16(100), 77);
        })
        .unwrap();
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let (_d, pool) = pool(8);
        let mut ids = Vec::new();
        for i in 0..32u32 {
            let id = pool.allocate().unwrap();
            pool.with_page_mut(id, |p| p.write_u32(0, i)).unwrap();
            ids.push(id);
        }
        // Early pages were evicted; re-reading must hit the disk copy.
        for (i, id) in ids.iter().enumerate() {
            let v = pool.with_page(*id, |p| p.read_u32(0)).unwrap();
            assert_eq!(v, i as u32);
        }
        assert!(pool.stats().evictions > 0);
    }

    #[test]
    fn flush_all_then_reopen() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("heap.db");
        {
            let disk = Arc::new(DiskManager::open(&path).unwrap());
            let pool = BufferPool::new(disk, 8);
            let id = pool.allocate().unwrap();
            pool.with_page_mut(id, |p| p.write_u32(8, 4242)).unwrap();
            pool.flush_all().unwrap();
        }
        let disk = Arc::new(DiskManager::open(&path).unwrap());
        assert_eq!(disk.page_count(), 1);
        let pool = BufferPool::new(disk, 8);
        let v = pool.with_page(PageId(0), |p| p.read_u32(8)).unwrap();
        assert_eq!(v, 4242);
    }

    #[test]
    fn rejects_torn_file() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().join("heap.db");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 17]).unwrap();
        assert!(DiskManager::open(&path).is_err());
    }

    #[test]
    fn hit_ratio_tracked() {
        let (_d, pool) = pool(8);
        let id = pool.allocate().unwrap();
        for _ in 0..10 {
            pool.with_page(id, |_| ()).unwrap();
        }
        let s = pool.stats();
        assert!(s.hits >= 10);
    }
}
