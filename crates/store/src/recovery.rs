//! Crash recovery: snapshot load + committed-transaction redo.
//!
//! Steps (paper Sec. 4.1 — recoverable queues on an append-only store):
//!
//! 1. Load the latest checkpoint snapshot (if any); it names the first WAL
//!    segment whose records post-date it.
//! 2. Scan the surviving WAL segments in order. Pass one finds committed
//!    transaction ids; pass two replays only *their* records, in log
//!    order — uncommitted work disappears, which is the whole of undo in a
//!    deferred-write store.
//! 3. Replayed payloads stay heap-less (`Payload::Mem`): their WAL segment
//!    survives until the next checkpoint cut materializes them into the
//!    heap, mirroring the live commit path's deferred materialization.
//! 4. The caller then runs the retention GC, which re-derives any deletions
//!    the crash forgot — deletions are never logged.

use crate::checkpoint::Snapshot;
use crate::error::Result;
use crate::heap::{HeapFile, RecordId};
use crate::pager::{BufferPool, PageId};
use crate::store::{LineageSlot, Logical};
use crate::types::{Lsn, PayloadBytes};
use crate::wal::{read_log, LogRecord};
use demaq_obs::Obs;
use std::collections::HashSet;
use std::path::Path;

/// Outcome of recovery.
pub struct Recovered {
    pub logical: Logical,
    pub next_msg: u64,
    pub next_txn: u64,
    /// Index of the WAL segment to continue appending to.
    pub wal_index: u64,
}

/// List wal segment indexes present in `dir`, ascending.
fn wal_segments(dir: &Path) -> Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name.strip_prefix("wal-") {
            if let Some(idx) = rest.strip_suffix(".log") {
                if let Ok(i) = idx.parse::<u64>() {
                    out.push(i);
                }
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Run recovery against the files in `dir`. Torn WAL tails are surfaced
/// through `obs` (a `wal.torn_tail` trace event and the
/// `demaq_store_wal_torn_bytes_total` counter) rather than dropped
/// silently.
pub fn recover(dir: &Path, _pool: &BufferPool, heap: &HeapFile, obs: &Obs) -> Result<Recovered> {
    let snap = Snapshot::read_from(&dir.join("ckpt.snap"))?.unwrap_or_default();
    heap.restore(snap.heap_free.clone(), snap.heap_live);

    let mut logical = Logical::default();
    let mut next_msg = snap.next_msg.max(1);
    let mut next_txn = snap.next_txn.max(1);

    // Rebuild from the snapshot.
    for q in &snap.queues {
        logical.ensure_queue(&q.name);
        if let Some(qs) = logical.queues.get_mut(&q.name) {
            qs.info.mode = if q.persistent {
                crate::types::QueueMode::Persistent
            } else {
                crate::types::QueueMode::Transient
            };
            qs.info.priority = q.priority;
        }
    }
    let mut snap_msgs = snap.messages.clone();
    snap_msgs.sort_by_key(|m| m.id);
    let payload_copies = obs.registry.counter("demaq_store_payload_copies_total");
    for m in snap_msgs {
        let rid = RecordId {
            page: PageId(m.rid_page),
            slot: m.rid_slot,
        };
        // The one place a payload is ever copied out of the heap: snapshot
        // materialization. UTF-8 is validated here, once, and the shared
        // handle then serves every runtime read without touching the heap.
        let bytes = PayloadBytes::from_utf8(heap.read(rid)?).map_err(|e| {
            crate::error::StoreError::Corrupt(format!(
                "heap record for message {} is not valid UTF-8: {e}",
                m.id
            ))
        })?;
        payload_copies.inc();
        logical.insert_message(
            m.id,
            m.queue.clone(),
            Some(rid),
            bytes,
            m.props.clone(),
            m.processed,
            m.enqueued_at,
        );
    }
    for (slicing, key, state) in snap.slices.clone() {
        logical.slices.restore_slice(slicing, key, state);
    }
    for l in &snap.lineage {
        logical.lineage.insert(
            l.msg,
            LineageSlot {
                parent: l.parent,
                root: l.root,
                rule: l.rule.clone(),
                queue: l.queue.clone(),
                lsn: l.lsn.map(Lsn),
            },
        );
    }

    // Replay WAL segments at or after the snapshot's index.
    let mut wal_index = snap.wal_index;
    for seg in wal_segments(dir)? {
        if seg < snap.wal_index {
            continue;
        }
        wal_index = wal_index.max(seg);
        let seg_name = format!("wal-{seg:06}.log");
        let scan = read_log(&dir.join(&seg_name))?;
        if scan.discarded > 0 {
            obs.registry
                .counter("demaq_store_wal_torn_bytes_total")
                .add(scan.discarded);
            obs.tracer.event(
                "wal.torn_tail",
                None,
                "",
                &format!(
                    "{seg_name}: discarded {} trailing byte(s) after valid prefix of {}",
                    scan.discarded, scan.valid_len
                ),
            );
        }
        let records = scan.records;
        // Pass 1: which transactions committed?
        let committed: HashSet<_> = records
            .iter()
            .filter_map(|(_, r)| match r {
                LogRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        // Pass 2: replay committed effects in order.
        for (lsn, rec) in &records {
            if let Some(txn) = rec.txn() {
                next_txn = next_txn.max(txn.0 + 1);
                if !committed.contains(&txn) {
                    continue;
                }
            }
            match rec {
                LogRecord::Enqueue {
                    queue,
                    msg,
                    payload,
                    props,
                    enqueued_at,
                    ..
                } => {
                    next_msg = next_msg.max(msg.0 + 1);
                    if logical.has_message(*msg) {
                        continue; // already captured by the snapshot
                    }
                    // Share the decoded record's payload handle; heap
                    // materialization is deferred to the next checkpoint
                    // cut, exactly as on the live commit path. Until then
                    // the surviving WAL segment keeps the bytes durable.
                    logical.insert_message(
                        *msg,
                        queue.clone(),
                        None,
                        payload.clone(),
                        props.clone(),
                        false,
                        *enqueued_at,
                    );
                }
                LogRecord::MarkProcessed { msg, .. } => logical.mark_processed(*msg),
                LogRecord::SliceAdd {
                    slicing, key, msg, ..
                } => {
                    if logical.has_message(*msg) {
                        logical.slices.add(slicing, key, *msg);
                    }
                }
                LogRecord::SliceReset { slicing, key, .. } => {
                    logical.slices.reset(slicing, key);
                }
                LogRecord::Lineage {
                    msg,
                    parent,
                    root,
                    rule,
                    queue,
                    ..
                } => {
                    if logical.has_message(*msg) {
                        logical.lineage.insert(
                            *msg,
                            LineageSlot {
                                parent: *parent,
                                root: *root,
                                rule: rule.clone(),
                                queue: queue.clone(),
                                lsn: Some(*lsn),
                            },
                        );
                    }
                }
                LogRecord::Begin { .. }
                | LogRecord::Commit { .. }
                | LogRecord::Abort { .. }
                | LogRecord::Checkpoint { .. } => {}
            }
        }
    }
    Ok(Recovered {
        logical,
        next_msg,
        next_txn,
        wal_index,
    })
}
