//! The slice index: materialized "virtual queues" (paper Sec. 2.3, 4.3).
//!
//! A slicing partitions messages by a property value (the *slice key*);
//! each distinct key denotes one slice. The index is the paper's proposed
//! physical representation — "similar to the materialized views concept in
//! RDBMSs … a B-Tree indexed by the slice key" — here an ordered map from
//! `(slicing, key)` to slice state.
//!
//! Slices have *lifetimes* (Sec. 2.3.2): a reset bumps the slice's epoch;
//! only messages added in the current epoch are visible. Retention
//! (Sec. 2.3.3) couples physical deletion to membership: a message may be
//! purged only when it is processed and no slice of a current lifetime
//! contains it.

use crate::types::{MsgId, PropValue};
use std::collections::{BTreeMap, HashMap};

/// Persisted aggregate base cells of one slice: `(stable aggregate
/// signature, encoded accumulator)` pairs standing in for released
/// members.
pub type BaseCells = Vec<(String, Vec<u8>)>;

/// State of one slice (one key of one slicing).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SliceState {
    /// Current lifetime; bumped by resets.
    pub epoch: u64,
    /// Members with the epoch they were added under (ascending MsgId =
    /// arrival order).
    pub members: Vec<(MsgId, u64)>,
    /// Version counter for cache validation: set to a fresh value from the
    /// index-wide monotonic clock on every mutation (member add, reset,
    /// GC purge, retention release). Process-local — deliberately *not*
    /// checkpointed: caches keyed by it are process-local too and start
    /// empty after recovery. Values are drawn from one strictly increasing
    /// clock, so a version can never recur for a slice (not even across
    /// remove/recreate).
    pub version: u64,
    /// Persisted aggregate accumulators standing in for released members:
    /// `(stable aggregate signature, encoded AggAcc)`. Installed by
    /// [`SliceIndex::release`] when the liveness analysis proved the slice
    /// is read only through these aggregates; carried in the checkpoint
    /// (unlike `version`) so recovery does not need the purged payloads.
    pub base: BaseCells,
    /// How many current-epoch members have been folded into `base` and
    /// released. Membership-only aggregates (`count`, `exists`) answer
    /// `base_members + live members`.
    pub base_members: u64,
}

impl SliceState {
    /// Messages visible in the current lifetime.
    pub fn current_members(&self) -> impl Iterator<Item = MsgId> + '_ {
        let epoch = self.epoch;
        self.members
            .iter()
            .filter(move |(_, e)| *e == epoch)
            .map(|(m, _)| *m)
    }
}

/// The full slice index across all slicings.
#[derive(Debug, Default)]
pub struct SliceIndex {
    /// Ordered by (slicing, key) — range scans over one slicing's keys are
    /// contiguous, as in the B-tree the paper suggests.
    slices: BTreeMap<(String, PropValue), SliceState>,
    /// Reverse index for retention checks: message -> memberships.
    by_msg: HashMap<MsgId, Vec<(String, PropValue)>>,
    /// Per-queue version counters sharing the same clock: bumped when a
    /// message is inserted into or purged from a queue, so caches over
    /// whole-queue membership (aggregate cells) validate exactly like
    /// slice-member caches. Process-local, not checkpointed (see
    /// [`SliceState::version`] for why that is safe).
    queue_versions: HashMap<String, u64>,
    /// Monotonic clock feeding [`SliceState::version`]; never reused
    /// within a process lifetime.
    version_clock: u64,
    /// While a batch apply is in flight ([`SliceIndex::begin_batch`]),
    /// every mutation stamps this shared version instead of bumping the
    /// clock per-op. Sound for cache validation because readers can't
    /// observe mid-batch state (the store holds the state write lock for
    /// the whole batch) — any batch that touched a slice leaves it with a
    /// version strictly greater than any pre-batch value.
    batch_version: Option<u64>,
}

impl SliceIndex {
    pub fn new() -> SliceIndex {
        SliceIndex::default()
    }

    /// Bump the version clock once and reuse that value for every mutation
    /// until [`end_batch`](Self::end_batch) — one bump per apply batch.
    pub fn begin_batch(&mut self) {
        self.version_clock += 1;
        self.batch_version = Some(self.version_clock);
    }

    /// Leave batch mode; later mutations bump the clock per-op again.
    pub fn end_batch(&mut self) {
        self.batch_version = None;
    }

    /// The version to stamp on a mutated slice: the shared batch version
    /// while one is active, otherwise a fresh clock tick.
    fn next_version(&mut self) -> u64 {
        match self.batch_version {
            Some(v) => v,
            None => {
                self.version_clock += 1;
                self.version_clock
            }
        }
    }

    /// Add `msg` to the slice `(slicing, key)` under its current epoch.
    pub fn add(&mut self, slicing: &str, key: &PropValue, msg: MsgId) {
        let version = self.next_version();
        let state = self
            .slices
            .entry((slicing.to_string(), key.clone()))
            .or_default();
        let epoch = state.epoch;
        if state.members.iter().any(|(m, e)| *m == msg && *e == epoch) {
            return; // idempotent (log replay)
        }
        state.members.push((msg, epoch));
        state.version = version;
        self.by_msg
            .entry(msg)
            .or_default()
            .push((slicing.to_string(), key.clone()));
    }

    /// Begin a new lifetime for the slice. Returns the new epoch. Any
    /// narrowed-retention base belongs to the old lifetime and is
    /// discarded with it.
    pub fn reset(&mut self, slicing: &str, key: &PropValue) -> u64 {
        let version = self.next_version();
        let state = self
            .slices
            .entry((slicing.to_string(), key.clone()))
            .or_default();
        state.epoch += 1;
        state.version = version;
        state.base.clear();
        state.base_members = 0;
        state.epoch
    }

    /// Messages visible in the slice's current lifetime, in arrival order.
    pub fn members(&self, slicing: &str, key: &PropValue) -> Vec<MsgId> {
        self.members_versioned(slicing, key).0
    }

    /// Current members plus the slice's version counter, read together —
    /// the consistent `(membership, version)` pair cache entries are keyed
    /// by. A missing slice reports version 0, which the clock never emits.
    pub fn members_versioned(&self, slicing: &str, key: &PropValue) -> (Vec<MsgId>, u64) {
        match self.slices.get(&(slicing.to_string(), key.clone())) {
            Some(s) => {
                let mut v: Vec<MsgId> = s.current_members().collect();
                v.sort();
                (v, s.version)
            }
            None => (Vec::new(), 0),
        }
    }

    /// Current members, version, and the narrowed-retention base, read
    /// together under the caller's lock: `(members, version, base_members,
    /// base cells)`. A missing slice reports version 0 and empty base.
    pub fn members_with_base(
        &self,
        slicing: &str,
        key: &PropValue,
    ) -> (Vec<MsgId>, u64, u64, BaseCells) {
        match self.slices.get(&(slicing.to_string(), key.clone())) {
            Some(s) => {
                let mut v: Vec<MsgId> = s.current_members().collect();
                v.sort();
                (v, s.version, s.base_members, s.base.clone())
            }
            None => (Vec::new(), 0, 0, Vec::new()),
        }
    }

    /// Narrow retention for one slice: fold `victims` (current-epoch
    /// members whose payloads the caller has already absorbed into
    /// `cells`) out of the membership and install the accumulator cells
    /// as the slice's new base. Guarded by compare-and-swap on the
    /// slice's version — any concurrent arrival or reset since the
    /// caller's fold invalidates it, and the release is skipped (`false`)
    /// rather than applied over a membership the fold did not observe.
    pub fn release(
        &mut self,
        slicing: &str,
        key: &PropValue,
        expected_version: u64,
        victims: &[MsgId],
        cells: BaseCells,
    ) -> bool {
        let version = self.next_version();
        let Some(state) = self.slices.get_mut(&(slicing.to_string(), key.clone())) else {
            return false;
        };
        if state.version != expected_version || expected_version == 0 || victims.is_empty() {
            return false;
        }
        let before = state.members.len();
        state
            .members
            .retain(|(m, _)| !victims.contains(m));
        debug_assert!(before - state.members.len() >= victims.len());
        state.base_members += victims.len() as u64;
        state.base = cells;
        state.version = version;
        for victim in victims {
            if let Some(list) = self.by_msg.get_mut(victim) {
                list.retain(|(s2, k2)| !(s2 == slicing && k2 == key));
                if list.is_empty() {
                    self.by_msg.remove(victim);
                }
            }
        }
        true
    }

    /// Stamp a fresh version on `queue`'s membership counter. Called on
    /// message insert and GC purge; inside a batch all bumps share the
    /// batch version, like slice mutations.
    pub fn bump_queue(&mut self, queue: &str) {
        let version = self.next_version();
        self.queue_versions.insert(queue.to_string(), version);
    }

    /// The queue's membership version (0 when the queue has never been
    /// touched this process lifetime — the clock never emits 0).
    pub fn queue_version(&self, queue: &str) -> u64 {
        self.queue_versions.get(queue).copied().unwrap_or(0)
    }

    /// The slice's current version counter (0 when the slice is unknown).
    pub fn version(&self, slicing: &str, key: &PropValue) -> u64 {
        self.slices
            .get(&(slicing.to_string(), key.clone()))
            .map(|s| s.version)
            .unwrap_or(0)
    }

    /// All keys of one slicing that currently have visible members.
    pub fn keys(&self, slicing: &str) -> Vec<PropValue> {
        self.slices
            .range(
                (slicing.to_string(), PropValue::Str(String::new()))
                    ..=(slicing.to_string(), PropValue::Duration(i64::MAX)),
            )
            .filter(|((s, _), state)| s == slicing && state.current_members().next().is_some())
            .map(|((_, k), _)| k.clone())
            .collect()
    }

    /// Is `msg` still needed — i.e. a member of any slice in its *current*
    /// lifetime? (Paper Sec. 2.3.3: "a message is not physically removed
    /// from the message store as long as it is contained in at least one
    /// slice".)
    pub fn is_retained(&self, msg: MsgId) -> bool {
        match self.by_msg.get(&msg) {
            None => false,
            Some(memberships) => memberships.iter().any(|(s, k)| {
                self.slices
                    .get(&(s.clone(), k.clone()))
                    .map(|state| {
                        state
                            .members
                            .iter()
                            .any(|(m, e)| *m == msg && *e == state.epoch)
                    })
                    .unwrap_or(false)
            }),
        }
    }

    /// Drop every trace of a purged message.
    pub fn forget(&mut self, msg: MsgId) {
        if let Some(memberships) = self.by_msg.remove(&msg) {
            for (s, k) in memberships {
                if let Some(state) = self.slices.get_mut(&(s, k)) {
                    let before = state.members.len();
                    state.members.retain(|(m, _)| *m != msg);
                    if state.members.len() != before {
                        // GC purge invalidates cached member sequences.
                        let version = match self.batch_version {
                            Some(v) => v,
                            None => {
                                self.version_clock += 1;
                                self.version_clock
                            }
                        };
                        state.version = version;
                    }
                }
            }
        }
        // Garbage-collect empty slices at epoch 0 lazily — but never one
        // carrying a narrowed-retention base: its accumulators still
        // answer aggregate reads for the released members.
        self.slices.retain(|_, s| {
            !(s.members.is_empty() && s.epoch == 0 && s.base_members == 0 && s.base.is_empty())
        });
    }

    /// Iterate all (slicing, key, state) for checkpointing.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, PropValue), &SliceState)> {
        self.slices.iter()
    }

    /// Restore one slice from a checkpoint.
    pub fn restore_slice(&mut self, slicing: String, key: PropValue, state: SliceState) {
        for (m, e) in &state.members {
            if *e == state.epoch {
                self.by_msg
                    .entry(*m)
                    .or_default()
                    .push((slicing.clone(), key.clone()));
            } else {
                // Old-lifetime members still count for reverse lookups so
                // `forget` can clean them, but never for retention.
                self.by_msg
                    .entry(*m)
                    .or_default()
                    .push((slicing.clone(), key.clone()));
            }
        }
        self.slices.insert((slicing, key), state);
    }

    /// Total number of slices tracked (diagnostics).
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> PropValue {
        PropValue::Str(s.into())
    }

    #[test]
    fn membership_and_order() {
        let mut idx = SliceIndex::new();
        idx.add("orders", &k("23"), MsgId(5));
        idx.add("orders", &k("23"), MsgId(2));
        idx.add("orders", &k("42"), MsgId(3));
        assert_eq!(idx.members("orders", &k("23")), vec![MsgId(2), MsgId(5)]);
        assert_eq!(idx.members("orders", &k("42")), vec![MsgId(3)]);
        assert_eq!(idx.members("orders", &k("99")), Vec::<MsgId>::new());
    }

    #[test]
    fn reset_hides_old_lifetime() {
        let mut idx = SliceIndex::new();
        idx.add("domains", &k("example.org"), MsgId(1));
        idx.add("domains", &k("example.org"), MsgId(2));
        idx.reset("domains", &k("example.org"));
        assert!(idx.members("domains", &k("example.org")).is_empty());
        // New-owner messages appear in the new lifetime.
        idx.add("domains", &k("example.org"), MsgId(3));
        assert_eq!(idx.members("domains", &k("example.org")), vec![MsgId(3)]);
    }

    #[test]
    fn retention_follows_current_lifetime() {
        let mut idx = SliceIndex::new();
        idx.add("s", &k("a"), MsgId(1));
        assert!(idx.is_retained(MsgId(1)));
        idx.reset("s", &k("a"));
        assert!(!idx.is_retained(MsgId(1)), "reset releases retention");
        assert!(
            !idx.is_retained(MsgId(99)),
            "never-sliced message is unretained"
        );
    }

    #[test]
    fn multi_slice_retention() {
        // Paper's procurement example: the same message is retained by the
        // packaging, finance, and OR departments' slices independently.
        let mut idx = SliceIndex::new();
        idx.add("packaging", &k("o1"), MsgId(1));
        idx.add("finance", &k("o1"), MsgId(1));
        idx.add("monthly", &k("2026-07"), MsgId(1));
        idx.reset("packaging", &k("o1"));
        assert!(idx.is_retained(MsgId(1)));
        idx.reset("finance", &k("o1"));
        assert!(idx.is_retained(MsgId(1)));
        idx.reset("monthly", &k("2026-07"));
        assert!(!idx.is_retained(MsgId(1)), "all slices reset → purgeable");
    }

    #[test]
    fn forget_removes_everywhere() {
        let mut idx = SliceIndex::new();
        idx.add("a", &k("x"), MsgId(1));
        idx.add("b", &k("y"), MsgId(1));
        idx.forget(MsgId(1));
        assert!(idx.members("a", &k("x")).is_empty());
        assert!(idx.members("b", &k("y")).is_empty());
        assert!(!idx.is_retained(MsgId(1)));
    }

    #[test]
    fn keys_lists_active_slices() {
        let mut idx = SliceIndex::new();
        idx.add("orders", &k("23"), MsgId(1));
        idx.add("orders", &k("42"), MsgId(2));
        idx.add("other", &k("zz"), MsgId(3));
        let keys = idx.keys("orders");
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&k("23")) && keys.contains(&k("42")));
        idx.reset("orders", &k("23"));
        assert_eq!(idx.keys("orders").len(), 1);
    }

    #[test]
    fn idempotent_add_for_replay() {
        let mut idx = SliceIndex::new();
        idx.add("s", &k("a"), MsgId(1));
        idx.add("s", &k("a"), MsgId(1));
        assert_eq!(idx.members("s", &k("a")).len(), 1);
    }

    #[test]
    fn version_bumps_on_add_reset_forget() {
        let mut idx = SliceIndex::new();
        assert_eq!(idx.version("s", &k("a")), 0, "unknown slice is version 0");
        idx.add("s", &k("a"), MsgId(1));
        let v1 = idx.version("s", &k("a"));
        assert_ne!(v1, 0, "clock never emits 0");
        idx.add("s", &k("a"), MsgId(2));
        let v2 = idx.version("s", &k("a"));
        assert!(v2 > v1, "member add bumps");
        idx.reset("s", &k("a"));
        let v3 = idx.version("s", &k("a"));
        assert!(v3 > v2, "reset bumps");
        idx.add("s", &k("a"), MsgId(3));
        let v4 = idx.version("s", &k("a"));
        idx.forget(MsgId(3));
        assert!(idx.version("s", &k("a")) > v4, "GC purge bumps");
    }

    #[test]
    fn idempotent_re_add_keeps_version() {
        let mut idx = SliceIndex::new();
        idx.add("s", &k("a"), MsgId(1));
        let v = idx.version("s", &k("a"));
        idx.add("s", &k("a"), MsgId(1)); // replay duplicate
        assert_eq!(idx.version("s", &k("a")), v, "no-op add keeps version");
    }

    #[test]
    fn forget_of_nonmember_keeps_version() {
        let mut idx = SliceIndex::new();
        idx.add("s", &k("a"), MsgId(1));
        let v = idx.version("s", &k("a"));
        idx.forget(MsgId(99));
        assert_eq!(idx.version("s", &k("a")), v);
    }

    #[test]
    fn version_never_recurs_across_recreate() {
        let mut idx = SliceIndex::new();
        idx.add("s", &k("a"), MsgId(1));
        let v1 = idx.version("s", &k("a"));
        // Purge the only member: the epoch-0 empty slice entry is dropped.
        idx.forget(MsgId(1));
        assert_eq!(idx.version("s", &k("a")), 0, "slice entry gone");
        // Recreate the same (slicing, key): version must be fresh, not v1.
        idx.add("s", &k("a"), MsgId(2));
        assert!(idx.version("s", &k("a")) > v1);
    }

    #[test]
    fn queue_versions_share_the_clock() {
        let mut idx = SliceIndex::new();
        assert_eq!(idx.queue_version("q"), 0, "untouched queue is version 0");
        idx.bump_queue("q");
        let v1 = idx.queue_version("q");
        assert_ne!(v1, 0);
        idx.add("s", &k("a"), MsgId(1)); // slice mutation advances the clock
        idx.bump_queue("q");
        assert!(idx.queue_version("q") > v1, "bump after slice add is fresh");
        assert_eq!(idx.queue_version("other"), 0, "queues are independent");
        // Batch mode: all bumps share one version.
        idx.begin_batch();
        idx.bump_queue("a");
        idx.bump_queue("b");
        assert_eq!(idx.queue_version("a"), idx.queue_version("b"));
        idx.end_batch();
    }

    #[test]
    fn release_folds_members_into_base() {
        let mut idx = SliceIndex::new();
        idx.add("s", &k("a"), MsgId(1));
        idx.add("s", &k("a"), MsgId(2));
        let (members, v, b, cells) = idx.members_with_base("s", &k("a"));
        assert_eq!(members, vec![MsgId(1), MsgId(2)]);
        assert_eq!((b, cells.len()), (0, 0));
        assert!(idx.release("s", &k("a"), v, &[MsgId(1)], vec![("count".into(), vec![1])]));
        let (members, v2, b, cells) = idx.members_with_base("s", &k("a"));
        assert_eq!(members, vec![MsgId(2)]);
        assert!(v2 > v, "release bumps the version");
        assert_eq!(b, 1);
        assert_eq!(cells, vec![("count".to_string(), vec![1])]);
        assert!(!idx.is_retained(MsgId(1)), "released member is unretained");
        assert!(idx.is_retained(MsgId(2)));
    }

    #[test]
    fn release_cas_rejects_stale_version() {
        let mut idx = SliceIndex::new();
        idx.add("s", &k("a"), MsgId(1));
        let (_, v, _, _) = idx.members_with_base("s", &k("a"));
        idx.add("s", &k("a"), MsgId(2)); // concurrent arrival since the fold
        assert!(!idx.release("s", &k("a"), v, &[MsgId(1)], Vec::new()));
        assert!(idx.is_retained(MsgId(1)), "stale release must not apply");
        assert!(
            !idx.release("s", &k("zz"), 7, &[MsgId(1)], Vec::new()),
            "unknown slice"
        );
    }

    #[test]
    fn reset_discards_base_and_forget_keeps_based_slices() {
        let mut idx = SliceIndex::new();
        idx.add("s", &k("a"), MsgId(1));
        let (_, v, _, _) = idx.members_with_base("s", &k("a"));
        assert!(idx.release("s", &k("a"), v, &[MsgId(1)], vec![("sig".into(), vec![9])]));
        // No members left, epoch 0 — but the base must survive lazy
        // slice GC: its accumulators still answer reads.
        idx.forget(MsgId(42));
        let (members, _, b, cells) = idx.members_with_base("s", &k("a"));
        assert!(members.is_empty());
        assert_eq!((b, cells.len()), (1, 1));
        // Reset starts a new lifetime: the base goes with the old one.
        idx.reset("s", &k("a"));
        let (_, _, b, cells) = idx.members_with_base("s", &k("a"));
        assert_eq!((b, cells.len()), (0, 0));
    }

    #[test]
    fn members_versioned_is_consistent_pair() {
        let mut idx = SliceIndex::new();
        idx.add("s", &k("a"), MsgId(5));
        idx.add("s", &k("a"), MsgId(2));
        let (members, v) = idx.members_versioned("s", &k("a"));
        assert_eq!(members, vec![MsgId(2), MsgId(5)]);
        assert_eq!(v, idx.version("s", &k("a")));
        assert_eq!(
            idx.members_versioned("s", &k("zz")),
            (Vec::new(), 0),
            "unknown slice"
        );
    }
}
