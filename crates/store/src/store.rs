//! The message store facade: queues, transactions, checkpoints, GC.

use crate::checkpoint::{SnapLineage, SnapMessage, SnapQueue, Snapshot};
use crate::error::{Result, StoreError};
use crate::heap::{HeapFile, RecordId};
use crate::lock::{LockGranularity, LockManager};
use crate::pager::{BufferPool, DiskManager};
use crate::recovery;
use crate::slice::{BaseCells, SliceIndex};
use crate::txn::{TxnBuf, TxnOp};
use crate::types::{LineageEdge, Lsn, MsgId, PayloadBytes, PropValue, QueueMode, StoredMessage, TxnId};
use crate::wal::{GroupCommitCfg, LogRecord, LogWriter};
use demaq_obs::{Counter, Gauge, Histogram, Obs};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Commit durability policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Every commit blocks until an fsync covers its WAL records — full
    /// durability (acked ⇒ durable), matches the paper's persistent
    /// business-process queues. Concurrent committers share fsyncs through
    /// the group-commit coordinator (see `wal::LogWriter::sync_to`).
    Always,
    /// Buffer commits; fsync at checkpoints or explicit `sync()`. A crash
    /// may lose the unsynced window — [`MessageStore::unsynced_commits`]
    /// reports its size.
    Batch,
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Directory holding `heap.db`, `wal-*.log`, and `ckpt.snap`.
    pub dir: PathBuf,
    /// Buffer pool capacity in pages.
    pub pool_pages: usize,
    pub sync: SyncPolicy,
    pub lock_granularity: LockGranularity,
    pub lock_timeout: Duration,
    /// Group commit: cap on how many commits one WAL fsync may cover.
    /// `<= 1` reverts to one fsync per commit, serialized under the append
    /// mutex (the E9 baseline).
    pub group_commit_max_batch: usize,
    /// Group commit: how long a sync leader waits for more committers to
    /// join its batch before fsyncing.
    pub group_commit_max_wait: Duration,
    /// Batched logical apply: committers enqueue their post-WAL apply work
    /// (still in WAL order) and the first to arrive applies the whole
    /// pending batch under one `state` lock acquisition, bumping the slice
    /// version clock once per batch — the logical-apply analogue of group
    /// commit. `false` reverts to applying inline under the commit-order
    /// mutex (the pre-batching baseline, kept for A/B crash testing).
    pub batched_apply: bool,
    /// Lowest message id this store may assign (exclusive base). A sharded
    /// deployment gives each shard a disjoint id range (e.g. shard *i*
    /// starts at `i << 48`) so ids stay globally unique across stores and
    /// cross-shard lineage edges never collide. Recovery takes the max of
    /// this and the recovered counter.
    pub msg_id_base: u64,
    /// Observability context to register store metrics in
    /// (`demaq_store_*`). `None` keeps a private, unexported registry.
    pub obs: Option<Arc<Obs>>,
}

impl StoreOptions {
    pub fn new(dir: impl Into<PathBuf>) -> StoreOptions {
        let gc = GroupCommitCfg::default();
        StoreOptions {
            dir: dir.into(),
            pool_pages: 1024,
            sync: SyncPolicy::Always,
            lock_granularity: LockGranularity::Slice,
            lock_timeout: Duration::from_secs(5),
            group_commit_max_batch: gc.max_batch,
            group_commit_max_wait: gc.max_wait,
            batched_apply: true,
            msg_id_base: 0,
            obs: None,
        }
    }

    fn group_commit_cfg(&self) -> GroupCommitCfg {
        GroupCommitCfg {
            max_batch: self.group_commit_max_batch,
            max_wait: self.group_commit_max_wait,
        }
    }
}

/// Static queue description.
#[derive(Debug, Clone)]
pub struct QueueInfo {
    pub name: String,
    pub mode: QueueMode,
    /// Scheduler priority (higher = sooner; paper Sec. 2.1.1 / 4.4.2).
    pub priority: i32,
}

/// Where a payload lives.
///
/// Both variants keep the shared [`PayloadBytes`] handle resident: reads
/// are refcount bumps, never heap reads or UTF-8 revalidation. The heap
/// record behind a persistent payload exists for checkpoints (snapshots
/// reference it so the WAL can be truncated); it is only read back during
/// recovery, where [`PayloadBytes::from_utf8`] validates it once.
///
/// Heap materialization is *deferred*: the commit path always inserts
/// `Mem` (the WAL record alone makes the payload durable), and the next
/// checkpoint cut appends persistent-queue payloads to the heap, flipping
/// them to `Heap` so the snapshot can reference them. Until a checkpoint
/// runs, a persistent message is simply a `Mem` payload plus its WAL
/// record — persistence is a property of the *queue*, not of the variant.
#[derive(Debug, Clone)]
enum Payload {
    Heap { rid: RecordId, bytes: PayloadBytes },
    Mem(PayloadBytes),
}

impl Payload {
    fn bytes(&self) -> &PayloadBytes {
        match self {
            Payload::Heap { bytes, .. } => bytes,
            Payload::Mem(bytes) => bytes,
        }
    }
}

#[derive(Debug, Clone)]
struct MsgMeta {
    queue: String,
    payload: Payload,
    props: Vec<(String, PropValue)>,
    processed: bool,
    enqueued_at: i64,
}

pub(crate) struct QueueState {
    pub(crate) info: QueueInfo,
    /// All retained messages in arrival order (processed ones included —
    /// the append-only model keeps them until the GC purges).
    pub(crate) messages: Vec<MsgId>,
}

/// One message's causal origin as held in [`Logical`] (the [`LineageEdge`]
/// minus the child id it is keyed by).
#[derive(Debug, Clone)]
pub(crate) struct LineageSlot {
    pub(crate) parent: MsgId,
    pub(crate) root: MsgId,
    pub(crate) rule: String,
    pub(crate) queue: String,
    pub(crate) lsn: Option<Lsn>,
}

/// The logical (in-memory, WAL-backed) state.
#[derive(Default)]
pub(crate) struct Logical {
    pub(crate) queues: HashMap<String, QueueState>,
    pub(crate) messages: HashMap<MsgId, MsgMetaSlot>,
    pub(crate) slices: SliceIndex,
    /// Causal origin per rule-created message (root messages absent).
    pub(crate) lineage: HashMap<MsgId, LineageSlot>,
    /// Persistent-queue messages inserted as `Payload::Mem` and not yet
    /// materialized into the heap. The checkpoint cut drains this instead
    /// of scanning every retained message, so its stop-the-world section
    /// is bounded by what arrived since the last cut, not by store size.
    /// May hold ids that were purged or turned out transient; the
    /// materializer re-checks and discards those.
    unmaterialized: Vec<MsgId>,
}

// Newtype wrapper so recovery can construct metas without exposing fields
// publicly.
pub(crate) struct MsgMetaSlot(MsgMeta);

impl Logical {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert_message(
        &mut self,
        id: MsgId,
        queue: String,
        rid: Option<RecordId>,
        bytes: PayloadBytes,
        props: Vec<(String, PropValue)>,
        processed: bool,
        enqueued_at: i64,
    ) {
        // Queue membership changes: invalidate whole-queue aggregate cells.
        self.slices.bump_queue(&queue);
        let deferred = rid.is_none();
        let payload = match rid {
            Some(rid) => Payload::Heap { rid, bytes },
            None => Payload::Mem(bytes),
        };
        if deferred {
            // Every `Mem` insertion registers here; a message missing from
            // this list would be dropped from the next snapshot while its
            // WAL segment is deleted. Transient-queue ids are filtered out
            // below once the queue entry is at hand.
            self.unmaterialized.push(id);
        }
        self.messages.insert(
            id,
            MsgMetaSlot(MsgMeta {
                queue: queue.clone(),
                payload,
                props,
                processed,
                enqueued_at,
            }),
        );
        let qstate = self
            .queues
            .entry(queue.clone())
            .or_insert_with(|| QueueState {
                info: QueueInfo {
                    name: queue,
                    mode: QueueMode::Persistent,
                    priority: 0,
                },
                messages: Vec::new(),
            });
        if deferred && qstate.info.mode != QueueMode::Persistent {
            // Transient payloads never reach the heap; drop the entry
            // pushed above so the list only grows with persistent work.
            self.unmaterialized.pop();
        }
        let messages = &mut qstate.messages;
        // Queue order is id (arrival) order. Concurrent transactions may
        // commit out of id order, so insert at the sorted position — almost
        // always the tail.
        match messages.last() {
            Some(&last) if last > id => {
                let pos = messages.binary_search(&id).unwrap_or_else(|p| p);
                messages.insert(pos, id);
            }
            _ => messages.push(id),
        }
    }

    pub(crate) fn ensure_queue(&mut self, name: &str) {
        self.queues
            .entry(name.to_string())
            .or_insert_with(|| QueueState {
                info: QueueInfo {
                    name: name.to_string(),
                    mode: QueueMode::Persistent,
                    priority: 0,
                },
                messages: Vec::new(),
            });
    }

    pub(crate) fn mark_processed(&mut self, msg: MsgId) {
        if let Some(m) = self.messages.get_mut(&msg) {
            m.0.processed = true;
        }
    }

    pub(crate) fn has_message(&self, msg: MsgId) -> bool {
        self.messages.contains_key(&msg)
    }

    pub(crate) fn message_is_persistent(&self, msg: MsgId) -> Option<bool> {
        // Queue mode, not payload variant: with deferred heap
        // materialization a persistent message stays `Payload::Mem` until
        // the next checkpoint cut.
        let meta = self.messages.get(&msg)?;
        Some(
            self.queues
                .get(&meta.0.queue)
                .map(|q| q.info.mode == QueueMode::Persistent)
                .unwrap_or(true),
        )
    }
}

/// The transactional XML message store.
pub struct MessageStore {
    opts: StoreOptions,
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) heap: HeapFile,
    /// The live WAL segment. `Arc` so committers can hold the writer they
    /// appended to across a checkpoint rotation (their durability wait
    /// stays valid against the old segment).
    wal: Mutex<Arc<LogWriter>>,
    wal_index: AtomicU64,
    /// Sequences Phase 1 (WAL append) of `commit` — and, under batched
    /// apply, the handoff of the logical-apply job to the batch queue — as
    /// one atomic step, so WAL replay order always equals runtime apply
    /// order. With `batched_apply` off, Phase 2 (logical apply) runs under
    /// it too. Checkpoints take it (and drain the apply queue) so a commit
    /// can never be caught between its WAL records and its in-memory
    /// effects while a snapshot is cut.
    /// Lock order: `maintenance` → `commit_order` → `state` → `wal`;
    /// `apply` is only held briefly and never while waiting for `state`.
    commit_order: Mutex<()>,
    /// Batch-apply coordinator state (see [`MessageStore::apply_wait`]).
    apply: Mutex<ApplyState>,
    apply_cv: Condvar,
    /// Serializes the maintenance jobs (checkpoint, retention GC) against
    /// each other — never taken by committers, so neither job blocks the
    /// commit path while doing its slow work outside `state`.
    maintenance: Mutex<()>,
    /// Lock manager — the engine acquires queue/slice/message locks here.
    pub locks: LockManager,
    state: RwLock<Logical>,
    txns: Mutex<HashMap<TxnId, TxnBuf>>,
    next_msg: AtomicU64,
    next_txn: AtomicU64,
    /// Commits *not yet covered by an fsync* (only grows under
    /// [`SyncPolicy::Batch`]; `sync()`/`checkpoint()` reset it).
    unsynced_commits: AtomicU64,
    obs: Arc<Obs>,
    metrics: StoreMetrics,
}

/// One committed transaction's logical-apply work, queued (in WAL order)
/// for the batch-apply leader.
struct ApplyJob {
    /// Position in the global apply sequence (assigned under
    /// `commit_order`, so contiguous and in WAL order).
    seq: u64,
    buf: TxnBuf,
    /// LSN of each lineage record appended in Phase 1.
    lineage_lsns: HashMap<MsgId, Lsn>,
}

/// Shared state of the batch-apply coordinator (leader/follower, modeled
/// on the WAL group-commit protocol in `wal::LogWriter::sync_to`).
struct ApplyState {
    /// Jobs appended under `commit_order` — FIFO order is WAL order.
    jobs: VecDeque<ApplyJob>,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Every job with `seq < applied_seq` has been applied.
    applied_seq: u64,
    /// A leader is currently applying a batch under the state lock.
    leader_active: bool,
    /// Apply errors waiting to be claimed by their committer.
    failed: HashMap<u64, StoreError>,
    /// Persistence flag of enqueues that are WAL-logged but not yet
    /// applied — lets Phase-1 classification of a later transaction see
    /// messages whose apply job is still queued.
    pending_persistent: HashMap<MsgId, bool>,
}

impl ApplyState {
    fn new() -> ApplyState {
        ApplyState {
            jobs: VecDeque::new(),
            next_seq: 0,
            applied_seq: 0,
            leader_active: false,
            failed: HashMap::new(),
            pending_persistent: HashMap::new(),
        }
    }
}

/// Registry handles for store metrics (`demaq_store_*`), resolved once at
/// open so the commit path never touches the registry maps.
struct StoreMetrics {
    wal_flush_ns: Histogram,
    commits: Counter,
    aborts: Counter,
    checkpoints: Counter,
    gc_runs: Counter,
    /// Processed messages still resident only because a slice retains
    /// them — the backlog bounded-retention narrowing tries to shrink.
    /// Refreshed on every GC pass.
    retained_backlog: Gauge,
    /// Total payload bytes resident in the message map. Refreshed on
    /// every GC pass (also available on demand via
    /// [`MessageStore::resident_payload_bytes`]).
    resident_bytes: Gauge,
    /// Batches applied by an apply leader (batched mode only).
    apply_batches: Counter,
    /// Jobs per applied batch (value histogram, not nanoseconds).
    apply_batch_size: Histogram,
    /// Commits that waited for another committer's in-flight batch apply.
    apply_waits: Counter,
    /// Payload reads served by sharing the resident buffer (refcount
    /// bump) — the zero-copy path.
    payload_shared_reads: Counter,
    /// Payloads actually byte-copied: recovery materializing a snapshot's
    /// heap records (plus UTF-8 revalidation), and checkpoint cuts
    /// appending deferred persistent payloads into the heap. Stays at
    /// zero on a pure drain path — commits never copy.
    payload_copies: Counter,
}

impl StoreMetrics {
    fn new(obs: &Obs) -> StoreMetrics {
        let r = &obs.registry;
        StoreMetrics {
            wal_flush_ns: r.histogram("demaq_store_wal_flush_ns"),
            commits: r.counter("demaq_store_commits_total"),
            aborts: r.counter("demaq_store_aborts_total"),
            checkpoints: r.counter("demaq_store_checkpoints_total"),
            gc_runs: r.counter("demaq_store_gc_runs_total"),
            retained_backlog: r.gauge("demaq_store_retained_processed_backlog"),
            resident_bytes: r.gauge("demaq_store_resident_payload_bytes"),
            apply_batches: r.counter("demaq_store_apply_batches_total"),
            apply_batch_size: r.histogram("demaq_store_apply_batch_size"),
            apply_waits: r.counter("demaq_store_apply_waits_total"),
            payload_shared_reads: r.counter("demaq_store_payload_shared_reads_total"),
            payload_copies: r.counter("demaq_store_payload_copies_total"),
        }
    }
}

impl MessageStore {
    /// Open (or create) a store, running crash recovery if needed.
    pub fn open(opts: StoreOptions) -> Result<MessageStore> {
        std::fs::create_dir_all(&opts.dir)?;
        let disk = Arc::new(DiskManager::open(&opts.dir.join("heap.db"))?);
        let pool = Arc::new(BufferPool::new(disk, opts.pool_pages));
        let heap = HeapFile::new(Arc::clone(&pool));
        let obs = opts.obs.clone().unwrap_or_else(Obs::new);
        let rec = recovery::recover(&opts.dir, &pool, &heap, &obs)?;
        let wal_path = opts.dir.join(format!("wal-{:06}.log", rec.wal_index));
        let wal = Arc::new(LogWriter::open(&wal_path, opts.group_commit_cfg())?);
        wal.attach_obs(&obs.registry);
        let locks = LockManager::new(opts.lock_timeout);
        locks.attach_obs(&obs.registry);
        let store = MessageStore {
            locks,
            pool,
            heap,
            wal: Mutex::new(wal),
            wal_index: AtomicU64::new(rec.wal_index),
            commit_order: Mutex::new(()),
            apply: Mutex::new(ApplyState::new()),
            apply_cv: Condvar::new(),
            maintenance: Mutex::new(()),
            state: RwLock::new(rec.logical),
            txns: Mutex::new(HashMap::new()),
            next_msg: AtomicU64::new(rec.next_msg.max(opts.msg_id_base + 1)),
            next_txn: AtomicU64::new(rec.next_txn),
            unsynced_commits: AtomicU64::new(0),
            metrics: StoreMetrics::new(&obs),
            obs,
            opts,
        };
        // Note: deletions dropped by a crash are *re-derived* by the next
        // `gc()` call (paper Sec. 4.1: deletions are never logged) — the
        // engine triggers GC as background maintenance rather than at open.
        Ok(store)
    }

    /// Declare a queue. Idempotent: recovery may have pre-created it; this
    /// updates mode/priority to the application definition.
    pub fn create_queue(&self, name: &str, mode: QueueMode, priority: i32) -> Result<()> {
        let mut state = self.state.write();
        match state.queues.get_mut(name) {
            Some(q) => {
                q.info.mode = mode;
                q.info.priority = priority;
            }
            None => {
                state.queues.insert(
                    name.to_string(),
                    QueueState {
                        info: QueueInfo {
                            name: name.to_string(),
                            mode,
                            priority,
                        },
                        messages: Vec::new(),
                    },
                );
            }
        }
        Ok(())
    }

    /// Queue metadata.
    pub fn queue_info(&self, name: &str) -> Option<QueueInfo> {
        self.state.read().queues.get(name).map(|q| q.info.clone())
    }

    /// All queue names.
    pub fn queue_names(&self) -> Vec<String> {
        self.state.read().queues.keys().cloned().collect()
    }

    // ---- transactions ------------------------------------------------------

    /// Begin a transaction.
    pub fn begin(&self) -> TxnId {
        let id = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
        self.txns.lock().insert(id, TxnBuf::new(id));
        id
    }

    fn with_txn<R>(&self, txn: TxnId, f: impl FnOnce(&mut TxnBuf) -> R) -> Result<R> {
        let mut txns = self.txns.lock();
        let buf = txns.get_mut(&txn).ok_or(StoreError::TxnClosed)?;
        Ok(f(buf))
    }

    /// Buffer an enqueue; the message id is assigned immediately so the
    /// caller can attach slice memberships in the same transaction.
    pub fn enqueue(
        &self,
        txn: TxnId,
        queue: &str,
        payload: PayloadBytes,
        props: Vec<(String, PropValue)>,
        enqueued_at: i64,
    ) -> Result<MsgId> {
        if !self.state.read().queues.contains_key(queue) {
            return Err(StoreError::NotFound(format!("queue `{queue}`")));
        }
        let msg = MsgId(self.next_msg.fetch_add(1, Ordering::Relaxed));
        self.with_txn(txn, |buf| {
            buf.ops.push(TxnOp::Enqueue {
                queue: queue.to_string(),
                msg,
                payload,
                props,
                enqueued_at,
            });
        })?;
        Ok(msg)
    }

    /// Buffer a processed-mark.
    pub fn mark_processed(&self, txn: TxnId, msg: MsgId) -> Result<()> {
        self.with_txn(txn, |buf| buf.ops.push(TxnOp::MarkProcessed { msg }))
    }

    /// Buffer a slice membership.
    pub fn slice_add(&self, txn: TxnId, slicing: &str, key: PropValue, msg: MsgId) -> Result<()> {
        self.with_txn(txn, |buf| {
            buf.ops.push(TxnOp::SliceAdd {
                slicing: slicing.to_string(),
                key,
                msg,
            })
        })
    }

    /// Buffer a slice reset.
    pub fn slice_reset(&self, txn: TxnId, slicing: &str, key: PropValue) -> Result<()> {
        self.with_txn(txn, |buf| {
            buf.ops.push(TxnOp::SliceReset {
                slicing: slicing.to_string(),
                key,
            })
        })
    }

    /// Buffer the causal lineage of a rule-driven enqueue: `msg` (already
    /// enqueued in this transaction) was created into `queue` by `rule`
    /// firing on `parent`. Logged to the WAL when the message is
    /// persistent, so the full causal index survives crashes.
    pub fn record_lineage(
        &self,
        txn: TxnId,
        msg: MsgId,
        parent: MsgId,
        root: MsgId,
        rule: &str,
        queue: &str,
    ) -> Result<()> {
        self.with_txn(txn, |buf| {
            buf.ops.push(TxnOp::Lineage {
                msg,
                parent,
                root,
                rule: rule.to_string(),
                queue: queue.to_string(),
            })
        })
    }

    /// Commit: WAL-log the persistent effects, apply all effects, wait for
    /// durability per [`SyncPolicy`], release locks.
    ///
    /// Phase 1 (WAL append) runs under the `commit_order` mutex. With
    /// batched apply (the default), the logical-apply job is pushed onto
    /// the apply queue *under the same mutex* — so queue order equals WAL
    /// order — and Phase 2 happens through the batch-apply coordinator
    /// ([`apply_wait`](Self::apply_wait)): one leader applies every queued
    /// job under a single `state` lock acquisition. With batching off,
    /// Phase 2 runs inline under `commit_order` (the original design).
    /// Either way, the order effects become visible is exactly the order
    /// of commit records in the WAL — replay order equals runtime order.
    ///
    /// The durability wait (Phase 3) happens outside all ordering locks:
    /// concurrent committers batch into a shared fsync via the
    /// group-commit coordinator. Releasing the order mutex before the
    /// sync is safe in a redo-only log — any transaction that reads our
    /// effects commits *after* us in the WAL, so its durability implies
    /// ours ("acked ⇒ durable" holds per transaction).
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        let buf = self.txns.lock().remove(&txn).ok_or(StoreError::TxnClosed)?;
        let mut sync_target: Option<(Arc<LogWriter>, u64)> = None;
        let mut apply_seq: Option<u64> = None;
        {
            let _order = self.commit_order.lock();
            // Phase 1: write-ahead logging (persistent effects only).
            // Enqueue persistence is remembered for the batch queue so a
            // later transaction's classification can see messages whose
            // apply job is still pending.
            let state = self.state.read();
            let mut enqueue_flags: Vec<(MsgId, bool)> = Vec::new();
            let persistent_ops: Vec<&TxnOp> = {
                let apply = self.apply.lock();
                buf.ops
                    .iter()
                    .filter(|op| {
                        let persistent =
                            self.op_is_persistent(&state, &apply.pending_persistent, &buf, op);
                        if let TxnOp::Enqueue { msg, .. } = op {
                            enqueue_flags.push((*msg, persistent));
                        }
                        persistent
                    })
                    .collect()
            };
            drop(state);
            // LSN of each lineage record appended in Phase 1, consumed by
            // Phase 2 so the in-memory lineage carries its durable LSN.
            let mut lineage_lsns: HashMap<MsgId, Lsn> = HashMap::new();
            if !persistent_ops.is_empty() {
                let wal = Arc::clone(&self.wal.lock());
                wal.append(&LogRecord::Begin { txn })?;
                for op in persistent_ops {
                    let rec = match op {
                        TxnOp::Enqueue {
                            queue,
                            msg,
                            payload,
                            props,
                            enqueued_at,
                        } => LogRecord::Enqueue {
                            txn,
                            queue: queue.clone(),
                            msg: *msg,
                            // Refcount bump — the record shares the
                            // enqueuer's buffer instead of copying it.
                            payload: payload.clone(),
                            props: props.clone(),
                            enqueued_at: *enqueued_at,
                        },
                        TxnOp::MarkProcessed { msg } => LogRecord::MarkProcessed { txn, msg: *msg },
                        TxnOp::SliceAdd { slicing, key, msg } => LogRecord::SliceAdd {
                            txn,
                            slicing: slicing.clone(),
                            key: key.clone(),
                            msg: *msg,
                        },
                        TxnOp::SliceReset { slicing, key } => LogRecord::SliceReset {
                            txn,
                            slicing: slicing.clone(),
                            key: key.clone(),
                        },
                        TxnOp::Lineage {
                            msg,
                            parent,
                            root,
                            rule,
                            queue,
                        } => LogRecord::Lineage {
                            txn,
                            msg: *msg,
                            parent: *parent,
                            root: *root,
                            rule: rule.clone(),
                            queue: queue.clone(),
                        },
                    };
                    let lsn = wal.append(&rec)?;
                    if let LogRecord::Lineage { msg, .. } = &rec {
                        lineage_lsns.insert(*msg, lsn);
                    }
                }
                let (_lsn, target) = wal.append_commit(txn)?;
                sync_target = Some((wal, target));
            }
            if self.opts.batched_apply {
                // Phase 2 handoff: enqueue the apply job while still under
                // `commit_order` — FIFO position equals WAL position.
                let mut apply = self.apply.lock();
                let seq = apply.next_seq;
                apply.next_seq += 1;
                for (msg, persistent) in enqueue_flags {
                    apply.pending_persistent.insert(msg, persistent);
                }
                apply.jobs.push_back(ApplyJob {
                    seq,
                    buf,
                    lineage_lsns,
                });
                apply_seq = Some(seq);
            } else {
                // Phase 2 inline: apply under the commit-order mutex.
                let mut state = self.state.write();
                self.apply_buf(&mut state, &buf, &lineage_lsns)?;
            }
        }
        // Phase 2 (batched): wait until a batch leader applied our job —
        // possibly becoming that leader ourselves.
        if let Some(seq) = apply_seq {
            self.apply_wait(seq)?;
        }
        // Early lock release (before the durability wait): safe because the
        // log is redo-only — see the method docs.
        self.locks.release_all(txn);
        // Phase 3: durability.
        if let Some((wal, target)) = sync_target {
            match self.opts.sync {
                SyncPolicy::Always => {
                    let flush_started = Instant::now();
                    if self.opts.group_commit_max_batch <= 1 {
                        wal.sync_each()?;
                    } else {
                        wal.sync_to(target)?;
                    }
                    self.metrics.wal_flush_ns.record(flush_started.elapsed());
                }
                SyncPolicy::Batch => {
                    self.unsynced_commits.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.metrics.commits.inc();
        Ok(())
    }

    /// Apply one committed transaction's effects to the logical state.
    /// Runs either inline under `commit_order` (unbatched) or from the
    /// batch-apply leader, which holds the state write lock across a whole
    /// batch of jobs.
    fn apply_buf(
        &self,
        state: &mut Logical,
        buf: &TxnBuf,
        lineage_lsns: &HashMap<MsgId, Lsn>,
    ) -> Result<()> {
        for op in &buf.ops {
            match op {
                TxnOp::Enqueue {
                    queue,
                    msg,
                    payload,
                    props,
                    enqueued_at,
                } => {
                    // No heap append here: the WAL record already carries
                    // the bytes durably, and the in-memory state shares the
                    // enqueuer's buffer. The next checkpoint cut
                    // materializes persistent payloads into the heap so the
                    // snapshot can reference them (deferred
                    // materialization — the commit path is copy-free).
                    state.insert_message(
                        *msg,
                        queue.clone(),
                        None,
                        payload.clone(),
                        props.clone(),
                        false,
                        *enqueued_at,
                    );
                }
                TxnOp::MarkProcessed { msg } => state.mark_processed(*msg),
                TxnOp::SliceAdd { slicing, key, msg } => state.slices.add(slicing, key, *msg),
                TxnOp::SliceReset { slicing, key } => {
                    state.slices.reset(slicing, key);
                }
                TxnOp::Lineage {
                    msg,
                    parent,
                    root,
                    rule,
                    queue,
                } => {
                    state.lineage.insert(
                        *msg,
                        LineageSlot {
                            parent: *parent,
                            root: *root,
                            rule: rule.clone(),
                            queue: queue.clone(),
                            lsn: lineage_lsns.get(msg).copied(),
                        },
                    );
                }
            }
        }
        Ok(())
    }

    /// Block until the apply job with sequence `seq` has been applied —
    /// the batch-apply leader/follower protocol (the logical-apply
    /// analogue of `wal::LogWriter::sync_to`). The first committer to
    /// find no leader active drains the *whole* queue and applies it
    /// under one `state` write-lock acquisition, bumping the slice
    /// version clock once for the batch; everyone else parks on the
    /// condvar until a leader's batch covers their job.
    fn apply_wait(&self, seq: u64) -> Result<()> {
        self.apply_wait_inner(seq, true)
    }

    /// `claim_error`: whether a failure of job `seq` belongs to this
    /// caller (true for the committer itself; false for a maintenance
    /// drain, which must leave the error for the real committer).
    fn apply_wait_inner(&self, seq: u64, claim_error: bool) -> Result<()> {
        let mut apply = self.apply.lock();
        loop {
            if claim_error {
                if let Some(err) = apply.failed.remove(&seq) {
                    return Err(err);
                }
            }
            if apply.applied_seq > seq {
                return Ok(());
            }
            if apply.leader_active {
                self.metrics.apply_waits.inc();
                self.apply_cv.wait(&mut apply);
                continue;
            }
            apply.leader_active = true;
            let batch: Vec<ApplyJob> = apply.jobs.drain(..).collect();
            // Jobs are queued contiguously under `commit_order`, so the
            // drained batch covers every seq below `next_seq`.
            let batch_end = apply.next_seq;
            drop(apply);

            let mut failures: Vec<(u64, StoreError)> = Vec::new();
            {
                let mut state = self.state.write();
                // One version-clock bump covers the whole batch: caches
                // validating against slice versions still observe a fresh
                // value (readers can't see mid-batch state — the write
                // lock is held throughout).
                state.slices.begin_batch();
                for job in &batch {
                    if let Err(e) = self.apply_buf(&mut state, &job.buf, &job.lineage_lsns) {
                        failures.push((job.seq, e));
                    }
                }
                state.slices.end_batch();
            }

            apply = self.apply.lock();
            apply.leader_active = false;
            apply.applied_seq = apply.applied_seq.max(batch_end);
            for job in &batch {
                for op in &job.buf.ops {
                    if let TxnOp::Enqueue { msg, .. } = op {
                        apply.pending_persistent.remove(msg);
                    }
                }
            }
            for (s, e) in failures {
                apply.failed.insert(s, e);
            }
            self.metrics.apply_batches.inc();
            self.metrics.apply_batch_size.record_ns(batch.len() as u64);
            self.apply_cv.notify_all();
            // Loop: our own job was in the drained batch (we only became
            // leader because it was unapplied), so the next iteration
            // returns — unless its apply failed, which the error check
            // surfaces.
        }
    }

    /// Apply every queued job (checkpoint preamble): after this returns,
    /// no commit sits between its WAL records and its in-memory effects.
    /// Caller must hold `commit_order` so no new jobs can be queued.
    fn drain_applies(&self) -> Result<()> {
        if !self.opts.batched_apply {
            return Ok(());
        }
        let mut apply = self.apply.lock();
        loop {
            if apply.leader_active {
                self.apply_cv.wait(&mut apply);
                continue;
            }
            if apply.jobs.is_empty() {
                // Errors of drained jobs stay in `failed` for their
                // committers; the state itself is as applied as it gets.
                return Ok(());
            }
            let target = apply.next_seq - 1;
            drop(apply);
            self.apply_wait_inner(target, false)?;
            apply = self.apply.lock();
        }
    }

    fn op_is_persistent(
        &self,
        state: &Logical,
        pending: &HashMap<MsgId, bool>,
        buf: &TxnBuf,
        op: &TxnOp,
    ) -> bool {
        let queue_persistent = |q: &str| {
            state
                .queues
                .get(q)
                .map(|qs| qs.info.mode == QueueMode::Persistent)
                .unwrap_or(true)
        };
        let msg_persistent = |m: MsgId| {
            // Already applied, WAL-logged but pending apply, or being
            // enqueued by this very txn.
            state
                .message_is_persistent(m)
                .or_else(|| pending.get(&m).copied())
                .unwrap_or_else(|| {
                    buf.ops.iter().any(|o| match o {
                        TxnOp::Enqueue { msg, queue, .. } => *msg == m && queue_persistent(queue),
                        _ => false,
                    })
                })
        };
        match op {
            TxnOp::Enqueue { queue, .. } => queue_persistent(queue),
            TxnOp::MarkProcessed { msg } => msg_persistent(*msg),
            TxnOp::SliceAdd { msg, .. } => msg_persistent(*msg),
            TxnOp::SliceReset { .. } => true,
            TxnOp::Lineage { msg, .. } => msg_persistent(*msg),
        }
    }

    /// Abort: drop the buffer, release locks.
    pub fn abort(&self, txn: TxnId) {
        self.txns.lock().remove(&txn);
        let _ = self.wal.lock().append(&LogRecord::Abort { txn });
        self.locks.release_all(txn);
        self.metrics.aborts.inc();
    }

    // ---- reads -----------------------------------------------------------------

    fn load(&self, state: &Logical, id: MsgId) -> Result<StoredMessage> {
        let meta = state
            .messages
            .get(&id)
            .ok_or_else(|| StoreError::NotFound(format!("message {id}")))?;
        self.metrics.payload_shared_reads.inc();
        Ok(StoredMessage {
            id,
            queue: meta.0.queue.clone(),
            // Refcount bump — no heap read, no byte copy, no revalidation.
            payload: meta.0.payload.bytes().clone(),
            props: meta.0.props.clone(),
            processed: meta.0.processed,
            enqueued_at: meta.0.enqueued_at,
        })
    }

    /// Read one message.
    pub fn message(&self, id: MsgId) -> Result<StoredMessage> {
        let state = self.state.read();
        self.load(&state, id)
    }

    /// Read one message's metadata without materializing the payload —
    /// the hot-path accessor for document-cache hits (no heap read, no
    /// payload clone).
    pub fn message_meta(&self, id: MsgId) -> Result<crate::types::MessageMeta> {
        let state = self.state.read();
        let meta = state
            .messages
            .get(&id)
            .ok_or_else(|| StoreError::NotFound(format!("message {id}")))?;
        Ok(crate::types::MessageMeta {
            id,
            queue: meta.0.queue.clone(),
            props: meta.0.props.clone(),
            processed: meta.0.processed,
            enqueued_at: meta.0.enqueued_at,
        })
    }

    /// Read one message's payload only (document-cache miss path). A
    /// refcount bump of the resident, already-validated buffer: the heap
    /// is never read and UTF-8 is never revalidated — validation happened
    /// exactly once, at enqueue or recovery.
    pub fn payload(&self, id: MsgId) -> Result<PayloadBytes> {
        let state = self.state.read();
        let meta = state
            .messages
            .get(&id)
            .ok_or_else(|| StoreError::NotFound(format!("message {id}")))?;
        self.metrics.payload_shared_reads.inc();
        Ok(meta.0.payload.bytes().clone())
    }

    /// Ids of all retained messages of a queue in arrival order — lets
    /// callers resolve payloads through a cache instead of cloning all of
    /// them eagerly.
    pub fn queue_message_ids(&self, queue: &str) -> Result<Vec<MsgId>> {
        let state = self.state.read();
        let q = state
            .queues
            .get(queue)
            .ok_or_else(|| StoreError::NotFound(format!("queue `{queue}`")))?;
        Ok(q.messages.clone())
    }

    /// Ids of a queue's retained messages together with the queue's
    /// membership version counter, read atomically under one state lock —
    /// the consistent pair whole-queue aggregate cells validate against.
    /// The version is bumped inside commit (insert) and by GC purges.
    pub fn queue_message_ids_versioned(&self, queue: &str) -> Result<(Vec<MsgId>, u64)> {
        let state = self.state.read();
        let q = state
            .queues
            .get(queue)
            .ok_or_else(|| StoreError::NotFound(format!("queue `{queue}`")))?;
        Ok((q.messages.clone(), state.slices.queue_version(queue)))
    }

    /// All retained messages of a queue in arrival order.
    pub fn queue_messages(&self, queue: &str) -> Result<Vec<StoredMessage>> {
        let state = self.state.read();
        let q = state
            .queues
            .get(queue)
            .ok_or_else(|| StoreError::NotFound(format!("queue `{queue}`")))?;
        q.messages.iter().map(|&id| self.load(&state, id)).collect()
    }

    /// Ids of unprocessed messages across all queues, with queue priority —
    /// the scheduler's worklist (recovered after a crash).
    pub fn unprocessed(&self) -> Vec<(MsgId, String, i32)> {
        let state = self.state.read();
        let mut out: Vec<(MsgId, String, i32)> = state
            .messages
            .iter()
            .filter(|(_, m)| !m.0.processed)
            .map(|(&id, m)| {
                let prio = state
                    .queues
                    .get(&m.0.queue)
                    .map(|q| q.info.priority)
                    .unwrap_or(0);
                (id, m.0.queue.clone(), prio)
            })
            .collect();
        out.sort_by_key(|(id, _, _)| *id);
        out
    }

    /// Visible members of one slice, in arrival order.
    pub fn slice_members(&self, slicing: &str, key: &PropValue) -> Vec<MsgId> {
        self.state.read().slices.members(slicing, key)
    }

    /// Visible members of one slice together with its version counter,
    /// read atomically under one state lock — the consistent pair the
    /// engine's slice-sequence cache validates against. The version is
    /// bumped inside commit (member add, reset) and by GC purges.
    pub fn slice_members_versioned(&self, slicing: &str, key: &PropValue) -> (Vec<MsgId>, u64) {
        self.state.read().slices.members_versioned(slicing, key)
    }

    /// The slice's current version counter (0 for an unknown slice).
    pub fn slice_version(&self, slicing: &str, key: &PropValue) -> u64 {
        self.state.read().slices.version(slicing, key)
    }

    /// Members, version, and the released base (member count + encoded
    /// aggregate cells) of one slice, read atomically. The base is what a
    /// retention release folded out of purged members; aggregate reads
    /// seed their accumulators from it.
    pub fn slice_members_with_base(
        &self,
        slicing: &str,
        key: &PropValue,
    ) -> (Vec<MsgId>, u64, u64, BaseCells) {
        self.state.read().slices.members_with_base(slicing, key)
    }

    /// Like [`slice_members_with_base`](Self::slice_members_with_base) but
    /// each member carries its processed flag — the narrowing sweep picks
    /// its fold victims from this single consistent view.
    pub fn slice_narrow_view(
        &self,
        slicing: &str,
        key: &PropValue,
    ) -> (Vec<(MsgId, bool)>, u64, u64, BaseCells) {
        let state = self.state.read();
        let (ids, version, base_members, base) = state.slices.members_with_base(slicing, key);
        let flagged = ids
            .into_iter()
            .map(|id| {
                let processed = state.messages.get(&id).map(|m| m.0.processed).unwrap_or(false);
                (id, processed)
            })
            .collect();
        (flagged, version, base_members, base)
    }

    /// Fold `victims` out of a slice into its base: drop their membership
    /// (making them purgeable by the next GC) and install `cells` as the
    /// slice's released aggregate state. CAS semantics — fails (returning
    /// `false`, changing nothing) if the slice's version is no longer
    /// `expected_version`, so a concurrent arrival or reset between the
    /// caller's read and this write safely aborts the release.
    ///
    /// Memory-only by design (paper Sec. 4.1: purge decisions are
    /// re-derived, never logged): after a crash, replay rebuilds the
    /// pre-release membership and the narrowing sweep re-runs. The base
    /// *is* carried by checkpoints, so a release that a checkpoint has
    /// captured survives restarts even though its members are gone.
    pub fn retention_release(
        &self,
        slicing: &str,
        key: &PropValue,
        expected_version: u64,
        victims: &[MsgId],
        cells: BaseCells,
    ) -> bool {
        self.state
            .write()
            .slices
            .release(slicing, key, expected_version, victims, cells)
    }

    /// Keys of a slicing with visible members.
    pub fn slice_keys(&self, slicing: &str) -> Vec<PropValue> {
        self.state.read().slices.keys(slicing)
    }

    /// Is the message retained by any slice lifetime?
    pub fn is_retained(&self, msg: MsgId) -> bool {
        self.state.read().slices.is_retained(msg)
    }

    /// Count of messages currently stored (processed + unprocessed).
    pub fn message_count(&self) -> usize {
        self.state.read().messages.len()
    }

    /// Total payload bytes resident in the message map — the figure the
    /// E15 soak watches for a plateau under bounded retention.
    pub fn resident_payload_bytes(&self) -> u64 {
        self.state
            .read()
            .messages
            .values()
            .map(|m| m.0.payload.bytes().as_bytes().len() as u64)
            .sum()
    }

    /// Causal origin of one rule-created message; `None` for roots
    /// (external ingests) and purged messages.
    pub fn lineage_of(&self, msg: MsgId) -> Option<LineageEdge> {
        let state = self.state.read();
        state.lineage.get(&msg).map(|slot| LineageEdge {
            msg,
            parent: slot.parent,
            root: slot.root,
            rule: slot.rule.clone(),
            queue: slot.queue.clone(),
            lsn: slot.lsn,
        })
    }

    /// Every retained causal edge, sorted by created-message id — the
    /// engine rebuilds its provenance index from this after recovery.
    pub fn lineage_edges(&self) -> Vec<LineageEdge> {
        let state = self.state.read();
        let mut out: Vec<LineageEdge> = state
            .lineage
            .iter()
            .map(|(&msg, slot)| LineageEdge {
                msg,
                parent: slot.parent,
                root: slot.root,
                rule: slot.rule.clone(),
                queue: slot.queue.clone(),
                lsn: slot.lsn,
            })
            .collect();
        out.sort_by_key(|e| e.msg);
        out
    }

    // ---- maintenance ----------------------------------------------------------

    /// Garbage-collect: purge processed messages not retained by any slice
    /// (paper Sec. 2.3.3). Deletions are *not* WAL-logged (Sec. 4.1) — after
    /// a crash the same decision is recomputed. Returns purge count.
    pub fn gc(&self) -> Result<usize> {
        self.gc_collect().map(|v| v.len())
    }

    /// Like [`gc`](Self::gc) but returns the purged message ids so callers
    /// can invalidate caches keyed by them (e.g. the engine's document
    /// cache).
    pub fn gc_collect(&self) -> Result<Vec<MsgId>> {
        // Serialize against checkpoints: a snapshot cut must never land in
        // the window below where a message is gone from `state` but its
        // heap record is not yet released (the snapshot would reference a
        // record we are about to tombstone). Committers never take this
        // lock, so they are not blocked by the slow part.
        let _maint = self.maintenance.lock();
        let mut heap_victims: Vec<RecordId> = Vec::new();
        // Per-queue purge counts, for the labeled
        // `demaq_store_gc_purged_total{queue=...}` counters (resolved from
        // the registry after the state lock drops — GC is off the commit
        // path, so lazy resolution is fine).
        let mut purged_by_queue: Vec<(String, u64)> = Vec::new();
        let mut retained_backlog: u64 = 0;
        let mut resident_bytes: u64 = 0;
        let victims: Vec<MsgId> = {
            // Under the state lock: only the cheap logical removals
            // (maps, queue vectors, slice index).
            let mut state = self.state.write();
            let victims: Vec<MsgId> = state
                .messages
                .iter()
                .filter(|(id, m)| m.0.processed && !state.slices.is_retained(**id))
                .map(|(&id, _)| id)
                .collect();
            let victim_set: std::collections::HashSet<MsgId> = victims.iter().copied().collect();
            for id in &victims {
                if let Some(meta) = state.messages.remove(id) {
                    if let Payload::Heap { rid, .. } = meta.0.payload {
                        heap_victims.push(rid);
                    }
                }
                state.slices.forget(*id);
                // Lineage of a purged message goes with it — bounds growth;
                // the obs-side index may retain the edge until it evicts.
                state.lineage.remove(id);
            }
            // One pass per queue instead of one retain per victim — keeps
            // the in-lock work linear in the number of retained + purged
            // messages.
            if !victim_set.is_empty() {
                for (name, q) in state.queues.iter_mut() {
                    let before = q.messages.len();
                    q.messages.retain(|m| !victim_set.contains(m));
                    let removed = before - q.messages.len();
                    if removed != 0 {
                        purged_by_queue.push((name.clone(), removed as u64));
                    }
                }
                // Purges change queue membership: invalidate whole-queue
                // aggregate cells, mirroring the slice-version bump that
                // `forget` already did above.
                for (name, _) in &purged_by_queue {
                    state.slices.bump_queue(name);
                }
            }
            // Everything processed that survived this pass is retained by
            // a slice — that is exactly the backlog bounded-retention
            // narrowing exists to shrink. Resident bytes ride on the same
            // scan for the E15 soak gauge.
            for meta in state.messages.values() {
                if meta.0.processed {
                    retained_backlog += 1;
                }
                resident_bytes += meta.0.payload.bytes().as_bytes().len() as u64;
            }
            victims
        };
        // Heap-record release (page walks, tombstoning, free-list upkeep)
        // happens with the state lock released: committers and readers
        // proceed while the heap reclaims space. Nothing can resurrect a
        // reference — the ids are gone from every index above, and reads
        // never touch the heap anyway (payloads are resident).
        for rid in heap_victims {
            // Tolerate double-deletes after replay.
            let _ = self.heap.delete(rid);
        }
        self.metrics.gc_runs.inc();
        for (queue, n) in purged_by_queue {
            self.obs
                .registry
                .counter_with("demaq_store_gc_purged_total", &[("queue", &queue)])
                .add(n);
        }
        self.metrics.retained_backlog.set(retained_backlog as i64);
        self.metrics.resident_bytes.set(resident_bytes as i64);
        Ok(victims)
    }

    /// Force the WAL to disk (the batch boundary under
    /// [`SyncPolicy::Batch`]). Resets the unsynced-commit count only once
    /// the sync has actually succeeded.
    pub fn sync(&self) -> Result<()> {
        let wal = Arc::clone(&self.wal.lock());
        wal.sync_now()?;
        self.unsynced_commits.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Commits whose WAL records are not yet known fsynced — the window a
    /// crash could lose under [`SyncPolicy::Batch`]. Always zero under
    /// [`SyncPolicy::Always`].
    pub fn unsynced_commits(&self) -> u64 {
        self.unsynced_commits.load(Ordering::Relaxed)
    }

    /// Take a checkpoint: flush the heap, cut a snapshot, rotate the WAL.
    ///
    /// The cut (everything that must see a consistent store) happens under
    /// the locks; the expensive part — serializing and fsyncing the
    /// snapshot file, deleting old segments — happens *after* they are
    /// released, so committers make progress while a large snapshot is
    /// still being written. Crash-safe because the previous snapshot and
    /// all WAL segments survive on disk until the new snapshot file has
    /// been durably published.
    pub fn checkpoint(&self) -> Result<()> {
        // Serialize whole-store maintenance: GC must not tombstone heap
        // records the snapshot we are writing still references.
        let _maint = self.maintenance.lock();
        // Bulk heap materialization happens out here — before the
        // commit-order lock, outside the state write lock — so the
        // stop-the-world cut below only handles what commits in the gap.
        self.materialize_pending()?;
        let (snap, new_index) = self.checkpoint_cut()?;
        // Locks are released; only `maintenance` is still held.
        //
        // Test failpoint: stretch the out-of-lock write window so the
        // regression test can assert committers are not blocked by it
        // (mirrors DEMAQ_WAL_CRASH_AFTER_BYTES in the WAL).
        if let Ok(ms) = std::env::var("DEMAQ_CKPT_SLOW_WRITE_MS") {
            if let Ok(ms) = ms.parse::<u64>() {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
        snap.write_to(&self.opts.dir.join("ckpt.snap"))?;
        // Old segments are now superfluous.
        for i in 0..new_index {
            let _ = std::fs::remove_file(self.opts.dir.join(format!("wal-{i:06}.log")));
        }
        self.metrics.checkpoints.inc();
        Ok(())
    }

    /// Materialize pending persistent payloads into the heap *outside*
    /// the commit-order lock and (for the appends — the expensive part)
    /// outside the state lock entirely. Caller must hold `maintenance`:
    /// that is what makes the heap exclusively ours (the commit path
    /// never appends to it) and pins every examined message in place (GC
    /// cannot purge concurrently). Payload bytes are immutable, so only
    /// the `Mem` → `Heap` flip at the end needs the write lock.
    fn materialize_pending(&self) -> Result<()> {
        // One read-lock scope for both the work list and the `examined`
        // set: an id added to `unmaterialized` after this scan must stay
        // on the list for the in-lock cut, or it would be dropped from
        // the snapshot without ever reaching the heap.
        let (work, examined): (Vec<(MsgId, PayloadBytes)>, std::collections::HashSet<MsgId>) = {
            let state = self.state.read();
            let work = state
                .unmaterialized
                .iter()
                .filter(|id| state.message_is_persistent(**id).unwrap_or(false))
                .filter_map(|id| match state.messages.get(id) {
                    Some(meta) => match &meta.0.payload {
                        Payload::Mem(bytes) => Some((*id, bytes.clone())),
                        Payload::Heap { .. } => None,
                    },
                    None => None,
                })
                .collect();
            (work, state.unmaterialized.iter().copied().collect())
        };
        let mut flips = Vec::with_capacity(work.len());
        for (id, bytes) in work {
            let rid = self.heap.append(bytes.as_bytes())?;
            self.metrics.payload_copies.inc();
            flips.push((id, rid, bytes));
        }
        let mut state = self.state.write();
        for (id, rid, bytes) in flips {
            if let Some(meta) = state.messages.get_mut(&id) {
                if matches!(meta.0.payload, Payload::Mem(_)) {
                    meta.0.payload = Payload::Heap { rid, bytes };
                }
            }
        }
        // Everything examined is now either flipped, purged, or
        // transient — drop those entries; ids that committed since the
        // scan stay for the in-lock remainder of the cut.
        state.unmaterialized.retain(|id| !examined.contains(id));
        Ok(())
    }

    /// The in-lock half of [`checkpoint`](Self::checkpoint): cut a
    /// consistent snapshot and rotate the WAL, returning the snapshot for
    /// the caller to write outside the locks.
    fn checkpoint_cut(&self) -> Result<(Snapshot, u64)> {
        // Take the commit-order mutex first: without it a committer could
        // sit between Phase 1 (records in the old WAL segment) and Phase 2
        // (effects not yet in `state`) while we snapshot — the snapshot
        // would miss the txn and we'd delete the segment holding its only
        // trace. Lock order matches `commit`.
        let _order = self.commit_order.lock();
        // Flush the batched-apply queue: every WAL-logged txn must be in
        // `state` before we cut, for the same reason as above.
        self.drain_applies()?;
        let mut state = self.state.write(); // stop-the-world for the cut only
        let old_wal = Arc::clone(&self.wal.lock());
        old_wal.sync_now()?;
        self.unsynced_commits.store(0, Ordering::Relaxed);
        // Deferred heap materialization, in-lock remainder: the bulk ran
        // in `materialize_pending` before the commit-order lock; only
        // payloads committed in the gap since are still `Mem`. Append
        // them now — before the pool flush below — so the snapshot can
        // reference their records and the WAL segments holding their
        // bytes can be deleted.
        let late: Vec<MsgId> = std::mem::take(&mut state.unmaterialized);
        for id in late {
            let Some(meta) = state.messages.get_mut(&id) else {
                continue; // purged since it was enqueued
            };
            if let Payload::Mem(bytes) = &meta.0.payload {
                let rid = self.heap.append(bytes.as_bytes())?;
                self.metrics.payload_copies.inc();
                meta.0.payload = Payload::Heap {
                    rid,
                    bytes: bytes.clone(),
                };
            }
        }
        // Backstop for the data-loss invariant behind the side list: a
        // persistent `Mem` payload missed here would be absent from the
        // snapshot while the WAL segment holding its bytes is deleted.
        #[cfg(debug_assertions)]
        for (id, meta) in &state.messages {
            debug_assert!(
                !(matches!(meta.0.payload, Payload::Mem(_))
                    && state.message_is_persistent(*id).unwrap_or(false)),
                "persistent message {id:?} not materialized at checkpoint cut"
            );
        }
        self.pool.flush_all()?;
        let new_index = self.wal_index.load(Ordering::SeqCst) + 1;

        let mut snap = Snapshot {
            wal_index: new_index,
            next_msg: self.next_msg.load(Ordering::SeqCst),
            next_txn: self.next_txn.load(Ordering::SeqCst),
            heap_free: self.heap.free_list(),
            heap_live: self.heap.live_records(),
            ..Default::default()
        };
        for (name, q) in &state.queues {
            snap.queues.push(SnapQueue {
                name: name.clone(),
                persistent: q.info.mode == QueueMode::Persistent,
                priority: q.info.priority,
            });
        }
        for (&id, meta) in &state.messages {
            if let Payload::Heap { rid, .. } = meta.0.payload {
                snap.messages.push(SnapMessage {
                    id,
                    queue: meta.0.queue.clone(),
                    rid_page: rid.page.0,
                    rid_slot: rid.slot,
                    processed: meta.0.processed,
                    enqueued_at: meta.0.enqueued_at,
                    props: meta.0.props.clone(),
                });
            }
            // Transient messages are deliberately omitted.
        }
        for (&msg, slot) in &state.lineage {
            // Mirror the message section: only persistent messages'
            // lineage survives into the snapshot.
            if state.message_is_persistent(msg).unwrap_or(false) {
                snap.lineage.push(SnapLineage {
                    msg,
                    parent: slot.parent,
                    root: slot.root,
                    rule: slot.rule.clone(),
                    queue: slot.queue.clone(),
                    lsn: slot.lsn.map(|l| l.0),
                });
            }
        }
        snap.lineage.sort_by_key(|l| l.msg);
        for ((slicing, key), sstate) in state.slices.iter() {
            // Keep only memberships of persistent messages; epoch always.
            let members: Vec<(MsgId, u64)> = sstate
                .members
                .iter()
                .filter(|(m, _)| state.message_is_persistent(*m).unwrap_or(false))
                .cloned()
                .collect();
            snap.slices.push((
                slicing.clone(),
                key.clone(),
                crate::slice::SliceState {
                    epoch: sstate.epoch,
                    members,
                    version: 0,
                    base: sstate.base.clone(),
                    base_members: sstate.base_members,
                },
            ));
        }

        // Switch to the new WAL segment *before* publishing the snapshot:
        // if we crash in between, the old snapshot still covers both files.
        // Committers still waiting on the old segment's coordinator hold
        // their own `Arc` to it (and `sync_now` above already covered their
        // records), so the swap can't strand them.
        let new_wal_path = self.opts.dir.join(format!("wal-{new_index:06}.log"));
        {
            let new_wal = Arc::new(LogWriter::open(&new_wal_path, self.opts.group_commit_cfg())?);
            new_wal.attach_obs(&self.obs.registry);
            let mut wal = self.wal.lock();
            *wal = new_wal;
            self.wal_index.store(new_index, Ordering::SeqCst);
        }
        drop(state);
        Ok((snap, new_index))
    }

    /// Bytes appended to the current WAL segment (benchmark metric E4).
    pub fn wal_bytes_logged(&self) -> u64 {
        self.wal.lock().bytes_logged()
    }

    /// Buffer-pool statistics.
    pub fn pool_stats(&self) -> crate::pager::PoolStats {
        self.pool.stats()
    }

    /// Configured lock granularity (engine reads this to decide what to
    /// lock per message-processing transaction).
    pub fn lock_granularity(&self) -> LockGranularity {
        self.opts.lock_granularity
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &PathBuf {
        &self.opts.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::read_log;
    use tempfile::TempDir;

    /// The tentpole guarantee: the order of slice-membership effects at
    /// runtime (internal insertion order) is exactly the order of
    /// `SliceAdd` records in the WAL, even under concurrent committers —
    /// Phase 1 (append) and Phase 2 (apply) are sequenced atomically by
    /// the commit-order mutex, so replay order equals runtime order.
    #[test]
    fn runtime_slice_order_matches_wal_order() {
        let dir = TempDir::new().unwrap();
        let mut opts = StoreOptions::new(dir.path());
        opts.sync = SyncPolicy::Batch;
        let store = Arc::new(MessageStore::open(opts).unwrap());
        store
            .create_queue("q", QueueMode::Persistent, 0)
            .unwrap();
        let key = PropValue::Str("k".into());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let store = Arc::clone(&store);
                let key = key.clone();
                s.spawn(move || {
                    for i in 0..40u64 {
                        let txn = store.begin();
                        let msg = store
                            .enqueue(txn, "q", format!("m-{t}-{i}").into(), Vec::new(), 0)
                            .unwrap();
                        store.slice_add(txn, "s", key.clone(), msg).unwrap();
                        store.commit(txn).unwrap();
                    }
                });
            }
        });
        store.sync().unwrap();

        // Internal insertion order (runtime apply order).
        let runtime_order: Vec<MsgId> = {
            let state = store.state.read();
            let (_, sstate) = state
                .slices
                .iter()
                .find(|((slicing, k), _)| slicing == "s" && *k == key)
                .expect("slice exists");
            sstate.members.iter().map(|(m, _)| *m).collect()
        };

        // WAL SliceAdd order of committed transactions.
        let wal_path = dir.path().join("wal-000000.log");
        let scan = read_log(&wal_path).unwrap();
        let committed: std::collections::HashSet<TxnId> = scan
            .records
            .iter()
            .filter_map(|(_, r)| match r {
                LogRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        let wal_order: Vec<MsgId> = scan
            .records
            .iter()
            .filter_map(|(_, r)| match r {
                LogRecord::SliceAdd { txn, msg, .. } if committed.contains(txn) => Some(*msg),
                _ => None,
            })
            .collect();
        assert_eq!(wal_order.len(), 320);
        assert_eq!(
            runtime_order, wal_order,
            "runtime slice insertion order diverged from WAL order"
        );
    }

    /// `unsynced_commits` counts only commits whose WAL records are not
    /// yet fsynced: zero under `Always`, per-commit under `Batch`, reset
    /// by `sync()` and `checkpoint()`.
    #[test]
    fn unsynced_commits_accounting() {
        let commit_one = |store: &MessageStore| {
            let txn = store.begin();
            store
                .enqueue(txn, "q", "x".into(), Vec::new(), 0)
                .unwrap();
            store.commit(txn).unwrap();
        };

        let dir = TempDir::new().unwrap();
        let mut opts = StoreOptions::new(dir.path().join("always"));
        opts.sync = SyncPolicy::Always;
        let store = MessageStore::open(opts).unwrap();
        store.create_queue("q", QueueMode::Persistent, 0).unwrap();
        commit_one(&store);
        commit_one(&store);
        assert_eq!(store.unsynced_commits(), 0, "Always syncs every commit");

        let mut opts = StoreOptions::new(dir.path().join("batch"));
        opts.sync = SyncPolicy::Batch;
        let store = MessageStore::open(opts).unwrap();
        store.create_queue("q", QueueMode::Persistent, 0).unwrap();
        commit_one(&store);
        commit_one(&store);
        commit_one(&store);
        assert_eq!(store.unsynced_commits(), 3);
        store.sync().unwrap();
        assert_eq!(store.unsynced_commits(), 0, "sync() resets the window");
        commit_one(&store);
        assert_eq!(store.unsynced_commits(), 1);
        store.checkpoint().unwrap();
        assert_eq!(store.unsynced_commits(), 0, "checkpoint() resets the window");
    }

    /// Lineage edges are WAL-logged with their LSN, survive plain
    /// recovery, survive a checkpoint (snapshot section), and die with
    /// their message at GC.
    #[test]
    fn lineage_durability_and_gc() {
        let dir = TempDir::new().unwrap();
        let opts = StoreOptions::new(dir.path());
        let store = MessageStore::open(opts.clone()).unwrap();
        store.create_queue("in", QueueMode::Persistent, 0).unwrap();
        store.create_queue("out", QueueMode::Persistent, 0).unwrap();

        let txn = store.begin();
        let root = store
            .enqueue(txn, "in", "<a/>".into(), Vec::new(), 0)
            .unwrap();
        store.commit(txn).unwrap();

        let txn = store.begin();
        let child = store
            .enqueue(txn, "out", "<b/>".into(), Vec::new(), 0)
            .unwrap();
        store
            .record_lineage(txn, child, root, root, "fwd", "out")
            .unwrap();
        store.commit(txn).unwrap();

        let edge = store.lineage_of(child).expect("lineage recorded");
        assert_eq!(edge.parent, root);
        assert_eq!(edge.root, root);
        assert_eq!(edge.rule, "fwd");
        assert_eq!(edge.queue, "out");
        assert!(edge.lsn.is_some(), "persistent lineage carries its LSN");
        assert!(store.lineage_of(root).is_none(), "roots have no edge");

        // Plain recovery (WAL replay).
        drop(store);
        let store = MessageStore::open(opts.clone()).unwrap();
        assert_eq!(store.lineage_of(child).unwrap(), edge);
        assert_eq!(store.lineage_edges(), vec![edge.clone()]);

        // Checkpoint truncates the WAL; the snapshot section must carry
        // the edge (and its original LSN) across the next recovery.
        store.checkpoint().unwrap();
        drop(store);
        let store = MessageStore::open(opts).unwrap();
        assert_eq!(store.lineage_of(child).unwrap(), edge);

        // GC: once the child is processed and unreferenced, its lineage
        // goes with it.
        let txn = store.begin();
        store.mark_processed(txn, child).unwrap();
        store.commit(txn).unwrap();
        store.gc().unwrap();
        assert!(store.lineage_of(child).is_none());
    }

    /// The fsync-per-commit baseline path (`group_commit_max_batch <= 1`)
    /// stays fully durable and recoverable.
    #[test]
    fn max_batch_one_baseline_commits_and_recovers() {
        let dir = TempDir::new().unwrap();
        let mut opts = StoreOptions::new(dir.path());
        opts.sync = SyncPolicy::Always;
        opts.group_commit_max_batch = 1;
        let store = MessageStore::open(opts.clone()).unwrap();
        store.create_queue("q", QueueMode::Persistent, 0).unwrap();
        let txn = store.begin();
        let msg = store
            .enqueue(txn, "q", "base".into(), Vec::new(), 0)
            .unwrap();
        store.commit(txn).unwrap();
        drop(store);
        let store = MessageStore::open(opts).unwrap();
        assert_eq!(store.message(msg).unwrap().payload, "base");
    }
}
