//! Transaction buffers: deferred-write transactions.
//!
//! A Demaq message-processing transaction evaluates rules against a
//! snapshot and only then executes the pending actions (paper Sec. 3.1).
//! The store mirrors that: writes buffer in a [`TxnBuf`] and apply at
//! commit, under locks acquired during the transaction (strict 2PL). An
//! abort simply discards the buffer.

use crate::types::{MsgId, PayloadBytes, PropValue, TxnId};

/// A buffered write operation.
#[derive(Debug, Clone)]
pub enum TxnOp {
    Enqueue {
        queue: String,
        msg: MsgId,
        /// Shared payload handle — the same buffer the WAL record and the
        /// message map will hold; cloning it is a refcount bump.
        payload: PayloadBytes,
        props: Vec<(String, PropValue)>,
        enqueued_at: i64,
    },
    MarkProcessed {
        msg: MsgId,
    },
    SliceAdd {
        slicing: String,
        key: PropValue,
        msg: MsgId,
    },
    SliceReset {
        slicing: String,
        key: PropValue,
    },
    /// Causal lineage of a rule-driven enqueue buffered in this
    /// transaction: `msg` was created by `rule` firing on `parent`.
    Lineage {
        msg: MsgId,
        parent: MsgId,
        root: MsgId,
        rule: String,
        queue: String,
    },
}

/// State of an open transaction.
#[derive(Debug)]
pub struct TxnBuf {
    pub id: TxnId,
    pub ops: Vec<TxnOp>,
}

impl TxnBuf {
    pub fn new(id: TxnId) -> TxnBuf {
        TxnBuf {
            id,
            ops: Vec::new(),
        }
    }

    /// Messages this transaction will enqueue (visible to itself for
    /// property inheritance, not for queries — Demaq rules never need to
    /// read their own pending actions).
    pub fn pending_enqueues(&self) -> impl Iterator<Item = (&String, MsgId)> {
        self.ops.iter().filter_map(|op| match op {
            TxnOp::Enqueue { queue, msg, .. } => Some((queue, *msg)),
            _ => None,
        })
    }
}
