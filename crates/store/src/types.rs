//! Core identifier and value types shared across the store.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Globally unique message identifier, monotonically increasing — doubles
/// as the arrival order within the whole store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Log sequence number (byte offset in the WAL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

/// Queue durability mode (paper Sec. 2.1.1: `mode persistent | transient`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueMode {
    /// Survives crashes: operations are WAL-logged.
    Persistent,
    /// In-memory only: lost on restart; no logging overhead.
    Transient,
}

/// A typed property value (paper Sec. 2.2: "key/value pairs, with unique
/// names and a typed, atomic value").
///
/// Mirrors the `xs:` atomic types the QDL can declare. The store is
/// independent of the XQuery crate, so this is a parallel (and stable,
/// serializable) representation; the engine converts to/from XQuery
/// atomics.
#[derive(Debug, Clone, PartialEq)]
pub enum PropValue {
    Str(String),
    Int(i64),
    Bool(bool),
    Double(f64),
    /// Epoch milliseconds.
    DateTime(i64),
    /// Milliseconds.
    Duration(i64),
}

impl PropValue {
    /// Type tag used in serialization.
    pub fn tag(&self) -> u8 {
        match self {
            PropValue::Str(_) => 0,
            PropValue::Int(_) => 1,
            PropValue::Bool(_) => 2,
            PropValue::Double(_) => 3,
            PropValue::DateTime(_) => 4,
            PropValue::Duration(_) => 5,
        }
    }

    /// Canonical string rendering.
    pub fn render(&self) -> String {
        match self {
            PropValue::Str(s) => s.clone(),
            PropValue::Int(i) => i.to_string(),
            PropValue::Bool(b) => b.to_string(),
            PropValue::Double(d) => d.to_string(),
            PropValue::DateTime(ms) | PropValue::Duration(ms) => ms.to_string(),
        }
    }

    /// Serialize as (tag, payload string).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        let s = match self {
            PropValue::Str(s) => s.clone(),
            other => other.render(),
        };
        let bytes = s.as_bytes();
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }

    /// Deserialize; advances `at`.
    pub fn decode(buf: &[u8], at: &mut usize) -> Option<PropValue> {
        let tag = *buf.get(*at)?;
        *at += 1;
        let len = u32::from_le_bytes(buf.get(*at..*at + 4)?.try_into().ok()?) as usize;
        *at += 4;
        let s = std::str::from_utf8(buf.get(*at..*at + len)?).ok()?;
        *at += len;
        Some(match tag {
            0 => PropValue::Str(s.to_string()),
            1 => PropValue::Int(s.parse().ok()?),
            2 => PropValue::Bool(s.parse().ok()?),
            3 => PropValue::Double(s.parse().ok()?),
            4 => PropValue::DateTime(s.parse().ok()?),
            5 => PropValue::Duration(s.parse().ok()?),
            _ => return None,
        })
    }
}

impl Eq for PropValue {}

impl PartialOrd for PropValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PropValue {
    /// Total order usable as a slice key (B-tree index key, paper Sec. 4.3):
    /// type tag first, then value (doubles via IEEE total order).
    fn cmp(&self, other: &Self) -> Ordering {
        use PropValue::*;
        match (self, other) {
            (Str(a), Str(b)) => a.cmp(b),
            (Int(a), Int(b)) | (DateTime(a), DateTime(b)) | (Duration(a), Duration(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (a, b) => a.tag().cmp(&b.tag()),
        }
    }
}

impl std::hash::Hash for PropValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.tag().hash(state);
        match self {
            PropValue::Str(s) => s.hash(state),
            PropValue::Int(i) | PropValue::DateTime(i) | PropValue::Duration(i) => i.hash(state),
            PropValue::Bool(b) => b.hash(state),
            PropValue::Double(d) => d.to_bits().hash(state),
        }
    }
}

impl fmt::Display for PropValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// One durable causal edge: `msg` was created (into `queue`) by `rule`
/// firing on `parent`; `root` names the causal tree the message belongs
/// to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageEdge {
    pub msg: MsgId,
    pub parent: MsgId,
    pub root: MsgId,
    pub rule: String,
    pub queue: String,
    /// WAL LSN of the lineage record; `None` when the created message is
    /// transient (nothing was logged).
    pub lsn: Option<Lsn>,
}

/// Refcounted, immutable, UTF-8-validated payload bytes.
///
/// One `PayloadBytes` buffer is shared — by refcount, never by copy — from
/// enqueue through the WAL record, the in-memory message map, and every
/// read (`Store::payload`, `StoredMessage`). Validation happens exactly
/// once, when the buffer is created: either from an owned `String`
/// (enqueue) or via [`PayloadBytes::from_utf8`] (recovery materializing a
/// heap record). Holding one is the proof the bytes are valid UTF-8, so
/// the read path never revalidates.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PayloadBytes(Arc<str>);

impl PayloadBytes {
    /// Validate `bytes` as UTF-8 once and wrap them. The only entry point
    /// for bytes of unproven encoding (heap reads during recovery).
    pub fn from_utf8(bytes: Vec<u8>) -> Result<PayloadBytes, std::string::FromUtf8Error> {
        String::from_utf8(bytes).map(PayloadBytes::from)
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }
}

impl From<String> for PayloadBytes {
    fn from(s: String) -> PayloadBytes {
        PayloadBytes(Arc::from(s))
    }
}

impl From<&str> for PayloadBytes {
    fn from(s: &str) -> PayloadBytes {
        PayloadBytes(Arc::from(s))
    }
}

impl Deref for PayloadBytes {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for PayloadBytes {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for PayloadBytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for PayloadBytes {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl fmt::Debug for PayloadBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl fmt::Display for PayloadBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A message as read from a queue.
#[derive(Debug, Clone)]
pub struct StoredMessage {
    pub id: MsgId,
    /// Name of the containing queue.
    pub queue: String,
    /// Serialized XML payload (shared, not copied, with the store).
    pub payload: PayloadBytes,
    /// Property values attached at creation.
    pub props: Vec<(String, PropValue)>,
    /// Has the rule engine finished processing this message?
    pub processed: bool,
    /// Creation timestamp (engine virtual clock, epoch ms).
    pub enqueued_at: i64,
}

impl StoredMessage {
    /// Look up a property by name.
    pub fn prop(&self, name: &str) -> Option<&PropValue> {
        self.props.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// A message's metadata without its payload — what rule evaluation needs
/// when the parsed document is already cached. Reading this never touches
/// the heap file and never clones the payload string.
#[derive(Debug, Clone)]
pub struct MessageMeta {
    pub id: MsgId,
    /// Name of the containing queue.
    pub queue: String,
    /// Property values attached at creation.
    pub props: Vec<(String, PropValue)>,
    /// Has the rule engine finished processing this message?
    pub processed: bool,
    /// Creation timestamp (engine virtual clock, epoch ms).
    pub enqueued_at: i64,
}

impl MessageMeta {
    /// Look up a property by name.
    pub fn prop(&self, name: &str) -> Option<&PropValue> {
        self.props.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop_value_roundtrip() {
        let values = vec![
            PropValue::Str("hello".into()),
            PropValue::Int(-42),
            PropValue::Bool(true),
            PropValue::Double(3.25),
            PropValue::DateTime(1_700_000_000_000),
            PropValue::Duration(-500),
        ];
        let mut buf = Vec::new();
        for v in &values {
            v.encode(&mut buf);
        }
        let mut at = 0;
        for v in &values {
            let got = PropValue::decode(&buf, &mut at).unwrap();
            assert_eq!(&got, v);
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn prop_value_ordering() {
        assert!(PropValue::Int(1) < PropValue::Int(2));
        assert!(PropValue::Str("a".into()) < PropValue::Str("b".into()));
        assert!(PropValue::Double(1.5) < PropValue::Double(2.0));
        // Cross-type: ordered by tag, stable.
        assert!(PropValue::Str("z".into()) < PropValue::Int(0));
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut at = 0;
        assert!(PropValue::decode(&[9, 0, 0, 0, 0], &mut at).is_none());
        let mut at = 0;
        assert!(PropValue::decode(&[1, 255, 255, 255, 255], &mut at).is_none());
    }
}
